"""One public entry layer over mining, identification and streaming.

Before this module the repository had three ad-hoc entry paths — the CLI's
``_cmd_mine`` / ``_cmd_identify`` / ``_cmd_stream`` each assembled its own
flags into its own calls, and long-lived use meant driving a
:class:`~repro.stream.StreamingIdentifier` by hand (including its
``**config_overrides`` kwargs sprawl).  :mod:`repro.api` is the single
facade both the CLI and the HTTP service (:mod:`repro.serve`) consume:

* :func:`mine` / :func:`identify` — one-shot runs from **explicit** config
  objects (:class:`~repro.mining.DMineConfig`,
  :class:`~repro.identification.eip.EIPConfig`);
* :func:`open_session` — a resident :class:`Session` wrapping a
  ``StreamingIdentifier`` with the concurrency contract a serving layer
  needs:

  - **updates serialize** — :meth:`Session.apply` queues writers on a lock
    (and the identifier itself rejects true re-entrancy with
    :class:`~repro.exceptions.StreamError`);
  - **reads never block** — :meth:`Session.answer` pages over immutable
    snapshots pinned to the ``Graph.version`` they were assembled at, so a
    reader paginating while a batch applies sees one consistent version
    throughout, never the identifier's in-flight state;
  - **answers are a feed** — every tick's :class:`SessionDelta` (per-rule
    entities that entered/left the match set, plus the identified-set
    delta) is retained in a bounded history that :meth:`Session.deltas`
    and the server's subscription endpoint replay.

The snapshot/delta histories hold references to the immutable per-tick
``EIPResult`` objects (``_assemble`` builds a fresh one per tick), so
retention costs the answer sets, not graph copies.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Mapping, Sequence

from repro.exceptions import StreamError
from repro.graph.graph import Graph
from repro.identification.eip import AnswerPage, EIPConfig, EIPResult, _decode_cursor, _encode_cursor
from repro.mining.config import DMineConfig
from repro.mining.dmine import DMine, DMineResult
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern
from repro.stream.config import StreamConfig
from repro.stream.identifier import StreamingIdentifier, StreamUpdateReport
from repro.stream.multitenant import MultiTenantIdentifier, TenantAdmission
from repro.stream.updates import UpdateBatch

NodeId = Hashable

__all__ = [
    "Session",
    "SessionDelta",
    "SessionSnapshot",
    "SharedSessionCore",
    "SnapshotExpired",
    "identify",
    "mine",
    "open_session",
    "open_shared_core",
    "parse_predicate",
]

#: How many (snapshot, delta) ticks a session retains for paginating readers
#: and catching-up subscribers before evicting the oldest.
SESSION_HISTORY_LIMIT = 64


class SnapshotExpired(StreamError):
    """A reader asked for a snapshot/delta range the session has evicted.

    Carries the oldest version still retained so the caller can resync
    (restart pagination, or take a fresh full answer) instead of guessing.
    """

    def __init__(self, requested_version: int, oldest_retained: int):
        super().__init__(requested_version, oldest_retained)
        self.requested_version = requested_version
        self.oldest_retained = oldest_retained

    def __str__(self) -> str:
        return (
            f"snapshot for graph version {self.requested_version} has been "
            f"evicted (oldest retained: {self.oldest_retained}); restart "
            "from the current answer"
        )


# ----------------------------------------------------------------------
# one-shot facades
# ----------------------------------------------------------------------
def parse_predicate(text: str) -> Pattern:
    """Parse ``X_LABEL:EDGE_LABEL:Y_LABEL`` into a single-edge predicate.

    The textual predicate form shared by the CLI and the HTTP service.
    """
    from repro.pattern.pattern import PatternEdge

    parts = text.split(":")
    if len(parts) != 3 or not all(parts):
        raise ValueError(
            f"predicate must look like 'x_label:edge_label:y_label', got {text!r}"
        )
    x_label, edge_label, y_label = parts
    return Pattern(
        nodes={"x": x_label, "y": y_label},
        edges=[PatternEdge("x", "y", edge_label)],
        x="x",
        y="y",
    )


def mine(graph: Graph, predicate: Pattern, config: DMineConfig | None = None) -> DMineResult:
    """Run DMine on *graph* for *predicate* with an explicit config object."""
    return DMine(config if config is not None else DMineConfig()).mine(graph, predicate)


def identify(
    graph: Graph,
    rules: Sequence[GPAR],
    config: EIPConfig | None = None,
    algorithm: str = "match",
) -> EIPResult:
    """Solve EIP on *graph* with an explicit config object.

    The algorithm registry matches :func:`repro.identification.identify_entities`
    (``match`` / ``matchc`` / ``disvf2``); unlike that legacy wrapper, the
    configuration arrives as one :class:`EIPConfig` instead of a parameter
    list.
    """
    from repro.identification.disvf2 import DisVF2
    from repro.identification.match import Match
    from repro.identification.matchc import MatchC

    algorithms = {"match": Match, "matchc": MatchC, "disvf2": DisVF2}
    try:
        implementation = algorithms[algorithm.lower()]
    except KeyError:
        raise StreamError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(algorithms)}"
        ) from None
    return implementation(config if config is not None else EIPConfig()).identify(
        graph, list(rules)
    )


# ----------------------------------------------------------------------
# sessions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionSnapshot:
    """One immutable (graph version, assembled answer) pair."""

    version: int
    result: EIPResult


@dataclass(frozen=True)
class SessionDelta:
    """What one update tick changed in the maintained answer.

    ``rule_entered`` / ``rule_left`` map rule **names** to the entities
    that entered/left that rule's match set between ``base_version`` and
    ``version``; ``identified_entered`` / ``identified_left`` are the same
    diff on the overall identified-entity answer.  Equal by construction to
    the set-difference of from-scratch recomputes before and after the
    batch (the property the serve bench family gates on).
    """

    version: int
    base_version: int
    rule_entered: Mapping[str, frozenset]
    rule_left: Mapping[str, frozenset]
    identified_entered: frozenset
    identified_left: frozenset
    report: StreamUpdateReport | None = field(default=None, compare=False)

    @property
    def empty(self) -> bool:
        """Whether the tick changed nothing in the answer."""
        return (
            not self.identified_entered
            and not self.identified_left
            and not any(self.rule_entered.values())
            and not any(self.rule_left.values())
        )

    def as_dict(self) -> dict:
        """JSON-friendly form (entities rendered as sorted strings)."""
        return {
            "version": self.version,
            "base_version": self.base_version,
            "rules": {
                name: {
                    "entered": sorted(map(str, self.rule_entered.get(name, ()))),
                    "left": sorted(map(str, self.rule_left.get(name, ()))),
                }
                for name in sorted(set(self.rule_entered) | set(self.rule_left))
            },
            "identified_entered": sorted(map(str, self.identified_entered)),
            "identified_left": sorted(map(str, self.identified_left)),
        }


def diff_results(before: EIPResult, after: EIPResult, base_version: int, version: int) -> SessionDelta:
    """The per-rule and identified-set difference between two EIP answers.

    Works on any two results over the same Σ — the session uses it between
    consecutive maintained ticks, and the equivalence gates use it between
    from-scratch recomputes to check the subscription feed tells the truth.
    """
    names_before = {rule.name: matches for rule, matches in before.rule_matches.items()}
    names_after = {rule.name: matches for rule, matches in after.rule_matches.items()}
    entered: dict[str, frozenset] = {}
    left: dict[str, frozenset] = {}
    for name in sorted(set(names_before) | set(names_after)):
        old = names_before.get(name, frozenset())
        new = names_after.get(name, frozenset())
        gained = frozenset(new - old)
        lost = frozenset(old - new)
        if gained:
            entered[name] = gained
        if lost:
            left[name] = lost
    return SessionDelta(
        version=version,
        base_version=base_version,
        rule_entered=entered,
        rule_left=left,
        identified_entered=frozenset(after.identified - before.identified),
        identified_left=frozenset(before.identified - after.identified),
    )


class Session:
    """A resident EIP answer with serving semantics.

    Wraps a running :class:`~repro.stream.StreamingIdentifier` and layers
    the reader/writer contract on top (see the module docstring).  Obtain
    one through :func:`open_session`; use as a context manager or call
    :meth:`close`.
    """

    def __init__(
        self,
        identifier: StreamingIdentifier,
        history_limit: int = SESSION_HISTORY_LIMIT,
        tenant: str | None = None,
        core: "SharedSessionCore | None" = None,
    ) -> None:
        if history_limit < 1:
            raise StreamError(f"history_limit must be >= 1, got {history_limit}")
        self._identifier = identifier
        self._history_limit = history_limit
        self.tenant = tenant
        self._core = core
        self._write_lock = threading.Lock()  # serializes apply()
        self._state_lock = threading.Lock()  # guards the histories (briefly)
        self._tick_condition = threading.Condition(self._state_lock)
        self._snapshots: OrderedDict[int, SessionSnapshot] = OrderedDict()
        self._deltas: OrderedDict[int, SessionDelta] = OrderedDict()
        version = identifier.graph.version
        self._snapshots[version] = SessionSnapshot(version, identifier.result)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def identifier(self) -> StreamingIdentifier:
        """The underlying identifier (advanced use; do not mutate its graph)."""
        return self._identifier

    @property
    def rules(self) -> tuple[GPAR, ...]:
        return self._identifier.rules

    @property
    def max_radius(self) -> int:
        return self._identifier.max_radius

    @property
    def graph_version(self) -> int:
        """Version of the newest assembled snapshot (never a torn mid-apply view)."""
        with self._state_lock:
            return next(reversed(self._snapshots))

    @property
    def oldest_retained_version(self) -> int:
        """Version of the oldest retained snapshot (the resync horizon)."""
        with self._state_lock:
            return next(iter(self._snapshots))

    @property
    def result(self) -> EIPResult:
        """The newest assembled answer (immutable; safe to read concurrently)."""
        with self._state_lock:
            return self._snapshots[next(reversed(self._snapshots))].result

    def snapshot(self, version: int | None = None) -> SessionSnapshot:
        """The retained snapshot at *version* (newest when ``None``).

        Raises :class:`SnapshotExpired` when the version has been evicted
        from the bounded history.
        """
        with self._state_lock:
            if version is None:
                version = next(reversed(self._snapshots))
            found = self._snapshots.get(version)
            if found is None:
                raise SnapshotExpired(version, next(iter(self._snapshots)))
            return found

    # ------------------------------------------------------------------
    # reads: paginated answers pinned to one version
    # ------------------------------------------------------------------
    def answer(self, cursor: str | None = None, limit: int = 100) -> tuple[AnswerPage, int]:
        """One page of the answer plus the ``Graph.version`` it reflects.

        The first call (no cursor) pages the newest snapshot; the returned
        cursor pins that snapshot's version, so every later page of the
        same pagination reads the same immutable result even while update
        batches tick the session forward.  Raises :class:`SnapshotExpired`
        once the pinned snapshot falls out of the bounded history.
        """
        if cursor is None:
            pinned = self.snapshot()
            inner = None
        else:
            version, inner = _decode_cursor(cursor)
            pinned = self.snapshot(int(version))
        page = pinned.result.pages(cursor=inner, limit=limit)
        if page.next_cursor is not None:
            page = AnswerPage(
                entries=page.entries,
                next_cursor=_encode_cursor([pinned.version, page.next_cursor]),
                total=page.total,
            )
        return page, pinned.version

    # ------------------------------------------------------------------
    # writes: serialized update ticks
    # ------------------------------------------------------------------
    def apply(self, batch: UpdateBatch) -> tuple[StreamUpdateReport, SessionDelta]:
        """Apply one update batch as a tick; returns (report, answer delta).

        Writers queue on the session's write lock — concurrent callers
        serialize rather than error (the identifier's own re-entrancy guard
        only trips when it is driven *around* the session).  Readers are
        never blocked: the new snapshot and delta publish atomically after
        the repair finishes.

        A tenant session on a :class:`SharedSessionCore` routes through the
        core: the batch ticks the shared graph **once** and every sibling
        tenant's session publishes its own projected delta.
        """
        if self._core is not None:
            return self._core.apply(batch, origin=self)
        with self._write_lock:
            report = self._identifier.apply(batch)
            return report, self._publish_tick(report)

    def _publish_tick(self, report: StreamUpdateReport) -> SessionDelta:
        """Assemble and publish the tick the identifier just applied.

        The caller must hold write exclusion (the session's own write lock,
        or the shared core's when the identifier is shared).
        """
        before = self.snapshot()
        version = self._identifier.graph.version
        result = self._identifier.result
        delta = diff_results(before.result, result, before.version, version)
        delta = SessionDelta(
            version=delta.version,
            base_version=delta.base_version,
            rule_entered=delta.rule_entered,
            rule_left=delta.rule_left,
            identified_entered=delta.identified_entered,
            identified_left=delta.identified_left,
            report=report,
        )
        with self._tick_condition:
            self._snapshots[version] = SessionSnapshot(version, result)
            self._deltas[version] = delta
            while len(self._snapshots) > self._history_limit:
                self._snapshots.popitem(last=False)
            while len(self._deltas) > self._history_limit:
                self._deltas.popitem(last=False)
            self._tick_condition.notify_all()
        return delta

    # ------------------------------------------------------------------
    # subscriptions: the answer as a feed
    # ------------------------------------------------------------------
    def deltas(self, since_version: int) -> list[SessionDelta]:
        """Every retained tick delta strictly after *since_version*, in order.

        Raises :class:`SnapshotExpired` when *since_version* predates the
        retained history (the subscriber must resync from a fresh answer);
        returns ``[]`` when the session has not ticked past it yet.
        """
        with self._state_lock:
            ticks = [
                delta for version, delta in self._deltas.items() if version > since_version
            ]
            if ticks and ticks[0].base_version != since_version:
                # The contiguous chain from since_version is broken: the
                # subscriber missed evicted ticks.
                raise SnapshotExpired(since_version, ticks[0].base_version)
            if not ticks and self._snapshots:
                newest = next(reversed(self._snapshots))
                oldest = next(iter(self._snapshots))
                if since_version < newest and since_version < oldest:
                    raise SnapshotExpired(since_version, oldest)
            return ticks

    def wait_for_version(self, version: int, timeout: float | None = None) -> bool:
        """Block until the newest snapshot's version exceeds *version*.

        Returns ``False`` on timeout.  This is the long-poll primitive the
        HTTP subscription endpoint builds on.
        """
        with self._tick_condition:
            return self._tick_condition.wait_for(
                lambda: next(reversed(self._snapshots)) > version, timeout=timeout
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def recompute(self) -> EIPResult:
        """From-scratch answer on the current graph (equivalence baseline)."""
        return self._identifier.recompute()

    def save_state(self, path: Path | str | None = None) -> Path:
        """Durable checkpoint of the underlying identifier (see its docs)."""
        with self._write_lock:
            return self._identifier.save_state(path)

    def close(self) -> None:
        """Release the identifier's worker pool; snapshots stay readable.

        On a shared core this evicts only this session's tenant — sibling
        tenants (and the verdict state they read) stay live.
        """
        if self._core is not None:
            self._core.close_session(self)
        else:
            self._identifier.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def open_session(
    graph: Graph,
    rules: Sequence[GPAR],
    config: EIPConfig | None = None,
    algorithm: str = "match",
    stream_config: StreamConfig | None = None,
    history_limit: int = SESSION_HISTORY_LIMIT,
    tenant: str | None = None,
) -> Session:
    """Start a resident streaming session over *graph* and Σ.

    Owns config construction: callers hand in explicit
    :class:`EIPConfig` / :class:`StreamConfig` objects (or take the
    defaults) — the deprecated ``**config_overrides`` path of
    :class:`StreamingIdentifier` never appears here.  ``tenant`` is a
    display identity only here; sessions that *share* one resident core go
    through :func:`open_shared_core` instead.
    """
    identifier = StreamingIdentifier(
        graph,
        rules,
        config=config if config is not None else EIPConfig(),
        algorithm=algorithm,
        stream_config=stream_config,
    )
    return Session(identifier, history_limit=history_limit, tenant=tenant)


# ----------------------------------------------------------------------
# multi-tenant: N sessions over one shared streaming core
# ----------------------------------------------------------------------
class _TenantIdentifier:
    """Per-tenant facade over a shared :class:`MultiTenantIdentifier`.

    Duck-types the :class:`StreamingIdentifier` surface a :class:`Session`
    reads (graph, rules, radius, result, recompute, manager) while routing
    every answer through the tenant's projection.  Direct writes are
    rejected — ticks on a shared core go through
    :meth:`SharedSessionCore.apply` so every sibling publishes.
    """

    def __init__(self, multi: MultiTenantIdentifier, tenant: str) -> None:
        self._multi = multi
        self.tenant = tenant

    @property
    def graph(self) -> Graph:
        return self._multi.graph

    @property
    def rules(self) -> tuple[GPAR, ...]:
        return self._multi.rules_for(self.tenant)

    @property
    def max_radius(self) -> int:
        return self._multi.identifier.max_radius

    @property
    def manager(self):
        return self._multi.identifier.manager

    @property
    def result(self) -> EIPResult:
        return self._multi.result_for(self.tenant)

    def recompute(self) -> EIPResult:
        return self._multi.recompute_for(self.tenant)

    def apply(self, batch: UpdateBatch) -> StreamUpdateReport:
        raise StreamError(
            "this session shares a multi-tenant core; apply updates through "
            "Session.apply (which ticks the shared core once for all tenants)"
        )

    def save_state(self, path: Path | str | None = None) -> Path:
        raise StreamError(
            "checkpointing a shared multi-tenant core is not supported; "
            "open a dedicated session to save durable state"
        )

    def close(self) -> None:
        self._multi.evict(self.tenant)


class SharedSessionCore:
    """N tenant :class:`Session` objects over one resident streaming core.

    Owns a :class:`~repro.stream.MultiTenantIdentifier` plus one write lock
    shared by every member: an update batch applied through *any* member
    session ticks the shared graph once — verifying each touched centre
    once per distinct canonical antecedent across all Σ — and then every
    member publishes its own projected snapshot/delta, so each tenant's
    subscription feed behaves exactly as if it ran a private core.
    """

    def __init__(
        self,
        graph: Graph,
        config: EIPConfig | None = None,
        algorithm: str = "match",
        stream_config: StreamConfig | None = None,
        radius_floor: int = 0,
    ) -> None:
        self._multi = MultiTenantIdentifier(
            graph,
            config=config,
            algorithm=algorithm,
            stream_config=stream_config,
            radius_floor=radius_floor,
        )
        self._write_lock = threading.Lock()
        self._sessions: dict[str, Session] = {}

    @property
    def multi(self) -> MultiTenantIdentifier:
        return self._multi

    @property
    def graph(self) -> Graph:
        return self._multi.graph

    @property
    def tenants(self) -> tuple[str, ...]:
        with self._write_lock:
            return tuple(self._sessions)

    def __len__(self) -> int:
        with self._write_lock:
            return len(self._sessions)

    def open_session(
        self,
        tenant: str,
        rules: Sequence[GPAR],
        history_limit: int = SESSION_HISTORY_LIMIT,
    ) -> Session:
        """Admit *tenant* (warm when its Σ overlaps resident Σ) as a session.

        The admission record lands on ``session.admission`` (a
        :class:`~repro.stream.TenantAdmission`) so callers can observe the
        marginal cost they paid.
        """
        with self._write_lock:
            admission = self._multi.admit(tenant, tuple(rules))
            session = Session(
                _TenantIdentifier(self._multi, tenant),
                history_limit=history_limit,
                tenant=tenant,
                core=self,
            )
            session.admission = admission
            self._sessions[tenant] = session
            return session

    def admission_for(self, tenant: str) -> TenantAdmission:
        return self._multi.admission_for(tenant)

    def apply(
        self, batch: UpdateBatch, origin: Session | None = None
    ) -> tuple[StreamUpdateReport, SessionDelta | dict[str, SessionDelta]]:
        """Tick the shared core once; publish a delta to **every** member.

        Returns ``(report, origin's delta)`` when called through a member
        session, or ``(report, {tenant: delta})`` when driven directly.
        """
        with self._write_lock:
            report = self._multi.apply(batch)
            deltas = {
                tenant: session._publish_tick(report)
                for tenant, session in self._sessions.items()
            }
        if origin is not None:
            return report, deltas[origin.tenant]
        return report, deltas

    def close_session(self, session: Session) -> None:
        """Evict one tenant; sibling tenants' sessions stay live."""
        with self._write_lock:
            tenant = session.tenant
            if tenant is not None and self._sessions.get(tenant) is session:
                del self._sessions[tenant]
                self._multi.evict(tenant)

    def close(self) -> None:
        """Evict every tenant and release the shared core."""
        with self._write_lock:
            self._sessions.clear()
        self._multi.close()

    def __enter__(self) -> "SharedSessionCore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def open_shared_core(
    graph: Graph,
    config: EIPConfig | None = None,
    algorithm: str = "match",
    stream_config: StreamConfig | None = None,
    radius_floor: int = 0,
) -> SharedSessionCore:
    """Start a shared multi-tenant core over *graph*; admit Σ per tenant.

    The multi-tenant counterpart of :func:`open_session`:
    ``core.open_session(tenant, rules)`` admits each tenant's Σ, sharing
    verification across tenants by canonical antecedent
    (docs/multitenant.md).
    """
    return SharedSessionCore(
        graph,
        config=config,
        algorithm=algorithm,
        stream_config=stream_config,
        radius_floor=radius_floor,
    )
