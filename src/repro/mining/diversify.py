"""Batch diversification: the "discover then diversify" strategy.

The greedy pairing below is the classical 2-approximation for max-sum
dispersion; it is used (a) as the final step of the unoptimised miner
``DMineno``, which collects all candidate rules first, and (b) as a
standalone baseline for comparing against the incremental ``incDiv``.
"""

from __future__ import annotations

from typing import Mapping

from repro.metrics.diversification import DiversificationObjective, jaccard_distance
from repro.mining.incdiv import RuleInfo
from repro.pattern.gpar import GPAR


def greedy_diversify(
    infos: Mapping[GPAR, RuleInfo],
    k: int,
    objective: DiversificationObjective,
) -> list[GPAR]:
    """Pick a diversified top-k set by greedy max-sum dispersion.

    Repeatedly selects the pair of unused rules maximising the pairwise
    objective F' until k rules are chosen (the last pick may add a single
    rule when k is odd or candidates run out).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    available = [rule for rule, info in infos.items() if info.support >= 0]
    chosen: list[GPAR] = []
    while len(chosen) < k and available:
        if len(available) == 1 or len(chosen) == k - 1:
            # Single slot left: take the highest-confidence remaining rule.
            best_single = max(available, key=lambda rule: infos[rule].finite_confidence)
            chosen.append(best_single)
            available.remove(best_single)
            continue
        best: tuple[float, GPAR, GPAR] | None = None
        for index, first in enumerate(available):
            for second in available[index + 1:]:
                diff = jaccard_distance(infos[first].matches, infos[second].matches)
                score = objective.pair_score(
                    infos[first].confidence, infos[second].confidence, diff
                )
                if best is None or score > best[0]:
                    best = (score, first, second)
        if best is None:
            break
        _, first, second = best
        chosen.append(first)
        chosen.append(second)
        available.remove(first)
        available.remove(second)
    return chosen[:k]


def discover_and_diversify(
    infos: Mapping[GPAR, RuleInfo],
    k: int,
    objective: DiversificationObjective,
) -> tuple[list[GPAR], float]:
    """The naive two-phase strategy: diversify a fully materialised rule set.

    Returns the chosen rules and the value of the full objective F on them.
    """
    chosen = greedy_diversify(infos, k, objective)
    value = objective.total_from_matches(
        [infos[rule].confidence for rule in chosen],
        [infos[rule].matches for rule in chosen],
    )
    return chosen, value
