"""Incremental diversification (procedure ``incDiv`` of Section 4.2).

The coordinator keeps a priority queue of at most ⌈k/2⌉ *disjoint* GPAR
pairs, each scored by the pairwise objective F'.  New rules arriving in a
round either fill the queue greedily or replace the minimum-score pair when
they can form a better one — so the top-k set is maintained incrementally
instead of being recomputed from scratch every round.  The greedy pairing is
the 2-approximation of max-sum dispersion [Gollapudi & Sharma 2009].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.metrics.diversification import DiversificationObjective, jaccard_distance
from repro.pattern.gpar import GPAR

NodeId = Hashable


@dataclass(frozen=True)
class RuleInfo:
    """What the coordinator knows about a candidate rule."""

    confidence: float
    support: int
    matches: frozenset
    upper_confidence: float = math.inf
    extendable: bool = False

    @property
    def finite_confidence(self) -> float:
        """Confidence with trivial (infinite) values clamped to 0."""
        return 0.0 if math.isinf(self.confidence) else self.confidence


@dataclass
class _Pair:
    first: GPAR
    second: GPAR
    score: float


class IncrementalDiversifier:
    """Maintains the diversified top-k set across mining rounds."""

    def __init__(self, objective: DiversificationObjective, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.objective = objective
        self.k = k
        self.max_pairs = (k + 1) // 2
        self._pairs: list[_Pair] = []
        self._info: dict[GPAR, RuleInfo] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def known_rules(self) -> set[GPAR]:
        """Rules whose info has been registered so far."""
        return set(self._info)

    def info_for(self, rule: GPAR) -> RuleInfo:
        """Registered info for *rule* (KeyError if unknown)."""
        return self._info[rule]

    def _rules_in_queue(self) -> set[GPAR]:
        rules: set[GPAR] = set()
        for pair in self._pairs:
            rules.add(pair.first)
            rules.add(pair.second)
        return rules

    def _pair_score(self, first: GPAR, second: GPAR) -> float:
        info_a = self._info[first]
        info_b = self._info[second]
        diff = jaccard_distance(info_a.matches, info_b.matches)
        return self.objective.pair_score(info_a.confidence, info_b.confidence, diff)

    @property
    def min_pair_score(self) -> float:
        """``F'_m``: the smallest pair score currently in the queue.

        Returns ``-inf`` while the queue is not yet full, so the reduction
        rules never prune anything before the top-k set has stabilised.
        """
        if len(self._pairs) < self.max_pairs or not self._pairs:
            return -math.inf
        return min(pair.score for pair in self._pairs)

    # ------------------------------------------------------------------
    # the incremental update
    # ------------------------------------------------------------------
    def update(self, delta: Mapping[GPAR, RuleInfo], sigma: Mapping[GPAR, RuleInfo]) -> None:
        """Incorporate the round's new rules ΔE given the accumulated Σ.

        Trivial rules (infinite confidence) are ignored, per Section 3.
        """
        for rule, info in sigma.items():
            if not math.isinf(info.confidence):
                self._info[rule] = info
        fresh: list[GPAR] = []
        for rule, info in delta.items():
            if math.isinf(info.confidence):
                continue
            self._info[rule] = info
            fresh.append(rule)

        self._fill_queue()
        self._replace_with(fresh)

    def _fill_queue(self) -> None:
        available = [rule for rule in self._info if rule not in self._rules_in_queue()]
        while len(self._pairs) < self.max_pairs and len(available) >= 2:
            best: tuple[float, GPAR, GPAR] | None = None
            for index, first in enumerate(available):
                for second in available[index + 1:]:
                    score = self._pair_score(first, second)
                    if best is None or score > best[0]:
                        best = (score, first, second)
            if best is None:
                break
            score, first, second = best
            self._pairs.append(_Pair(first, second, score))
            available.remove(first)
            available.remove(second)

    def _replace_with(self, fresh: Iterable[GPAR]) -> None:
        if len(self._pairs) < self.max_pairs:
            return
        for rule in fresh:
            in_queue = self._rules_in_queue()
            if rule in in_queue:
                continue
            best_partner: GPAR | None = None
            best_score = -math.inf
            for partner in self._info:
                if partner == rule or partner in in_queue:
                    continue
                score = self._pair_score(rule, partner)
                if score > best_score:
                    best_score = score
                    best_partner = partner
            if best_partner is None:
                continue
            worst_index = min(range(len(self._pairs)), key=lambda i: self._pairs[i].score)
            if best_score > self._pairs[worst_index].score:
                self._pairs[worst_index] = _Pair(rule, best_partner, best_score)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def top_k(self) -> list[GPAR]:
        """The current diversified top-k rules (highest-score pairs first)."""
        rules: list[GPAR] = []
        for pair in sorted(self._pairs, key=lambda p: -p.score):
            for rule in (pair.first, pair.second):
                if rule not in rules:
                    rules.append(rule)
        return rules[: self.k]

    def objective_value(self) -> float:
        """``F(Lk)`` of the current top-k set."""
        rules = self.top_k()
        confidences = [self._info[rule].confidence for rule in rules]
        match_sets = [self._info[rule].matches for rule in rules]
        return self.objective.total_from_matches(confidences, match_sets)
