"""Diversified GPAR mining (DMP, paper Section 4).

:class:`DMine` is the parallel miner of Theorem 2: a coordinator/worker BSP
loop that grows rule antecedents levelwise from the predicate ``q(x, y)``,
assembles supports and Bayes-factor confidences from fragment-local counts,
maintains the top-k diversified set incrementally (``incDiv``), and prunes
non-promising rules with the reduction rules of Lemma 3 and bisimulation
based automorphism grouping.  ``DMineNo`` (the paper's ``DMineno``) is the
same miner with every optimisation disabled, used as the baseline in the
Exp-1 benchmarks.
"""

from repro.mining.config import DMineConfig
from repro.mining.dmine import (
    DMine,
    DMineResult,
    MinedRule,
    dmine,
    dmine_auto,
    dmine_baseline,
    dmine_for_predicates,
)
from repro.mining.diversify import discover_and_diversify, greedy_diversify
from repro.mining.expansion import candidate_extensions
from repro.mining.incdiv import IncrementalDiversifier
from repro.mining.local_mine import LocalMiner
from repro.mining.reduction import apply_reduction_rules

__all__ = [
    "DMineConfig",
    "DMine",
    "DMineResult",
    "MinedRule",
    "dmine",
    "dmine_baseline",
    "dmine_for_predicates",
    "dmine_auto",
    "LocalMiner",
    "IncrementalDiversifier",
    "candidate_extensions",
    "apply_reduction_rules",
    "greedy_diversify",
    "discover_and_diversify",
]
