"""Message-reduction rules (Lemma 3 of Section 4.2).

After each round the coordinator can discard

1. rules in Σ whose best possible pairing — even with the most promising
   future extension and maximal diversity — cannot beat the current minimum
   pair score ``F'_m`` of the top-k queue, and
2. rules in ΔE that are not extendable, or whose optimistic future
   confidence paired with the best rule of Σ still cannot beat ``F'_m``.

Both tests rely on anti-monotone upper bounds, so pruning never removes a
rule that could still enter the top-k set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Set

from repro.metrics.diversification import DiversificationObjective
from repro.mining.incdiv import RuleInfo
from repro.pattern.gpar import GPAR


@dataclass(frozen=True)
class ReductionOutcome:
    """Result of one application of the reduction rules."""

    sigma: dict[GPAR, RuleInfo]
    extendable: dict[GPAR, RuleInfo]
    pruned_sigma: int
    pruned_delta: int


def apply_reduction_rules(
    sigma: Mapping[GPAR, RuleInfo],
    delta: Mapping[GPAR, RuleInfo],
    objective: DiversificationObjective,
    min_pair_score: float,
    protected: Set[GPAR] = frozenset(),
) -> ReductionOutcome:
    """Apply Lemma 3 until a fixpoint.

    Parameters
    ----------
    sigma:
        All rules discovered so far (Σ) with their info.
    delta:
        This round's new rules (ΔE) with their info; only these can be
        extended in the next round.
    objective:
        The diversification objective (provides F').
    min_pair_score:
        ``F'_m`` of the current top-k queue (``-inf`` disables pruning).
    protected:
        Rules that must not be pruned from Σ (the current top-k members).

    Returns
    -------
    ReductionOutcome
        The surviving Σ, the surviving extendable ΔE subset, and counts of
        pruned rules.
    """
    kept_sigma: dict[GPAR, RuleInfo] = dict(sigma)
    kept_delta: dict[GPAR, RuleInfo] = {
        rule: info for rule, info in delta.items() if info.extendable
    }
    pruned_sigma = len(delta) - len(kept_delta)  # non-extendable rules (rule 2a)
    pruned_delta_total = pruned_sigma
    pruned_sigma_total = 0

    if math.isinf(min_pair_score) and min_pair_score < 0:
        return ReductionOutcome(kept_sigma, kept_delta, 0, pruned_delta_total)

    changed = True
    while changed:
        changed = False
        max_upper_delta = max(
            (info.upper_confidence for info in kept_delta.values()), default=0.0
        )
        max_conf_sigma = max(
            (info.finite_confidence for info in kept_sigma.values()), default=0.0
        )

        # Rule (1): Σ members that cannot contribute to Lk any more.
        for rule in list(kept_sigma):
            if rule in protected:
                continue
            info = kept_sigma[rule]
            bound = objective.upper_bound_contribution(
                info.finite_confidence, max_upper_delta
            )
            if bound <= min_pair_score:
                del kept_sigma[rule]
                kept_delta.pop(rule, None)
                pruned_sigma_total += 1
                changed = True

        # Rule (2b): ΔE members whose extensions cannot contribute to Lk.
        for rule in list(kept_delta):
            info = kept_delta[rule]
            bound = objective.upper_bound_contribution(
                info.upper_confidence, max_conf_sigma
            )
            if bound <= min_pair_score:
                del kept_delta[rule]
                pruned_delta_total += 1
                changed = True

    return ReductionOutcome(kept_sigma, kept_delta, pruned_sigma_total, pruned_delta_total)
