"""The DMine parallel miner (algorithm of Fig. 4) and its unoptimised twin.

Round structure (one BSP super-step per levelwise round):

1. **propose** — every worker extends the rules in the coordinator's message
   set M by one antecedent edge, guided by its local data;
2. **deduplicate** — the coordinator groups automorphic proposals (with the
   bisimulation prefilter of Lemma 4) and keeps one representative each;
3. **evaluate** — every worker evaluates the representatives on its fragment
   and reports ``<R, conf, flag>`` messages over its owned centres;
4. **assemble** — the coordinator sums local supports, unions match sets,
   computes the global Bayes-factor confidence, applies the support
   threshold σ, feeds survivors to ``incDiv`` and prunes Σ / ΔE with the
   reduction rules before building the next message set M.

The proposal and evaluation steps run as two half-rounds so that *every*
worker evaluates *every* candidate rule (a rule proposed only at one
fragment may still have matches elsewhere); this keeps global supports
exact and is noted as an implementation refinement in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.graph.graph import Graph
from repro.metrics.confidence import bayes_factor_confidence
from repro.metrics.diversification import DiversificationObjective
from repro.metrics.lcwa import predicate_stats
from repro.mining.config import DMineConfig
from repro.mining.diversify import greedy_diversify
from repro.mining.incdiv import IncrementalDiversifier, RuleInfo
from repro.mining.local_mine import evaluate_worker, propose_worker, seed_rule
from repro.mining.reduction import apply_reduction_rules
from repro.obs.tracing import span
from repro.parallel.executor import make_executor
from repro.parallel.messages import (
    EvaluatePayload,
    Proposal,
    ProposePayload,
    RuleFocus,
    RuleMessage,
)
from repro.parallel.runtime import BSPRuntime, RunTimings
from repro.partition.partitioner import partition_graph
from repro.pattern.automorphism import group_automorphic
from repro.pattern.canonical import canonical_code
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern

NodeId = Hashable


@dataclass(frozen=True)
class MinedRule:
    """One rule of the mining output with its global statistics."""

    rule: GPAR
    confidence: float
    support: int
    matches: frozenset

    def as_row(self) -> str:
        """One-line report used by examples and the case-study benchmark."""
        conf = "inf" if math.isinf(self.confidence) else f"{self.confidence:.3f}"
        return f"{self.rule.name}: supp={self.support} conf={conf} |PR|={self.rule.size}"


@dataclass
class DMineResult:
    """Output of a DMine run."""

    top_k: list[MinedRule]
    objective_value: float
    all_rules: dict[GPAR, RuleInfo] = field(default_factory=dict)
    timings: RunTimings = field(default_factory=RunTimings)
    rounds_executed: int = 0
    candidates_generated: int = 0
    candidates_pruned: int = 0

    @property
    def num_rules_discovered(self) -> int:
        """Size of Σ: rules that met the support threshold at any round."""
        return len(self.all_rules)


class DMine:
    """Parallel diversified top-k GPAR miner.

    Parameters
    ----------
    config:
        Mining parameters; ``config.without_optimizations()`` yields the
        DMineno behaviour benchmarked in Exp-1.
    """

    def __init__(self, config: DMineConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def mine(self, graph: Graph, predicate: Pattern) -> DMineResult:
        """Mine top-k diversified GPARs for *predicate* from *graph*."""
        config = self.config
        x_label = predicate.label(predicate.x)
        centers = graph.nodes_with_label(x_label)

        global_stats = predicate_stats(graph, predicate)
        objective = DiversificationObjective(
            lam=config.lam, k=config.k, normalizer=global_stats.normalizer
        )

        fragments = partition_graph(
            graph,
            config.num_workers,
            centers=centers,
            d=config.d,
            seed=config.seed,
        )
        executor = make_executor(
            config.backend,
            config.executor_workers,
            build_indexes=config.use_index,
            build_columnar=config.use_columnar,
        )
        runtime = BSPRuntime(fragments, executor)
        runtime.start_run()

        diversifier = IncrementalDiversifier(objective, config.k)
        sigma: dict[GPAR, RuleInfo] = {}
        seen_codes: set[str] = set()
        message_set: list[GPAR] = [seed_rule(predicate)]
        # Previous-round witness sets per (fragment index, rule): the
        # coordinator keeps them so the workers can stay stateless across
        # rounds (any pool process may serve any fragment).
        witness: dict[tuple[int, GPAR], RuleMessage] = {}
        candidates_generated = 0
        candidates_pruned = 0
        rounds_executed = 0

        try:
            for _round in range(config.rounds):
                if not message_set:
                    break
                rounds_executed += 1
                rules = tuple(message_set)
                with span("dmine.round", level=_round):

                    # Half-round 1: propose extensions at every worker; the
                    # coordinator deduplicates them in the synchronisation phase.
                    propose_payloads = [
                        ProposePayload(
                            rules=rules,
                            focus=tuple(
                                self._focus_for(witness.get((fragment.index, rule)))
                                for rule in rules
                            ),
                            predicate=predicate,
                            config=config,
                        )
                        for fragment in fragments
                    ]
                    proposals_per_worker: list[list[Proposal]] = []

                    def _dedup_phase(worker_results):
                        proposals_per_worker.extend(worker_results)
                        proposals = [
                            proposal.rule
                            for worker_proposals in worker_results
                            for proposal in worker_proposals
                        ]
                        return len(proposals), self._deduplicate(proposals, seen_codes)

                    with span("dmine.propose", rules=len(rules)):
                        proposed_count, representatives = runtime.run_round(
                            propose_worker, propose_payloads, _dedup_phase
                        )
                    candidates_generated += proposed_count
                    if not representatives:
                        break

                    # Half-round 2: evaluate the representatives at every worker;
                    # the coordinator assembles confidences, updates the top-k
                    # set and prunes Σ / ΔE — all accounted as coordinator time.
                    # Global parentage: the beam rule each representative was
                    # proposed from, at whichever fragment proposed it.  Beam
                    # rules were evaluated (and their matches materialized) at
                    # *every* fragment last round, so the incremental matcher can
                    # delta-extend even at fragments that proposed an automorphic
                    # sibling — or nothing — for this representative.
                    global_parents: dict[GPAR, GPAR] = {}
                    for worker_proposals in proposals_per_worker:
                        for proposal in worker_proposals:
                            global_parents.setdefault(
                                proposal.rule, rules[proposal.parent_index]
                            )
                    evaluate_payloads = []
                    for position, fragment in enumerate(fragments):
                        pools, parents = self._evaluation_inheritance(
                            representatives,
                            proposals_per_worker[position],
                            rules,
                            fragment.index,
                            witness,
                            global_parents,
                        )
                        evaluate_payloads.append(
                            EvaluatePayload(
                                rules=tuple(representatives),
                                pools=pools,
                                predicate=predicate,
                                config=config,
                                parents=parents if config.use_incremental else (),
                            )
                        )

                    def _coordinate(messages_per_worker):
                        nonlocal sigma, candidates_pruned
                        for worker_messages in messages_per_worker:
                            for message in worker_messages:
                                witness[(message.fragment_index, message.rule)] = message
                        delta = self._assemble(representatives, messages_per_worker, global_stats)
                        delta = {
                            rule: info
                            for rule, info in delta.items()
                            if info.support >= config.sigma and not math.isinf(info.confidence)
                        }
                        sigma.update(delta)

                        if config.use_incremental_diversification:
                            diversifier.update(delta, sigma)
                        else:
                            # The "discover then diversify" behaviour of DMineno:
                            # the top-k set is recomputed from scratch over the
                            # whole Σ at every round instead of being maintained
                            # incrementally.
                            greedy_diversify(sigma, config.k, objective)

                        if config.use_reduction_rules and config.use_incremental_diversification:
                            outcome = apply_reduction_rules(
                                sigma,
                                delta,
                                objective,
                                diversifier.min_pair_score,
                                protected=set(diversifier.top_k()),
                            )
                            sigma = outcome.sigma
                            extendable = outcome.extendable
                            candidates_pruned += outcome.pruned_sigma + outcome.pruned_delta
                        else:
                            extendable = {
                                rule: info for rule, info in delta.items() if info.extendable
                            }

                        # Beam: carry the most promising extendable rules into the
                        # next round (highest optimistic confidence, then support).
                        ranked = sorted(
                            extendable.items(),
                            key=lambda item: (-item[1].upper_confidence, -item[1].support),
                        )
                        return [rule for rule, _info in ranked[: config.max_rules_per_round]]

                    with span("dmine.evaluate", representatives=len(representatives)):
                        message_set = runtime.run_round(
                            evaluate_worker, evaluate_payloads, _coordinate
                        )
                # Only the beam's rules are expanded next round; drop the rest
                # of the witness state to bound coordinator memory.
                carried = set(message_set)
                witness = {
                    key: message for key, message in witness.items() if key[1] in carried
                }
        finally:
            timings = runtime.finish_run()

        if config.use_incremental_diversification:
            top_rules = diversifier.top_k()
            objective_value = diversifier.objective_value() if top_rules else 0.0
        else:
            top_rules = greedy_diversify(sigma, config.k, objective)
            objective_value = (
                objective.total_from_matches(
                    [sigma[rule].confidence for rule in top_rules],
                    [sigma[rule].matches for rule in top_rules],
                )
                if top_rules
                else 0.0
            )

        top_k = [
            MinedRule(
                rule=rule,
                confidence=sigma[rule].confidence,
                support=sigma[rule].support,
                matches=sigma[rule].matches,
            )
            for rule in top_rules
            if rule in sigma
        ]
        return DMineResult(
            top_k=top_k,
            objective_value=objective_value,
            all_rules=sigma,
            timings=timings,
            rounds_executed=rounds_executed,
            candidates_generated=candidates_generated,
            candidates_pruned=candidates_pruned,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _focus_for(message: RuleMessage | None) -> RuleFocus:
        """Focus entry for one rule at one fragment from last round's message."""
        if message is None:
            return RuleFocus()
        return RuleFocus(centers=frozenset(message.rule_matches))

    @staticmethod
    def _evaluation_inheritance(
        representatives: Sequence[GPAR],
        proposals: Sequence[Proposal],
        parent_rules: Sequence[GPAR],
        fragment_index: int,
        witness: dict[tuple[int, GPAR], RuleMessage],
        global_parents: dict[GPAR, GPAR] | None = None,
    ) -> tuple[tuple[frozenset | None, ...], tuple[GPAR | None, ...]]:
        """Per-representative (pool, parent) pairs for one fragment's evaluation.

        A representative inherits the antecedent match set of the parent it
        was proposed from *at this fragment* (anti-monotonicity makes the
        restriction lossless), and — for the incremental matcher — a parent
        rule, so the worker can delta-extend the parent's materialized
        embeddings.  Fragments that proposed a structurally different member
        of the representative's automorphism group — or none at all — get
        ``None`` pools (full candidate set, exactly as the per-worker caches
        used to behave) but still receive the *global* parent: every beam
        rule was evaluated at every fragment, so its materialized matches
        exist there regardless of which fragment proposed this child.
        """
        pool_by_rule: dict[GPAR, frozenset | None] = {}
        parent_by_rule: dict[GPAR, GPAR] = dict(global_parents or {})
        for proposal in proposals:
            parent = parent_rules[proposal.parent_index]
            message = witness.get((fragment_index, parent))
            pool_by_rule[proposal.rule] = (
                frozenset(message.antecedent_matches) if message is not None else None
            )
            parent_by_rule[proposal.rule] = parent
        pools = tuple(pool_by_rule.get(rule) for rule in representatives)
        parents = tuple(parent_by_rule.get(rule) for rule in representatives)
        return pools, parents

    def _deduplicate(self, proposals: Sequence[GPAR], seen_codes: set[str]) -> list[GPAR]:
        """Group automorphic proposals and drop rules evaluated before.

        *seen_codes* holds the canonical code of every representative ever
        evaluated — including trivial or low-support ones — so the same
        structure is never regenerated and re-verified in a later round.
        """
        if not proposals:
            return []
        fresh = [
            rule
            for rule in proposals
            if canonical_code(rule.pr_pattern()) not in seen_codes
        ]
        if not fresh:
            return []
        groups = group_automorphic(
            fresh, use_bisimulation_filter=self.config.use_bisimulation_filter
        )
        representatives: list[GPAR] = []
        for group in groups:
            representative = group[0]
            code = canonical_code(representative.pr_pattern())
            if code in seen_codes:
                continue
            seen_codes.add(code)
            renamed = GPAR(
                representative.antecedent,
                representative.consequent_label,
                name=f"R{len(seen_codes)}",
                validate=False,
            )
            representatives.append(renamed)
        return representatives

    def _assemble(
        self,
        rules: Sequence[GPAR],
        messages_per_worker: Sequence[Sequence[RuleMessage]],
        global_stats,
    ) -> dict[GPAR, RuleInfo]:
        """Assemble global supports/confidence from fragment-local messages."""
        by_rule: dict[GPAR, list[RuleMessage]] = {rule: [] for rule in rules}
        for worker_messages in messages_per_worker:
            for message in worker_messages:
                by_rule.setdefault(message.rule, []).append(message)

        assembled: dict[GPAR, RuleInfo] = {}
        supp_q = global_stats.supp_q
        supp_q_bar = global_stats.supp_q_bar
        for rule, messages in by_rule.items():
            supp_r = sum(message.supp_r for message in messages)
            supp_q_qbar = sum(message.supp_q_qbar for message in messages)
            matches = frozenset().union(*(message.rule_matches for message in messages)) if messages else frozenset()
            upper_support = sum(message.upper_support for message in messages)
            confidence = bayes_factor_confidence(supp_r, supp_q_bar, supp_q_qbar, supp_q)
            upper_confidence = (
                (upper_support * supp_q_bar) / supp_q if supp_q else math.inf
            )
            assembled[rule] = RuleInfo(
                confidence=confidence,
                support=supp_r,
                matches=matches,
                upper_confidence=upper_confidence,
                extendable=any(message.extendable for message in messages),
            )
        return assembled


def dmine(graph: Graph, predicate: Pattern, config: DMineConfig | None = None, **overrides) -> DMineResult:
    """Convenience wrapper: run the optimised DMine with *config* or keyword overrides."""
    if config is None:
        config = DMineConfig(**overrides)
    return DMine(config).mine(graph, predicate)


def dmine_baseline(graph: Graph, predicate: Pattern, config: DMineConfig | None = None, **overrides) -> DMineResult:
    """Run the unoptimised DMineno variant (Exp-1 baseline)."""
    if config is None:
        config = DMineConfig(**overrides)
    return DMine(config.without_optimizations()).mine(graph, predicate)


def dmine_for_predicates(
    graph: Graph,
    predicates: Sequence[Pattern],
    config: DMineConfig | None = None,
) -> dict[Pattern, DMineResult]:
    """Mine top-k GPARs for every predicate of a set (paper §4.2, Remarks).

    The paper notes that when a *set* of predicates is given, DMine groups
    them and mines each distinct ``q(x, y)`` in turn; this helper does
    exactly that and returns one :class:`DMineResult` per predicate.
    """
    config = config if config is not None else DMineConfig()
    miner = DMine(config)
    results: dict[Pattern, DMineResult] = {}
    for predicate in predicates:
        if predicate in results:
            continue
        results[predicate] = miner.mine(graph, predicate)
    return results


def dmine_auto(
    graph: Graph,
    config: DMineConfig | None = None,
    top_predicates: int = 5,
) -> dict[Pattern, DMineResult]:
    """Mine without a user-specified predicate (paper §4.2, Remarks case 2).

    Collects the *top_predicates* most frequent single-edge patterns of the
    graph as predicates of interest and mines GPARs for each of them.
    """
    from repro.datasets.workloads import most_frequent_predicates

    predicates = most_frequent_predicates(graph, top=top_predicates)
    return dmine_for_predicates(graph, predicates, config)
