"""Data-driven levelwise expansion of rule antecedents (``localMine``).

A worker grows a GPAR by one antecedent edge at a time.  Rather than
enumerating all label combinations, extensions are read off the data: for a
matched centre, the antecedent match is overlaid on the fragment and every
incident data edge that is not yet part of the pattern becomes a candidate
extension — either a *closing* edge between two already-present pattern nodes
or a *growing* edge to a fresh pattern node carrying the data node's label.
Extensions supported by more centres are proposed first.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.graph.graph import Graph
from repro.matching.base import Matcher
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern, PatternEdge
from repro.pattern.radius import pattern_radius

NodeId = Hashable


@dataclass(frozen=True)
class _ExtensionKey:
    """Structural identity of a candidate extension.

    ``closing`` extensions connect two existing pattern nodes; ``growing``
    extensions attach a new node with *other_label* to *pattern_node*.
    """

    kind: str  # "closing" | "growing"
    pattern_source: object
    pattern_target: object
    edge_label: str
    other_label: str | None = None
    outgoing: bool = True

    def sort_key(self) -> tuple:
        """A total order independent of hash seeds and process identity."""
        return (
            self.kind,
            str(self.pattern_source),
            str(self.pattern_target),
            self.edge_label,
            str(self.other_label),
            self.outgoing,
        )


def _extension_keys_for_match(
    graph: Graph,
    antecedent: Pattern,
    mapping: dict,
    consequent_label: str,
) -> set[_ExtensionKey]:
    """All single-edge extensions suggested by one antecedent match."""
    keys: set[_ExtensionKey] = set()
    image = {data_node: pattern_node for pattern_node, data_node in mapping.items()}
    existing_edges = set(antecedent.edges())
    for pattern_node, data_node in mapping.items():
        for edge in graph.out_edges(data_node):
            other_pattern = image.get(edge.target)
            if other_pattern is not None:
                candidate = PatternEdge(pattern_node, other_pattern, edge.label)
                if candidate in existing_edges or other_pattern == pattern_node:
                    continue
                # Never re-introduce the consequent edge q(x, y).
                if (
                    pattern_node == antecedent.x
                    and other_pattern == antecedent.y
                    and edge.label == consequent_label
                ):
                    continue
                keys.add(
                    _ExtensionKey(
                        kind="closing",
                        pattern_source=pattern_node,
                        pattern_target=other_pattern,
                        edge_label=edge.label,
                    )
                )
            else:
                keys.add(
                    _ExtensionKey(
                        kind="growing",
                        pattern_source=pattern_node,
                        pattern_target=None,
                        edge_label=edge.label,
                        other_label=graph.node_label(edge.target),
                        outgoing=True,
                    )
                )
        for edge in graph.in_edges(data_node):
            other_pattern = image.get(edge.source)
            if other_pattern is not None:
                candidate = PatternEdge(other_pattern, pattern_node, edge.label)
                if candidate in existing_edges or other_pattern == pattern_node:
                    continue
                if (
                    other_pattern == antecedent.x
                    and pattern_node == antecedent.y
                    and edge.label == consequent_label
                ):
                    continue
                keys.add(
                    _ExtensionKey(
                        kind="closing",
                        pattern_source=other_pattern,
                        pattern_target=pattern_node,
                        edge_label=edge.label,
                    )
                )
            else:
                keys.add(
                    _ExtensionKey(
                        kind="growing",
                        pattern_source=pattern_node,
                        pattern_target=None,
                        edge_label=edge.label,
                        other_label=graph.node_label(edge.source),
                        outgoing=False,
                    )
                )
    return keys


def _apply_extension(rule: GPAR, key: _ExtensionKey, name: str) -> GPAR | None:
    """Materialise an extension key into a new GPAR (None if invalid).

    Extensions are applied to the *unexpanded* antecedent; keys that refer to
    copy-expansion sibling nodes (which only exist in the expanded view) are
    rejected, as are extensions that would not change the pattern.
    """
    antecedent = rule.antecedent
    try:
        if key.kind == "closing":
            new_antecedent = antecedent.with_edge(
                key.pattern_source, key.pattern_target, key.edge_label
            )
        else:
            new_node = f"v{antecedent.num_nodes}"
            while antecedent.has_node(new_node):
                new_node = new_node + "_"
            if key.outgoing:
                new_antecedent = antecedent.with_edge(
                    key.pattern_source, new_node, key.edge_label, target_label=key.other_label
                )
            else:
                new_antecedent = antecedent.with_edge(
                    new_node, key.pattern_source, key.edge_label, source_label=key.other_label
                )
        if new_antecedent == antecedent:
            return None
        return GPAR(new_antecedent, rule.consequent_label, name=name, validate=False)
    except Exception:
        return None


def candidate_extensions(
    graph: Graph,
    rule: GPAR,
    centers: Iterable[NodeId],
    matcher: Matcher,
    max_radius: int,
    max_extensions: int = 30,
    consequent_label: str | None = None,
    witnesses=None,
) -> list[GPAR]:
    """Single-edge extensions of *rule* suggested by *graph* around *centers*.

    Parameters
    ----------
    centers:
        Data nodes at which the antecedent currently matches (typically the
        fragment's owned matched centres); each contributes one witness match.
    max_radius:
        Extensions whose rule pattern exceeds this radius at x are dropped.
    max_extensions:
        At most this many extensions are returned, most-supported first.
    witnesses:
        Optional materialized witness source (an object with
        ``witness_for(center) -> mapping | None``, e.g. a canonical
        :class:`repro.matching.incremental.MatchEntry` of the antecedent).
        A stored witness replaces the fresh ``find_match_at`` probe; it must
        be the *same* mapping the probe would return (canonical entries
        guarantee this), so the proposed extensions are unchanged.

    Returns
    -------
    list[GPAR]
        New rules, each exactly one antecedent edge larger than *rule*.
    """
    q_label = consequent_label if consequent_label is not None else rule.consequent_label
    antecedent = rule.antecedent.expanded()
    votes: Counter = Counter()
    for center in centers:
        mapping = witnesses.witness_for(center) if witnesses is not None else None
        if mapping is None:
            mapping = matcher.find_match_at(graph, antecedent, center)
        if mapping is None:
            continue
        for key in _extension_keys_for_match(graph, antecedent, mapping, q_label):
            votes[key] += 1

    # Most-supported first with a *total* tie order: Counter.most_common
    # breaks ties by insertion order, which follows set iteration and hence
    # the per-process hash seed — sorting on the key itself keeps the
    # max_extensions truncation identical on every execution backend
    # (including spawn-based process pools).
    ranked = sorted(votes.items(), key=lambda item: (-item[1], item[0].sort_key()))
    extensions: list[GPAR] = []
    for key, _count in ranked:
        candidate = _apply_extension(rule, key, name=f"{rule.name}+")
        if candidate is None:
            continue
        try:
            radius = pattern_radius(candidate.pr_pattern(), candidate.x)
        except Exception:
            continue
        if radius > max_radius:
            continue
        extensions.append(candidate)
        if len(extensions) >= max_extensions:
            break
    return extensions
