"""Configuration of the DMine miner."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MiningError
from repro.parallel.executor import BACKENDS


@dataclass(frozen=True)
class DMineConfig:
    """Parameters of a DMine run.

    Attributes
    ----------
    k:
        Size of the diversified top-k set to return.
    d:
        Maximum radius ``r(PR, x)`` of mined rule patterns.
    sigma:
        Minimum global support ``supp(R, G) >= sigma``.
    lam:
        Diversification balance λ ∈ [0, 1] (paper default 0.5).
    num_workers:
        Number of fragments / workers n.
    max_edges:
        Maximum number of antecedent edges (bounds the levelwise growth; the
        paper bounds growth by radius only, but unbounded edge growth is not
        meaningful on dense graphs).
    max_rounds:
        Number of levelwise rounds; defaults to *max_edges* (one edge is
        added per round per surviving rule).
    max_extensions_per_rule:
        Cap on the number of distinct extensions a worker proposes for one
        rule in one round (most-frequent extensions are kept).
    max_rules_per_round:
        Beam width: at most this many extendable rules are carried into the
        next round's message set M (highest optimistic confidence first).
        The paper reports "up to 300 patterns" being verified; this knob
        keeps the levelwise search within the same order of magnitude.
    matcher:
        ``"vf2"`` (plain backtracking, the default — DMine's optimisations
        are orthogonal to the matcher) or ``"guided"`` (sketch-guided
        search, mainly useful on graphs with very skewed label frequencies).
    use_index:
        Serve matcher probes from each fragment's resident
        :class:`repro.graph.index.FragmentIndex` (built in the worker-pool
        initializer on the process backend).  ``False`` re-derives label
        sets, profiles and sketches from the raw graph per probe; both
        settings mine identical rules (see docs/indexing.md).
    use_columnar:
        Serve label-bucket candidate pools and the shared profile filter
        from each fragment's resident
        :class:`repro.graph.columnar.ColumnarFragment` (CSR adjacency and
        interned-label profile matrix, vectorized when numpy is available).
        ``False`` keeps the dict/per-probe path; both settings mine
        identical rules (see docs/columnar.md).
    use_incremental:
        Delta-extend matches across DMine levels: each fragment materializes
        the match sets and witness embeddings of the rules it evaluates in a
        resident :class:`repro.matching.incremental.MatchStore`, and the
        next level's candidates (parent + one edge) are matched by probing
        only the new edge's endpoints, with exact fallback to full matching
        on any store miss.  ``False`` re-matches every candidate from
        scratch; both settings mine identical rules (see
        docs/incremental.md).
    use_incremental_diversification:
        incDiv on/off — off means "discover then diversify" at the end.
    use_reduction_rules:
        The message-reduction rules of Lemma 3 on/off.
    use_bisimulation_filter:
        Bisimulation prefilter before exact automorphism checks on/off.
    seed:
        Seed for partitioning tie-breaks.
    backend:
        Execution backend: ``"sequential"`` (default), ``"threads"`` or
        ``"processes"`` (real multi-core parallelism via a persistent
        worker pool).  All backends produce identical rule sets.
    executor_workers:
        Pool size for the thread/process backends; ``None`` sizes the pool
        to ``min(num_workers, cpu_count)``.
    """

    k: int = 10
    d: int = 2
    sigma: int = 1
    lam: float = 0.5
    num_workers: int = 4
    max_edges: int = 4
    max_rounds: int | None = None
    max_extensions_per_rule: int = 30
    max_rules_per_round: int = 60
    matcher: str = "vf2"
    use_index: bool = True
    use_columnar: bool = True
    use_incremental: bool = True
    use_incremental_diversification: bool = True
    use_reduction_rules: bool = True
    use_bisimulation_filter: bool = True
    seed: int = 0
    backend: str = "sequential"
    executor_workers: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise MiningError(f"k must be >= 1, got {self.k}")
        if self.d < 1:
            raise MiningError(f"d must be >= 1, got {self.d}")
        if self.sigma < 0:
            raise MiningError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.lam <= 1.0:
            raise MiningError(f"lambda must be in [0, 1], got {self.lam}")
        if self.num_workers < 1:
            raise MiningError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.max_edges < 1:
            raise MiningError(f"max_edges must be >= 1, got {self.max_edges}")
        if self.max_rules_per_round < 1:
            raise MiningError(
                f"max_rules_per_round must be >= 1, got {self.max_rules_per_round}"
            )
        if self.matcher not in ("guided", "vf2"):
            raise MiningError(f"matcher must be 'guided' or 'vf2', got {self.matcher!r}")
        if self.backend not in BACKENDS:
            raise MiningError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.executor_workers is not None and self.executor_workers < 1:
            raise MiningError(
                f"executor_workers must be >= 1, got {self.executor_workers}"
            )

    @property
    def rounds(self) -> int:
        """Number of levelwise rounds to run."""
        return self.max_rounds if self.max_rounds is not None else self.max_edges

    def without_optimizations(self) -> "DMineConfig":
        """The DMineno variant: identical search, all optimisations off."""
        return DMineConfig(
            k=self.k,
            d=self.d,
            sigma=self.sigma,
            lam=self.lam,
            num_workers=self.num_workers,
            max_edges=self.max_edges,
            max_rounds=self.max_rounds,
            max_extensions_per_rule=self.max_extensions_per_rule,
            max_rules_per_round=self.max_rules_per_round,
            matcher="vf2",
            use_index=self.use_index,
            # The columnar kernel, like the index and the incremental
            # materialization, is an implementation-level representation
            # choice, not one of the paper's mining optimisations — DMineno
            # keeps whatever the caller chose.
            use_columnar=self.use_columnar,
            use_incremental=self.use_incremental,
            use_incremental_diversification=False,
            use_reduction_rules=False,
            use_bisimulation_filter=False,
            seed=self.seed,
            backend=self.backend,
            executor_workers=self.executor_workers,
        )
