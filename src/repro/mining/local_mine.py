"""Worker-side mining (procedure ``localMine`` of Fig. 4).

Each worker holds one fragment.  Per round it (a) proposes single-edge
extensions of the rules received from the coordinator, guided by the data
around its matched centre nodes, and (b) evaluates rules on its fragment,
producing the ``<R, conf, flag>`` messages the coordinator assembles.
All support counts are restricted to the fragment's *owned* centres, so the
coordinator can sum them without double counting.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.matching.base import Matcher
from repro.matching.guided import GuidedMatcher
from repro.matching.vf2 import VF2Matcher
from repro.metrics.lcwa import predicate_stats_over
from repro.mining.config import DMineConfig
from repro.mining.expansion import candidate_extensions
from repro.parallel.messages import RuleMessage
from repro.partition.fragment import Fragment
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern

NodeId = Hashable


def make_matcher(kind: str) -> Matcher:
    """Instantiate the anchored matcher named by a config string."""
    if kind == "guided":
        return GuidedMatcher()
    return VF2Matcher()


def seed_rule(predicate: Pattern, name: str = "seed") -> GPAR:
    """The round-0 seed: the predicate with an *empty* antecedent.

    It is not a valid (nontrivial) GPAR — its antecedent has no edge — so it
    is built without validation and never reported; it exists only to be
    expanded in the first round.
    """
    antecedent = Pattern(
        nodes={predicate.x: predicate.label(predicate.x), predicate.y: predicate.label(predicate.y)},
        edges=[],
        x=predicate.x,
        y=predicate.y,
    )
    edge = predicate.edges()[0]
    return GPAR(antecedent, consequent_label=edge.label, name=name, validate=False)


class LocalMiner:
    """Per-fragment mining state and the propose/evaluate round steps."""

    def __init__(self, fragment: Fragment, predicate: Pattern, config: DMineConfig) -> None:
        self.fragment = fragment
        self.predicate = predicate
        self.config = config
        self.matcher = make_matcher(config.matcher)

        stats = predicate_stats_over(fragment.graph, predicate, fragment.owned_centers)
        # Candidate centres C_i: owned nodes satisfying the search condition on x.
        self.candidates: set[NodeId] = (
            set(stats.positives) | set(stats.negatives) | set(stats.unknown)
        )
        self.local_positives: set[NodeId] = set(stats.positives)
        self.local_negatives: set[NodeId] = set(stats.negatives)
        # Cached antecedent/rule match sets from the previous evaluation,
        # used to focus the next round's expansion on supporting centres.
        self._last_rule_matches: dict[GPAR, set[NodeId]] = {}
        # Candidate pool inherited from a rule's parent: by anti-monotonicity
        # the antecedent matches of an extension are a subset of its parent's,
        # so evaluation only needs to probe that subset.
        self._inherited_pool: dict[GPAR, set[NodeId]] = {}
        self._last_antecedent_matches: dict[GPAR, set[NodeId]] = {}

    # ------------------------------------------------------------------
    @property
    def supp_q_local(self) -> int:
        """Fragment-local ``supp(q, F_i)`` over owned centres."""
        return len(self.local_positives)

    @property
    def supp_q_bar_local(self) -> int:
        """Fragment-local ``supp(q̄, F_i)`` over owned centres."""
        return len(self.local_negatives)

    # ------------------------------------------------------------------
    def propose(self, rules: Sequence[GPAR]) -> list[GPAR]:
        """Propose single-edge extensions for every rule in *rules*."""
        proposals: list[GPAR] = []
        for rule in rules:
            if rule.antecedent.num_edges == 0:
                centers: set[NodeId] = set(self.local_positives)
            else:
                centers = self._last_rule_matches.get(rule, set(self.local_positives))
            if not centers:
                continue
            parent_pool = self._last_antecedent_matches.get(rule, self.candidates)
            extensions = candidate_extensions(
                self.fragment.graph,
                rule,
                sorted(centers, key=str),
                self.matcher,
                max_radius=self.config.d,
                max_extensions=self.config.max_extensions_per_rule,
            )
            for extension in extensions:
                self._inherited_pool[extension] = set(parent_pool)
            proposals.extend(extensions)
        return proposals

    def evaluate(self, rules: Sequence[GPAR]) -> list[RuleMessage]:
        """Evaluate *rules* on the fragment, producing one message per rule."""
        messages: list[RuleMessage] = []
        for rule in rules:
            pool = self._inherited_pool.get(rule, self.candidates)
            antecedent_matches = self.matcher.match_set(
                self.fragment.graph, rule.antecedent, candidates=pool
            )
            self._last_antecedent_matches[rule] = set(antecedent_matches)
            rule_pool = antecedent_matches & self.local_positives
            rule_matches = self.matcher.match_set(
                self.fragment.graph, rule.pr_pattern(), candidates=rule_pool
            )
            qbar_matches = antecedent_matches & self.local_negatives
            extendable = (
                bool(rule_matches)
                and rule.antecedent.num_edges < self.config.max_edges
            )
            self._last_rule_matches[rule] = set(rule_matches)
            messages.append(
                RuleMessage(
                    rule=rule,
                    fragment_index=self.fragment.index,
                    supp_r=len(rule_matches),
                    supp_antecedent=len(antecedent_matches),
                    supp_q_qbar=len(qbar_matches),
                    supp_q=self.supp_q_local,
                    supp_q_bar=self.supp_q_bar_local,
                    extendable=extendable,
                    rule_matches=set(rule_matches),
                    antecedent_matches=set(antecedent_matches),
                    qbar_matches=set(qbar_matches),
                    # Anti-monotone upper bound on the support any extension
                    # of this rule can reach at this fragment.
                    upper_support=len(rule_matches),
                )
            )
        return messages
