"""Worker-side mining (procedure ``localMine`` of Fig. 4).

Each worker holds one fragment.  Per round it (a) proposes single-edge
extensions of the rules received from the coordinator, guided by the data
around its matched centre nodes, and (b) evaluates rules on its fragment,
producing the ``<R, conf, flag>`` messages the coordinator assembles.
All support counts are restricted to the fragment's *owned* centres, so the
coordinator can sum them without double counting.

The miner itself is **stateless across rounds**: everything it needs beyond
its fragment arrives in the round payload (previous-round witness sets are
tracked by the coordinator and shipped back as :class:`RuleFocus` entries).
That makes the propose/evaluate steps pure functions of
``(fragment, payload)``, which is what allows the process-pool backend to
run any fragment's task in any worker process and still produce results
identical to the sequential backend.  The module-level
:func:`propose_worker` / :func:`evaluate_worker` functions are the picklable
entry points handed to :class:`repro.parallel.runtime.BSPRuntime`.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.graph.index import graph_index
from repro.matching.base import Matcher
from repro.matching.guided import GuidedMatcher
from repro.matching.incremental import DeltaMatcher, MatchStore, single_edge_delta
from repro.matching.vf2 import VF2Matcher
from repro.metrics.lcwa import predicate_stats_over
from repro.mining.config import DMineConfig
from repro.mining.expansion import candidate_extensions
from repro.parallel.messages import (
    EvaluatePayload,
    Proposal,
    ProposePayload,
    RuleFocus,
    RuleMessage,
)
from repro.parallel.worker import WorkerContext
from repro.partition.fragment import Fragment
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern

NodeId = Hashable


def make_matcher(kind: str, use_index: bool = True, use_columnar: bool = True) -> Matcher:
    """Instantiate the anchored matcher named by a config string."""
    if kind == "guided":
        return GuidedMatcher(use_index=use_index, use_columnar=use_columnar)
    return VF2Matcher(use_index=use_index, use_columnar=use_columnar)


def seed_rule(predicate: Pattern, name: str = "seed") -> GPAR:
    """The round-0 seed: the predicate with an *empty* antecedent.

    It is not a valid (nontrivial) GPAR — its antecedent has no edge — so it
    is built without validation and never reported; it exists only to be
    expanded in the first round.
    """
    antecedent = Pattern(
        nodes={predicate.x: predicate.label(predicate.x), predicate.y: predicate.label(predicate.y)},
        edges=[],
        x=predicate.x,
        y=predicate.y,
    )
    edge = predicate.edges()[0]
    return GPAR(antecedent, consequent_label=edge.label, name=name, validate=False)


class LocalMiner:
    """Per-fragment mining state and the propose/evaluate round steps.

    Construction is deterministic in ``(fragment, predicate, config)``, so a
    worker process can rebuild an equivalent miner from scratch; the
    instance carries no cross-round mutable state.
    """

    def __init__(self, fragment: Fragment, predicate: Pattern, config: DMineConfig) -> None:
        self.fragment = fragment
        self.predicate = predicate
        self.config = config
        self.matcher = make_matcher(
            config.matcher,
            use_index=config.use_index,
            use_columnar=config.use_columnar,
        )
        # Pin the fragment's resident index so every probe this miner makes
        # (and every other consumer in the process) shares one build; on the
        # process backend the build already happened in the pool initializer.
        self.index = graph_index(fragment.graph) if config.use_index else None
        # Fragment-resident match materialization: parent levels' match sets
        # and embeddings live here between rounds so children are matched by
        # delta extension.  Like the index, the store never crosses a pickle
        # boundary — a cold worker process simply starts with an empty store
        # and the evaluation falls back to full matching (identical results).
        self.store = MatchStore(fragment.graph) if config.use_incremental else None
        self.delta = (
            DeltaMatcher(fragment.graph, self.matcher, self.store)
            if self.store is not None
            else None
        )

        stats = predicate_stats_over(fragment.graph, predicate, fragment.owned_centers)
        # Candidate centres C_i: owned nodes satisfying the search condition on x.
        self.candidates: set[NodeId] = (
            set(stats.positives) | set(stats.negatives) | set(stats.unknown)
        )
        self.local_positives: set[NodeId] = set(stats.positives)
        self.local_negatives: set[NodeId] = set(stats.negatives)

    # ------------------------------------------------------------------
    @property
    def supp_q_local(self) -> int:
        """Fragment-local ``supp(q, F_i)`` over owned centres."""
        return len(self.local_positives)

    @property
    def supp_q_bar_local(self) -> int:
        """Fragment-local ``supp(q̄, F_i)`` over owned centres."""
        return len(self.local_negatives)

    # ------------------------------------------------------------------
    def propose(
        self, rules: Sequence[GPAR], focus: Sequence[RuleFocus] | None = None
    ) -> list[Proposal]:
        """Propose single-edge extensions for every rule in *rules*.

        *focus* (parallel to *rules*) carries the previous round's witness
        sets at this fragment: expansion starts from the centres that
        matched the rule, and each proposal is tagged with its parent's index
        so the coordinator can hand the evaluation the parent's anti-monotone
        candidate pool.
        """
        proposals: list[Proposal] = []
        for index, rule in enumerate(rules):
            entry = focus[index] if focus is not None else RuleFocus()
            if rule.antecedent.num_edges == 0 or entry.centers is None:
                centers: set[NodeId] = set(self.local_positives)
            else:
                centers = set(entry.centers)
            if not centers:
                continue
            witnesses = None
            if self.store is not None and rule.antecedent.num_edges > 0:
                entry = self.store.get(rule.antecedent)
                # Only canonical entries are safe to reuse: their first
                # embedding per centre *is* the mapping find_match_at would
                # return, so the proposed extensions are identical whether
                # the witness comes from the store or from a fresh probe.
                if entry is not None and entry.canonical_witness:
                    witnesses = entry
            extensions = candidate_extensions(
                self.fragment.graph,
                rule,
                sorted(centers, key=str),
                self.matcher,
                max_radius=self.config.d,
                max_extensions=self.config.max_extensions_per_rule,
                witnesses=witnesses,
            )
            proposals.extend(Proposal(extension, index) for extension in extensions)
        return proposals

    def evaluate(
        self,
        rules: Sequence[GPAR],
        pools: Sequence[frozenset | None] | None = None,
        parents: Sequence[GPAR | None] | None = None,
    ) -> list[RuleMessage]:
        """Evaluate *rules* on the fragment, producing one message per rule.

        *pools* (parallel to *rules*) restricts each rule's evaluation to the
        inherited candidate pool — its parent's antecedent matches at this
        fragment; by anti-monotonicity the restriction never changes the
        result, only the work.  ``None`` entries fall back to the fragment's
        full candidate set.

        *parents* (parallel to *rules*, incremental mode only) names the
        rule each entry was proposed from at this fragment.  When the
        parent's matches are materialized in the fragment's
        :class:`~repro.matching.incremental.MatchStore`, the child's
        antecedent and PR match sets are produced by delta-extending the
        parent's embeddings through the one new edge instead of re-matching
        from scratch; every miss falls back to full matching, so the
        resulting messages are identical either way.
        """
        messages: list[RuleMessage] = []
        materialized: list[str] = []
        for index, rule in enumerate(rules):
            inherited = pools[index] if pools is not None else None
            pool = set(inherited) if inherited is not None else self.candidates
            parent = parents[index] if parents else None
            antecedent_matches, rule_matches = self._match_rule(
                rule, pool, parent, materialized
            )
            qbar_matches = antecedent_matches & self.local_negatives
            extendable = (
                bool(rule_matches)
                and rule.antecedent.num_edges < self.config.max_edges
            )
            messages.append(
                RuleMessage(
                    rule=rule,
                    fragment_index=self.fragment.index,
                    supp_r=len(rule_matches),
                    supp_antecedent=len(antecedent_matches),
                    supp_q_qbar=len(qbar_matches),
                    supp_q=self.supp_q_local,
                    supp_q_bar=self.supp_q_bar_local,
                    extendable=extendable,
                    rule_matches=frozenset(rule_matches),
                    antecedent_matches=frozenset(antecedent_matches),
                    qbar_matches=frozenset(qbar_matches),
                    # Anti-monotone upper bound on the support any extension
                    # of this rule can reach at this fragment.
                    upper_support=len(rule_matches),
                )
            )
        if self.store is not None:
            # The only parents the next level can need are this level's
            # children: evict everything else.  The store itself then holds
            # one level of entries; note that a child's lazy embedding
            # streams keep their ancestors' streams reachable (they pull
            # parent embeddings on demand), so resident embedding memory is
            # bounded by ancestry depth (<= max_edges) x matched centres x
            # the per-centre cap, not by the entry count alone.
            self.store.retain(materialized)
        return messages

    def _match_rule(
        self,
        rule: GPAR,
        pool: set[NodeId],
        parent: GPAR | None,
        materialized: list[str],
    ) -> tuple[set[NodeId], set[NodeId]]:
        """Antecedent and PR match sets of *rule* over *pool* (owned centres).

        The incremental path and the plain path return identical sets; the
        incremental one merely routes through the fragment's match store.
        """
        graph = self.fragment.graph
        if self.store is None:
            antecedent_matches = self.matcher.match_set(
                graph, rule.antecedent, candidates=pool
            )
            rule_pool = antecedent_matches & self.local_positives
            rule_matches = self.matcher.match_set(
                graph, rule.pr_pattern(), candidates=rule_pool
            )
            return antecedent_matches, rule_matches

        # Materialize embeddings only for rules whose children can still be
        # proposed: a rule at the edge budget is never extended, so storing
        # its embeddings would be pure overhead.
        want_entry = rule.antecedent.num_edges < min(
            self.config.max_edges, self.config.rounds
        )
        ant_delta = pr_delta = None
        ant_parent = pr_parent = None
        if parent is not None and parent.antecedent.num_edges > 0:
            ant_parent = self.store.get(parent.antecedent)
            pr_parent = self.store.get(parent.pr_pattern())
            if ant_parent is not None or pr_parent is not None:
                ant_delta = single_edge_delta(parent.antecedent, rule.antecedent)
                # PR(child) = PR(parent) + the same delta edge; recomputed
                # from the PR patterns so a surprise (copy counts, renamed
                # nodes) degrades to the exact fallback instead of a wrong
                # extension.
                pr_delta = single_edge_delta(parent.pr_pattern(), rule.pr_pattern())

        if ant_parent is not None and ant_delta is not None:
            antecedent_matches, ant_entry = self.delta.extend(
                ant_parent, rule.antecedent, ant_delta, pool, want_entry
            )
        else:
            antecedent_matches, ant_entry = self.delta.materialize(
                rule.antecedent, pool, want_entry
            )
        rule_pool = antecedent_matches & self.local_positives
        if pr_parent is not None and pr_delta is not None:
            rule_matches, pr_entry = self.delta.extend(
                pr_parent, rule.pr_pattern(), pr_delta, rule_pool, want_entry
            )
        else:
            rule_matches, pr_entry = self.delta.materialize(
                rule.pr_pattern(), rule_pool, want_entry
            )
        for entry in (ant_entry, pr_entry):
            if entry is not None:
                materialized.append(self.store.code_for(entry.pattern))
        return antecedent_matches, rule_matches


# ----------------------------------------------------------------------
# Module-level worker entry points (picklable by reference).
# ----------------------------------------------------------------------
def miner_for(context: WorkerContext, predicate: Pattern, config: DMineConfig) -> LocalMiner:
    """The context's cached :class:`LocalMiner` for (predicate, config)."""
    return context.cached(
        ("local-miner", predicate, config),
        lambda: LocalMiner(context.fragment, predicate, config),
    )


def propose_worker(context: WorkerContext, payload: ProposePayload) -> list[Proposal]:
    """BSP worker function for the propose half-round."""
    miner = miner_for(context, payload.predicate, payload.config)
    return miner.propose(payload.rules, payload.focus)


def evaluate_worker(context: WorkerContext, payload: EvaluatePayload) -> list[RuleMessage]:
    """BSP worker function for the evaluate half-round."""
    miner = miner_for(context, payload.predicate, payload.config)
    return miner.evaluate(payload.rules, payload.pools, payload.parents or None)
