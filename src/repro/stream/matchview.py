"""Maintained match sets: ``Q(x, G)`` kept current under graph updates.

:class:`MaintainedMatchView` is the matcher-level face of the streaming
subsystem (the identifier in :mod:`repro.stream.identifier` is the
algorithm-level one): it materializes the match sets of a fixed pattern
family once — embeddings included, via the incremental
:class:`~repro.matching.incremental.MatchStore` — and after every update
batch repairs them with :meth:`MatchStore.repair` instead of re-matching.
Only centres within a pattern's repair radius of a touched node are
re-decided; everyone else's verdict (and lazily suspended embedding
stream) carries over untouched.

This is what the ``stream`` bench-smoke family measures head-to-head
against from-scratch re-matching, mirroring how the ``index`` family
measures the resident :class:`~repro.graph.index.FragmentIndex`.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.exceptions import StreamError
from repro.graph.graph import Graph
from repro.matching.incremental import DeltaMatcher, MatchStore
from repro.pattern.pattern import Pattern
from repro.stream.updates import UpdateBatch

NodeId = Hashable


class MaintainedMatchView:
    """Keep ``pattern -> match set`` current across update batches.

    Parameters
    ----------
    graph:
        The live graph; mutate it through :meth:`apply` (or apply batches
        externally and call :meth:`refresh`).
    patterns:
        The pattern family to maintain.  Patterns the matcher cannot
        enumerate embeddings for are rejected up front — this view exists
        to exercise the repair path, not the silent-fallback one.
    matcher:
        An enumerating anchored matcher (VF2, guided).
    config:
        Optional :class:`repro.stream.StreamConfig`; when given, the
        graph's bounded delta log is resized to its ``delta_log_size`` so
        the repair horizon of :meth:`MatchStore.repair` is tunable per run.
    """

    def __init__(
        self,
        graph: Graph,
        patterns: Sequence[Pattern],
        matcher,
        config=None,
    ) -> None:
        self.graph = graph
        self.matcher = matcher
        self.config = config
        if config is not None:
            config.apply_to_graph(graph)
        self.patterns = list(patterns)
        self.store = MatchStore(graph)
        self._delta = DeltaMatcher(graph, matcher, self.store)
        for pattern in self.patterns:
            if not self._delta.supports(pattern):
                raise StreamError(
                    f"pattern {pattern!r} cannot be maintained: the matcher "
                    "does not enumerate embeddings (or the pattern has copy "
                    "counts)"
                )
        self._materialize_all()

    def _materialize_all(self) -> None:
        for pattern in self.patterns:
            candidates = sorted(
                self.graph.nodes_with_label(pattern.label(pattern.x)), key=str
            )
            self._delta.materialize(pattern, candidates)

    # ------------------------------------------------------------------
    def apply(self, batch: UpdateBatch) -> None:
        """Apply *batch* to the graph, then repair the maintained sets."""
        batch.apply(self.graph)
        self.refresh()

    def refresh(self) -> None:
        """Repair every maintained entry; re-materialize any that dropped."""
        self.store.repair(self.matcher)
        for pattern in self.patterns:
            if self.store.get(pattern) is None:
                candidates = sorted(
                    self.graph.nodes_with_label(pattern.label(pattern.x)), key=str
                )
                self._delta.materialize(pattern, candidates)

    def match_set(self, pattern: Pattern) -> frozenset:
        """Current ``Q(x, G)`` of *pattern* over its full label bucket."""
        entry = self.store.get(pattern)
        if entry is None:
            raise StreamError(
                f"pattern {pattern!r} is not maintained by this view"
            )
        # Entries repaired across updates may have rechecked centres beyond
        # the original candidate pool; restrict to the current bucket.
        return frozenset(
            entry.matches & self.graph.nodes_with_label(pattern.label(pattern.x))
        )
