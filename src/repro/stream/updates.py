"""Update ingestion: batched graph mutations as picklable value objects.

The streaming subsystem treats a mutation workload as a sequence of
:class:`UpdateBatch` values — small, immutable, order-preserving lists of
:class:`UpdateOp` — rather than ad-hoc method calls.  A batch is applied
through :meth:`UpdateBatch.apply`, which routes every operation through one
``Graph.batch_update`` context: the whole batch is a **single version
tick**, and the graph's recorded :class:`~repro.graph.graph.GraphDelta`
(net effect + touched-node set) is returned for the delta-maintenance
layers to patch themselves forward with.

Operations are validated lazily, by the graph itself, in order: a batch
that removes an edge twice fails exactly where the second ``remove_edge``
would have failed, leaving the earlier operations applied (the delta
recorded by the enclosing context stays truthful about what happened).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.exceptions import StreamError
from repro.graph.graph import Graph, GraphDelta
from repro.utils.rng import ensure_rng

NodeId = Hashable

#: Operation kinds an :class:`UpdateOp` may carry.
OP_KINDS = ("add_node", "remove_node", "add_edge", "remove_edge", "relabel_node")


@dataclass(frozen=True)
class UpdateOp:
    """One primitive graph mutation (hashable, picklable).

    Use the class-method constructors; the generic fields exist so one
    frozen type covers node ops (``node``/``label``/``attrs``) and edge ops
    (``source``/``target``/``label``).
    """

    kind: str
    node: NodeId | None = None
    source: NodeId | None = None
    target: NodeId | None = None
    label: str | None = None
    attrs: tuple = ()

    # -- constructors ------------------------------------------------------
    @classmethod
    def add_node(cls, node: NodeId, label: str, attrs: dict | None = None) -> "UpdateOp":
        """Add *node* carrying *label* (and optional attributes)."""
        items = tuple(sorted(attrs.items())) if attrs else ()
        return cls(kind="add_node", node=node, label=label, attrs=items)

    @classmethod
    def remove_node(cls, node: NodeId) -> "UpdateOp":
        """Remove *node* and all its incident edges."""
        return cls(kind="remove_node", node=node)

    @classmethod
    def add_edge(cls, source: NodeId, target: NodeId, label: str) -> "UpdateOp":
        """Add the edge ``source --label--> target``."""
        return cls(kind="add_edge", source=source, target=target, label=label)

    @classmethod
    def remove_edge(cls, source: NodeId, target: NodeId, label: str) -> "UpdateOp":
        """Remove the edge ``source --label--> target``."""
        return cls(kind="remove_edge", source=source, target=target, label=label)

    @classmethod
    def relabel_node(cls, node: NodeId, label: str) -> "UpdateOp":
        """Change the label of *node* to *label*."""
        return cls(kind="relabel_node", node=node, label=label)

    # -- serialization -----------------------------------------------------
    def as_dict(self) -> dict:
        """JSON wire form consumed by ``POST /sessions/{id}/updates``
        (:func:`repro.serve.ops_from_json` is the inverse)."""
        doc: dict = {"kind": self.kind}
        if self.kind in ("add_node", "remove_node", "relabel_node"):
            doc["node"] = self.node
            if self.kind != "remove_node":
                doc["label"] = self.label
            if self.kind == "add_node" and self.attrs:
                doc["attrs"] = dict(self.attrs)
        else:
            doc["source"] = self.source
            doc["target"] = self.target
            doc["label"] = self.label
        return doc

    # -- application -------------------------------------------------------
    def apply(self, graph_like) -> None:
        """Apply the operation to a :class:`Graph` or ``GraphBatch`` proxy."""
        kind = self.kind
        if kind == "add_edge":
            graph_like.add_edge(self.source, self.target, self.label)
        elif kind == "remove_edge":
            graph_like.remove_edge(self.source, self.target, self.label)
        elif kind == "add_node":
            graph_like.add_node(self.node, self.label, dict(self.attrs) or None)
        elif kind == "remove_node":
            graph_like.remove_node(self.node)
        elif kind == "relabel_node":
            graph_like.relabel_node(self.node, self.label)
        else:
            raise StreamError(f"unknown update kind {kind!r}; expected one of {OP_KINDS}")

    def __str__(self) -> str:
        if self.kind in ("add_edge", "remove_edge"):
            return f"{self.kind}({self.source!r} --{self.label}--> {self.target!r})"
        if self.kind == "remove_node":
            return f"remove_node({self.node!r})"
        return f"{self.kind}({self.node!r}, {self.label!r})"


@dataclass(frozen=True)
class UpdateBatch:
    """An ordered, immutable batch of :class:`UpdateOp`.

    Example
    -------
    >>> from repro.graph import Graph
    >>> g = Graph(); g.add_node("a", "x"); g.add_node("b", "x")
    >>> batch = UpdateBatch.of(
    ...     UpdateOp.add_edge("a", "b", "knows"),
    ...     UpdateOp.relabel_node("b", "vip"),
    ... )
    >>> before = g.version
    >>> delta = batch.apply(g)
    >>> (g.version - before, sorted(delta.touched))
    (1, ['a', 'b'])
    """

    ops: tuple[UpdateOp, ...] = ()

    @classmethod
    def of(cls, *ops: UpdateOp) -> "UpdateBatch":
        """Build a batch from operations given as positional arguments."""
        return cls(ops=tuple(ops))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[UpdateOp]:
        return iter(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def apply(self, graph: Graph) -> GraphDelta:
        """Apply every operation under **one** version tick; return the delta."""
        with graph.batch_update() as tx:
            for op in self.ops:
                op.apply(tx)
        return tx.delta

    def describe(self) -> str:
        """One-line ``kind=count`` summary used by reports and the CLI."""
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        inner = " ".join(f"{kind}={counts[kind]}" for kind in OP_KINDS if kind in counts)
        return f"UpdateBatch({len(self.ops)} ops: {inner})"


def random_update_batch(
    graph: Graph,
    size: int = 8,
    seed: int | None = 0,
    structural_fraction: float = 0.25,
    deletion_bias: float = 0.0,
) -> UpdateBatch:
    """Sample a valid mixed batch against the graph's **current** state.

    Roughly ``1 - structural_fraction`` of the operations are edge churn
    (removal of an existing edge / insertion of a fresh edge between
    surviving nodes, drawn from the graph's own label alphabets) and the
    rest are node-level churn (add / relabel / remove), mimicking the
    social-network update workloads of the paper's applications.  The batch
    is self-consistent: sequential application never references a node or
    edge a previous operation of the same batch invalidated.

    *deletion_bias* skews the workload towards shrinkage: with that
    probability an operation is forced to be a removal (an existing edge,
    or — one time in four — a whole node), modelling the deletion-heavy
    deployments the fragment lifecycle layer (``docs/lifecycle.md``) must
    keep bounded.  ``0.0`` (the default) leaves the historical sampling
    byte-identical.
    """
    if size < 1:
        raise StreamError(f"size must be >= 1, got {size}")
    if not 0.0 <= structural_fraction <= 1.0:
        raise StreamError(
            f"structural_fraction must be in [0, 1], got {structural_fraction}"
        )
    if not 0.0 <= deletion_bias <= 1.0:
        raise StreamError(f"deletion_bias must be in [0, 1], got {deletion_bias}")
    rng = ensure_rng(seed)
    nodes = sorted(graph.nodes(), key=str)
    if not nodes:
        raise StreamError("cannot sample updates against an empty graph")
    edges = sorted(
        graph.edges(), key=lambda e: (str(e.source), str(e.target), e.label)
    )
    node_labels = sorted(graph.node_labels()) or ["node"]
    edge_labels = sorted(graph.edge_labels()) or ["edge"]

    alive = set(nodes)
    present = {(e.source, e.target, e.label) for e in edges}
    ops: list[UpdateOp] = []
    fresh_serial = 0
    attempts = 0
    max_attempts = size * 50
    while len(ops) < size:
        attempts += 1
        if attempts > max_attempts:
            # Degenerate graphs (e.g. one node, no edges, edge churn only)
            # can starve every branch; fail loudly instead of spinning.
            raise StreamError(
                f"could only sample {len(ops)} of {size} operations after "
                f"{max_attempts} attempts; the graph is too small for the "
                "requested batch shape"
            )
        if deletion_bias > 0.0 and rng.random() < deletion_bias:
            # Forced removal: an existing edge, or (1 in 4) a whole node.
            removable = [
                e for e in sorted(present, key=str) if e[0] in alive and e[1] in alive
            ]
            pool = sorted(alive, key=str)
            if removable and (len(pool) <= 2 or rng.random() < 0.75):
                edge = removable[rng.randrange(len(removable))]
                present.discard(edge)
                ops.append(UpdateOp.remove_edge(*edge))
                continue
            if len(pool) > 2:
                node = rng.choice(pool)
                alive.discard(node)
                present = {e for e in present if node not in (e[0], e[1])}
                ops.append(UpdateOp.remove_node(node))
                continue
            continue
        roll = rng.random()
        if roll >= structural_fraction:
            # Edge churn: alternate-ish between removals and insertions.
            removable = [e for e in sorted(present, key=str) if e[0] in alive and e[1] in alive]
            if removable and rng.random() < 0.5:
                edge = removable[rng.randrange(len(removable))]
                present.discard(edge)
                ops.append(UpdateOp.remove_edge(*edge))
                continue
            pool = sorted(alive, key=str)
            if len(pool) < 2:
                continue
            source, target = rng.sample(pool, 2)
            label = rng.choice(edge_labels)
            if (source, target, label) in present:
                continue
            present.add((source, target, label))
            ops.append(UpdateOp.add_edge(source, target, label))
            continue
        structural = rng.random()
        if structural < 0.4:
            fresh_serial += 1
            node = f"stream-{seed}-{fresh_serial}"
            alive.add(node)
            ops.append(UpdateOp.add_node(node, rng.choice(node_labels)))
        elif structural < 0.8:
            pool = sorted(alive, key=str)
            node = rng.choice(pool)
            label = rng.choice(node_labels)
            ops.append(UpdateOp.relabel_node(node, label))
        else:
            pool = sorted(alive, key=str)
            if len(pool) <= 2:
                continue
            node = rng.choice(pool)
            alive.discard(node)
            present = {e for e in present if node not in (e[0], e[1])}
            ops.append(UpdateOp.remove_node(node))
    return UpdateBatch(ops=tuple(ops))
