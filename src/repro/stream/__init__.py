"""Streaming updates: keep derived state correct while the graph changes.

The paper's workloads (social recommendation, fake-account detection) live
on graphs that mutate continuously; this package turns the repository's
static pipeline into an online one:

* :mod:`repro.stream.updates` — :class:`UpdateOp` / :class:`UpdateBatch`
  value types and the ``random_update_batch`` workload sampler; a batch is
  applied as **one** ``Graph.batch_update`` version tick;
* :mod:`repro.stream.matchview` — :class:`MaintainedMatchView`, match sets
  (with embeddings) repaired by
  :meth:`repro.matching.incremental.MatchStore.repair` instead of
  re-matched;
* :mod:`repro.stream.identifier` — :class:`StreamingIdentifier`, an
  :class:`~repro.identification.eip.EIPResult` kept continuously correct by
  re-verifying only candidate centres inside the d-hop balls of the nodes a
  batch touched, with update slices shipped to the persistent worker pool
  so fragment-resident graphs and indexes stay in sync without re-pickling
  graphs.

See ``docs/streaming.md`` for the update model, the ball-scoped
invalidation argument, and the repair-vs-recompute benchmark gate.
"""

from repro.stream.updates import (
    OP_KINDS,
    UpdateBatch,
    UpdateOp,
    random_update_batch,
)
from repro.stream.matchview import MaintainedMatchView
from repro.stream.identifier import (
    STREAM_ALGORITHMS,
    FragmentUpdate,
    StreamUpdateReport,
    StreamVerifyPayload,
    StreamingIdentifier,
    stream_update_worker,
)

__all__ = [
    "OP_KINDS",
    "UpdateOp",
    "UpdateBatch",
    "random_update_batch",
    "MaintainedMatchView",
    "STREAM_ALGORITHMS",
    "FragmentUpdate",
    "StreamVerifyPayload",
    "StreamUpdateReport",
    "StreamingIdentifier",
    "stream_update_worker",
]
