"""Streaming updates: keep derived state correct while the graph changes.

The paper's workloads (social recommendation, fake-account detection) live
on graphs that mutate continuously; this package turns the repository's
static pipeline into an online one:

* :mod:`repro.stream.updates` — :class:`UpdateOp` / :class:`UpdateBatch`
  value types and the ``random_update_batch`` workload sampler; a batch is
  applied as **one** ``Graph.batch_update`` version tick;
* :mod:`repro.stream.matchview` — :class:`MaintainedMatchView`, match sets
  (with embeddings) repaired by
  :meth:`repro.matching.incremental.MatchStore.repair` instead of
  re-matched;
* :mod:`repro.stream.identifier` — :class:`StreamingIdentifier`, an
  :class:`~repro.identification.eip.EIPResult` kept continuously correct by
  re-verifying only candidate centres inside the d-hop balls of the nodes a
  batch touched, with update slices shipped to the persistent worker pool
  so fragment-resident graphs and indexes stay in sync without re-pickling
  graphs;
* :mod:`repro.stream.config` — :class:`StreamConfig`, every streaming and
  fragment-lifecycle threshold (delta-log capacity, index rebuild fraction,
  log-compaction trigger, re-partitioning skew, checkpoint ``state_dir``)
  as per-run fields with env/CLI overrides.

Fragment residency itself — refcounted ball membership with
deletion-driven shedding, checkpointed log compaction, churn-driven
ownership migration — lives in :mod:`repro.partition.lifecycle` and is
driven from here.  See ``docs/streaming.md`` for the update model and the
ball-scoped invalidation argument, and ``docs/lifecycle.md`` for the
lifecycle layer.
"""

from repro.stream.config import StreamConfig
from repro.stream.updates import (
    OP_KINDS,
    UpdateBatch,
    UpdateOp,
    random_update_batch,
)
from repro.stream.matchview import MaintainedMatchView
from repro.stream.identifier import (
    STREAM_ALGORITHMS,
    CensusMatcher,
    FragmentUpdate,
    RuleAdmissionReport,
    StreamUpdateReport,
    StreamVerifyPayload,
    StreamingIdentifier,
    split_free_pattern,
    stream_update_worker,
)
from repro.stream.multitenant import MultiTenantIdentifier, TenantAdmission

__all__ = [
    "OP_KINDS",
    "UpdateOp",
    "UpdateBatch",
    "random_update_batch",
    "MaintainedMatchView",
    "STREAM_ALGORITHMS",
    "CensusMatcher",
    "FragmentUpdate",
    "MultiTenantIdentifier",
    "RuleAdmissionReport",
    "StreamConfig",
    "TenantAdmission",
    "StreamVerifyPayload",
    "StreamUpdateReport",
    "StreamingIdentifier",
    "split_free_pattern",
    "stream_update_worker",
]
