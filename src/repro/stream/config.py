"""Streaming/lifecycle configuration: every tunable threshold in one place.

Before this module the knobs of the streaming subsystem were module
constants (``repro.graph.graph.DELTA_LOG_SIZE``,
``repro.graph.index.DELTA_REBUILD_FRACTION``) and the lifecycle layer —
checkpointing, shedding, re-partitioning — had none.  :class:`StreamConfig`
promotes all of them to per-run fields with a uniform override story:

* **defaults** come from the historical module constants;
* **environment variables** (``REPRO_DELTA_LOG_SIZE``,
  ``REPRO_DELTA_REBUILD_FRACTION``, ``REPRO_CHECKPOINT_LOG_FRACTION``,
  ``REPRO_REBALANCE_SKEW``, ``REPRO_STATE_DIR``) override the defaults at
  construction time — and, because the process pool forks/spawns with the
  parent's environment, reach worker-side index builds too;
* **CLI flags** on ``repro stream`` / ``repro-bench-smoke`` override both
  (the CLI also exports the env vars so worker processes agree).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import StreamError
from repro.graph.graph import default_delta_log_size
from repro.graph.index import default_rebuild_fraction

#: Compact a fragment's update-slice log once its shipped-operation weight
#: exceeds this fraction of the fragment's own size ``|V_i| + |E_i|`` —
#: past that point re-shipping the log costs more than re-shipping the
#: fragment.
CHECKPOINT_LOG_FRACTION = 0.5

#: Re-partition (migrate centre ownership) when the per-fragment load skew
#: ``(max - min) / max`` — load being the sum of owned centres' stored ball
#: sizes, the partitioner's own balance measure — exceeds this bound.
REBALANCE_SKEW = 0.6

#: At most this many centres migrate per update batch, so one skewed batch
#: never triggers a fragment-sized reshuffle.
REBALANCE_MAX_MOVES = 8


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return float(raw)


def _default_checkpoint_fraction() -> float:
    return _env_float("REPRO_CHECKPOINT_LOG_FRACTION", CHECKPOINT_LOG_FRACTION)


def _default_rebalance_skew() -> float:
    return _env_float("REPRO_REBALANCE_SKEW", REBALANCE_SKEW)


def _default_state_dir() -> Path | None:
    raw = os.environ.get("REPRO_STATE_DIR")
    return Path(raw) if raw else None


@dataclass(frozen=True)
class StreamConfig:
    """Tunables of the streaming + fragment-lifecycle layers.

    Attributes
    ----------
    delta_log_size:
        Capacity of every managed graph's bounded :class:`GraphDelta` log
        (authoritative graph *and* fragment-resident graphs); consumers
        that fall further behind rebuild instead of patching.
    delta_rebuild_fraction:
        A :class:`~repro.graph.index.FragmentIndex` rebuilds from scratch
        instead of delta-patching once a pending chain touches more than
        this fraction of its graph.
    checkpoint_log_fraction:
        Compaction trigger of the per-fragment update-slice log (see
        :data:`CHECKPOINT_LOG_FRACTION`).
    rebalance_skew:
        Churn-driven re-partitioning trigger (see :data:`REBALANCE_SKEW`);
        ``1.0`` disables migration entirely.
    rebalance_max_moves:
        Per-batch migration budget.
    state_dir:
        When set, fragment checkpoints are written here as pickle files and
        round payloads carry only their *paths*; without it checkpoints ship
        inline (pickled per round on the process backend).  The directory
        also serves :meth:`repro.stream.StreamingIdentifier.save_state`.
    """

    delta_log_size: int = field(default_factory=default_delta_log_size)
    delta_rebuild_fraction: float = field(default_factory=default_rebuild_fraction)
    checkpoint_log_fraction: float = field(default_factory=_default_checkpoint_fraction)
    rebalance_skew: float = field(default_factory=_default_rebalance_skew)
    rebalance_max_moves: int = REBALANCE_MAX_MOVES
    state_dir: Path | None = field(default_factory=_default_state_dir)

    def __post_init__(self) -> None:
        if self.delta_log_size < 1:
            raise StreamError(f"delta_log_size must be >= 1, got {self.delta_log_size}")
        if not 0.0 <= self.delta_rebuild_fraction <= 1.0:
            raise StreamError(
                f"delta_rebuild_fraction must be in [0, 1], got {self.delta_rebuild_fraction}"
            )
        if self.checkpoint_log_fraction <= 0.0:
            raise StreamError(
                f"checkpoint_log_fraction must be > 0, got {self.checkpoint_log_fraction}"
            )
        if not 0.0 <= self.rebalance_skew <= 1.0:
            raise StreamError(
                f"rebalance_skew must be in [0, 1], got {self.rebalance_skew}"
            )
        if self.rebalance_max_moves < 0:
            raise StreamError(
                f"rebalance_max_moves must be >= 0, got {self.rebalance_max_moves}"
            )
        if self.state_dir is not None:
            object.__setattr__(self, "state_dir", Path(self.state_dir))

    def export_env(self) -> None:
        """Export the graph/index thresholds as env vars for worker processes.

        Worker pools build fragment indexes in their initializer with the
        process-wide defaults; the spawned/forked children inherit these
        variables, so a per-run override reaches them without widening the
        executor protocol.
        """
        os.environ["REPRO_DELTA_LOG_SIZE"] = str(self.delta_log_size)
        os.environ["REPRO_DELTA_REBUILD_FRACTION"] = str(self.delta_rebuild_fraction)

    def apply_to_graph(self, graph) -> None:
        """Resize *graph*'s delta log to this config's capacity."""
        graph.configure_delta_log(self.delta_log_size)
