"""Streaming entity identification: keep an EIP answer correct under updates.

A :class:`StreamingIdentifier` runs one full Match/Matchc verification when
constructed and then maintains the resulting
:class:`~repro.identification.eip.EIPResult` across
:class:`~repro.stream.updates.UpdateBatch` applications by repairing, not
recomputing:

* the coordinator applies the batch to the authoritative graph (one version
  tick) and derives, per fragment, a :class:`FragmentUpdate` — the
  fragment-local slice of the batch plus the *ball augmentation* (nodes
  newly within ``d`` hops of an owned centre, with their induced edges) that
  keeps every fragment a superset of its owned centres' d-balls;
* each worker replays the slices its fragment-resident copy has not seen
  yet (an update *log*, so the process backend's arbitrary task routing can
  never serve a stale fragment), lets the resident
  :class:`~repro.graph.index.FragmentIndex` patch itself forward from the
  graph's recorded deltas, and re-verifies **only** the owned centres
  within ``d`` hops of a touched node — every other centre's verdict is
  provably unchanged (see ``docs/streaming.md``);
* the coordinator splices the partial reports into its per-fragment state
  and re-assembles confidences, so :attr:`result` is at all times exactly
  what a from-scratch run on the current graph would return.

Ownership of candidate centres is maintained too: nodes that gain the
centre label join the fragment already holding most of their d-ball, nodes
that lose it (or are removed) leave.  Because every maintained rule is
ball-local (connected antecedent — enforced at construction), the merged
answer is independent of which fragment owns which centre, which is what
makes repaired-vs-recomputed results byte-identical even though a fresh run
would partition the mutated graph differently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.exceptions import PatternError, StreamError
from repro.graph.graph import Graph, GraphDelta
from repro.graph.index import registered_index
from repro.graph.neighborhood import ball, multi_source_ball
from repro.identification.eip import EIPConfig, EIPResult, _shared_predicate
from repro.identification.match import Match
from repro.identification.matchc import MatchC, VerifyPayload, _FragmentReport, verify_worker
from repro.parallel.executor import make_executor
from repro.parallel.runtime import BSPRuntime
from repro.parallel.worker import WorkerContext
from repro.partition.fragment import Fragment
from repro.partition.partitioner import partition_graph
from repro.pattern.gpar import GPAR
from repro.pattern.radius import pattern_radius
from repro.stream.updates import UpdateBatch

NodeId = Hashable

#: Solvers the streaming layer can drive (disVF2 enumerates whole fragments,
#: which is not ball-local, so it stays batch-only).
STREAM_ALGORITHMS = {"match": Match, "matchc": MatchC}


@dataclass(frozen=True)
class FragmentUpdate:
    """One fragment's slice of a global update batch (coordinator → worker).

    ``sequence`` orders the slices per fragment; a worker whose resident
    copy is behind replays every missed slice before verifying.  All fields
    are plain sorted tuples so the payload pickles small and hashes stably.
    """

    sequence: int
    remove_edges: tuple = ()
    remove_nodes: tuple = ()
    add_nodes: tuple = ()  # (node, label, attrs-items)
    add_edges: tuple = ()
    relabels: tuple = ()  # (node, new label)
    own_add: tuple = ()
    own_remove: tuple = ()
    recheck: tuple = ()

    @property
    def mutates(self) -> bool:
        """Whether replaying this slice changes the fragment graph at all."""
        return bool(
            self.remove_edges
            or self.remove_nodes
            or self.add_nodes
            or self.add_edges
            or self.relabels
        )


@dataclass(frozen=True)
class StreamVerifyPayload:
    """Round payload of one streaming update (coordinator → worker).

    ``updates`` is the fragment's full slice log: any worker process —
    however stale its resident copy, including one that never served this
    fragment before — can catch up deterministically and then re-verify the
    newest slice's ``recheck`` centres.
    """

    updates: tuple[FragmentUpdate, ...]
    solver_cls: type
    config: EIPConfig
    rules: tuple[GPAR, ...]
    max_radius: int
    predicate: object


@dataclass
class StreamUpdateReport:
    """What one :meth:`StreamingIdentifier.apply` did (measurement surface)."""

    delta: GraphDelta
    rechecked_centers: int = 0
    owned_added: int = 0
    owned_removed: int = 0
    entered_nodes: int = 0
    shipped_edges: int = 0
    wall_time: float = 0.0

    def as_row(self) -> str:
        """One-line human-readable summary used by the CLI."""
        return (
            f"touched={len(self.delta.touched)} rechecked={self.rechecked_centers} "
            f"owned(+{self.owned_added}/-{self.owned_removed}) "
            f"entered_nodes={self.entered_nodes} wall={self.wall_time:.3f}s"
        )


def _apply_fragment_update(fragment: Fragment, update: FragmentUpdate) -> None:
    """Replay one slice on a fragment-resident graph (one version tick)."""
    graph = fragment.graph
    if update.mutates:
        with graph.batch_update():
            for source, target, label in update.remove_edges:
                graph.remove_edge(source, target, label)
            for node in update.remove_nodes:
                graph.remove_node(node)
            for node, label, attrs in update.add_nodes:
                graph.add_node(node, label, dict(attrs) or None)
            for source, target, label in update.add_edges:
                graph.add_edge(source, target, label)
            for node, label in update.relabels:
                graph.relabel_node(node, label)
    fragment.owned_centers.difference_update(update.own_remove)
    fragment.owned_centers.update(update.own_add)


def stream_update_worker(
    context: WorkerContext, payload: StreamVerifyPayload
) -> _FragmentReport:
    """BSP worker function: catch up on update slices, re-verify the recheck set.

    The applied-slice counter lives in the pool-lifetime
    :class:`~repro.parallel.worker.WorkerContext`, so on the process backend
    — where any pool process may serve any fragment — a stale resident copy
    deterministically replays exactly the slices it missed before answering.
    The resident index is patched forward from the graph's recorded deltas
    rather than rebuilt (``FragmentIndex.refresh`` delegates to
    ``apply_delta``).
    """
    fragment = context.fragment
    applied = context.state.get("stream-applied-sequence", 0)
    for update in payload.updates:
        if update.sequence <= applied:
            continue
        _apply_fragment_update(fragment, update)
        applied = update.sequence
    context.state["stream-applied-sequence"] = applied

    index = registered_index(fragment.graph)
    if index is not None and index.is_stale:
        index.refresh()

    solver = payload.solver_cls(payload.config)
    matcher = context.cached(
        ("eip-matcher", payload.solver_cls, payload.config, payload.max_radius),
        lambda: solver._make_matcher(payload.max_radius),
    )
    latest = payload.updates[-1]
    recheck_fragment = Fragment(
        index=fragment.index,
        graph=fragment.graph,
        owned_centers=set(latest.recheck),
    )
    return solver._verify_fragment(
        recheck_fragment, payload.rules, matcher, payload.predicate
    )


class StreamingIdentifier:
    """Maintain ``Σ(x, G, η)`` across graph update batches.

    Parameters
    ----------
    graph:
        The live data graph.  The identifier takes over mutation: apply
        updates through :meth:`apply` (arbitrary direct mutations between
        batches are detected and rejected, not silently mis-served).
    rules:
        The rule set Σ; every antecedent must be connected (ball-local
        verification is what makes repair exact), else :class:`StreamError`.
    config:
        Standard :class:`~repro.identification.eip.EIPConfig`; the backend
        and its worker pool stay up between batches.
    algorithm:
        ``"match"`` (default) or ``"matchc"``.

    Use as a context manager, or call :meth:`close` to release the pool.
    """

    def __init__(
        self,
        graph: Graph,
        rules: Sequence[GPAR],
        config: EIPConfig | None = None,
        algorithm: str = "match",
        **config_overrides,
    ) -> None:
        if algorithm not in STREAM_ALGORITHMS:
            raise StreamError(
                f"unknown streaming algorithm {algorithm!r}; "
                f"expected one of {sorted(STREAM_ALGORITHMS)}"
            )
        self.graph = graph
        self.rules = tuple(rules)
        self.config = config if config is not None else EIPConfig(**config_overrides)
        self.algorithm = algorithm
        solver_cls = STREAM_ALGORITHMS[algorithm]
        self._solver = solver_cls(self.config)
        representative = _shared_predicate(list(self.rules))
        self.predicate = representative.q_pattern()
        self.x_label = representative.x_label
        self.max_radius = max(rule.verification_radius for rule in self.rules)
        for rule in self.rules:
            try:
                pattern_radius(rule.antecedent, rule.antecedent.x)
            except PatternError as exc:
                raise StreamError(
                    f"rule {rule.name} cannot be maintained incrementally: "
                    f"its antecedent is not ball-local ({exc})"
                ) from None

        centers = graph.nodes_with_label(self.x_label)
        self.fragments = partition_graph(
            graph,
            self.config.num_workers,
            centers=centers,
            d=self.max_radius,
            seed=self.config.seed,
        )
        # Coordinator-side bookkeeping; fragment *objects* may live (and
        # mutate) in worker processes, so membership/ownership truth is kept
        # here, next to the authoritative graph.
        self._node_sets: dict[int, set] = {
            fragment.index: set(fragment.graph.nodes()) for fragment in self.fragments
        }
        self._owner: dict[NodeId, int] = {
            center: fragment.index
            for fragment in self.fragments
            for center in fragment.owned_centers
        }
        self._logs: dict[int, list[FragmentUpdate]] = {
            fragment.index: [] for fragment in self.fragments
        }
        self._sequence = 0
        self.batches_applied = 0

        executor = make_executor(
            self.config.backend,
            self.config.executor_workers,
            build_indexes=self.config.use_index and solver_cls._consumes_resident_index,
        )
        self.runtime = BSPRuntime(self.fragments, executor)
        self.runtime.start_run()
        self._closed = False

        payload = VerifyPayload(
            solver_cls=solver_cls,
            config=self.config,
            rules=self.rules,
            max_radius=self.max_radius,
            predicate=self.predicate,
        )
        reports = self.runtime.run_round(verify_worker, [payload] * len(self.fragments))
        self._reports: dict[int, _FragmentReport] = {
            report.fragment_index: report for report in reports
        }
        self._graph_version = graph.version
        self._result = self._assemble()

    # ------------------------------------------------------------------
    def _assemble(self) -> EIPResult:
        reports = [self._reports[fragment.index] for fragment in self.fragments]
        result = self._solver._assemble(list(self.rules), reports)
        result.timings = self.runtime.timings
        return result

    @property
    def result(self) -> EIPResult:
        """The maintained EIP answer for the graph's current state."""
        if self.graph.version != self._graph_version:
            raise StreamError(
                "the graph was mutated outside StreamingIdentifier.apply(); "
                "the maintained result no longer describes it"
            )
        return self._result

    # ------------------------------------------------------------------
    def apply(self, batch: UpdateBatch) -> StreamUpdateReport:
        """Apply *batch* to the graph and repair the maintained answer."""
        if self._closed:
            raise StreamError("this StreamingIdentifier is closed")
        if self.graph.version != self._graph_version:
            raise StreamError(
                "the graph was mutated outside StreamingIdentifier.apply(); "
                "close this identifier and build a fresh one"
            )
        started = time.perf_counter()
        delta = batch.apply(self.graph)
        report = StreamUpdateReport(delta=delta)
        graph = self.graph
        self._graph_version = graph.version
        self.batches_applied += 1
        self._sequence += 1

        # Region whose centres may have changed verdicts: within d hops of a
        # touched node, measured on the post-update graph (exact — see
        # docs/streaming.md).
        region = multi_source_ball(graph, delta.touched, self.max_radius)

        # Centre ownership maintenance (touched nodes only can change role).
        own_add: dict[int, set] = {fragment.index: set() for fragment in self.fragments}
        own_remove: dict[int, set] = {
            fragment.index: set() for fragment in self.fragments
        }
        for node in delta.touched:
            owner = self._owner.get(node)
            is_center = graph.has_node(node) and graph.node_label(node) == self.x_label
            if owner is not None and not is_center:
                del self._owner[node]
                own_remove[owner].add(node)
            elif owner is None and is_center:
                chosen = self._assign_owner(node)
                self._owner[node] = chosen
                own_add[chosen].add(node)
        report.owned_added = sum(len(nodes) for nodes in own_add.values())
        report.owned_removed = sum(len(nodes) for nodes in own_remove.values())

        payloads = []
        invalidated: dict[int, set] = {}
        for fragment in self.fragments:
            index = fragment.index
            update = self._fragment_update(
                index, delta, region, own_add[index], own_remove[index], report
            )
            self._logs[index].append(update)
            invalidated[index] = set(update.recheck) | own_remove[index]
            payloads.append(
                StreamVerifyPayload(
                    updates=tuple(self._logs[index]),
                    solver_cls=type(self._solver),
                    config=self.config,
                    rules=self.rules,
                    max_radius=self.max_radius,
                    predicate=self.predicate,
                )
            )
        partials = self.runtime.run_round(stream_update_worker, payloads)
        for partial in partials:
            self._merge(partial, invalidated[partial.fragment_index])
        self._result = self._assemble()
        report.wall_time = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _assign_owner(self, center: NodeId) -> int:
        """Fragment for a freshly appeared centre: most of its ball resident.

        Ownership placement only affects which worker does the centre's
        work — never the answer — so the tie-break just balances load
        deterministically (fewest owned centres, then lowest index).
        """
        center_ball = ball(self.graph, center, self.max_radius)
        owned_counts: dict[int, int] = {
            fragment.index: 0 for fragment in self.fragments
        }
        for owner in self._owner.values():
            owned_counts[owner] = owned_counts.get(owner, 0) + 1
        best_index = None
        best_cost = None
        for fragment in self.fragments:
            index = fragment.index
            overlap = len(center_ball & self._node_sets[index])
            cost = (-overlap, owned_counts.get(index, 0), index)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
        return best_index

    def _fragment_update(
        self,
        index: int,
        delta: GraphDelta,
        region: set,
        own_add: set,
        own_remove: set,
        report: StreamUpdateReport,
    ) -> FragmentUpdate:
        """Derive one fragment's slice of *delta* (and update bookkeeping)."""
        graph = self.graph
        node_set = self._node_sets[index]
        remove_edges = tuple(
            sorted(
                (
                    edge
                    for edge in delta.removed_edges
                    if edge[0] in node_set and edge[1] in node_set
                ),
                key=str,
            )
        )
        remove_nodes = tuple(
            sorted((node for node in delta.removed_nodes if node in node_set), key=str)
        )
        relabels = tuple(
            sorted(
                (
                    (node, graph.node_label(node))
                    for node in delta.relabeled_nodes
                    if node in node_set
                ),
                key=str,
            )
        )
        node_set.difference_update(remove_nodes)

        # Recheck = owned centres whose verdict may have changed.  Their
        # d-balls may also have *grown*; ship the ball augmentation so the
        # fragment stays a superset of every owned centre's d-ball.
        recheck = {
            center
            for center, owner in self._owner.items()
            if owner == index and center in region
        }
        entering: set = set()
        for center in recheck:
            for node in ball(graph, center, self.max_radius):
                if node not in node_set:
                    entering.add(node)
        add_nodes = tuple(
            sorted(
                (
                    (
                        node,
                        graph.node_label(node),
                        tuple(sorted(graph.node_attrs(node).items())),
                    )
                    for node in entering
                ),
                key=str,
            )
        )
        new_node_set = node_set | entering
        add_edge_set = {
            edge
            for edge in delta.added_edges
            if edge[0] in new_node_set and edge[1] in new_node_set
        }
        for node in entering:
            for edge in graph.out_edges(node):
                if edge.target in new_node_set:
                    add_edge_set.add((node, edge.target, edge.label))
            for edge in graph.in_edges(node):
                if edge.source in new_node_set:
                    add_edge_set.add((edge.source, node, edge.label))
        node_set.update(entering)
        report.rechecked_centers += len(recheck)
        report.entered_nodes += len(entering)
        report.shipped_edges += len(add_edge_set) + len(remove_edges)
        return FragmentUpdate(
            sequence=self._sequence,
            remove_edges=remove_edges,
            remove_nodes=remove_nodes,
            add_nodes=add_nodes,
            add_edges=tuple(sorted(add_edge_set, key=str)),
            relabels=relabels,
            own_add=tuple(sorted(own_add, key=str)),
            own_remove=tuple(sorted(own_remove, key=str)),
            recheck=tuple(sorted(recheck, key=str)),
        )

    def _merge(self, partial: _FragmentReport, invalidated: set) -> None:
        """Splice a partial re-verification into the fragment's stored report."""
        stored = self._reports[partial.fragment_index]
        stored.positives = (stored.positives - invalidated) | partial.positives
        stored.negatives = (stored.negatives - invalidated) | partial.negatives
        stored.supp_q = len(stored.positives)
        stored.supp_q_bar = len(stored.negatives)
        stored.candidates_examined += partial.candidates_examined
        for rule in self.rules:
            antecedent = (
                stored.antecedent_sets.get(rule, set()) - invalidated
            ) | partial.antecedent_sets.get(rule, set())
            matches = (
                stored.rule_matches.get(rule, set()) - invalidated
            ) | partial.rule_matches.get(rule, set())
            stored.antecedent_sets[rule] = antecedent
            stored.rule_matches[rule] = matches
            stored.antecedent_counts[rule] = len(antecedent)
            stored.qbar_counts[rule] = len(antecedent & stored.negatives)

    # ------------------------------------------------------------------
    def recompute(self) -> EIPResult:
        """From-scratch answer on the current graph (the repair-vs-recompute
        baseline used by the equivalence gate and the ``stream`` benchmark)."""
        from repro.identification.eip import identify_entities

        return identify_entities(
            self.graph,
            list(self.rules),
            eta=self.config.eta,
            num_workers=self.config.num_workers,
            algorithm=self.algorithm,
            seed=self.config.seed,
            backend=self.config.backend,
            executor_workers=self.config.executor_workers,
            use_index=self.config.use_index,
            use_incremental=self.config.use_incremental,
        )

    def close(self) -> None:
        """Release the worker pool; the maintained result stays readable."""
        if not self._closed:
            self.runtime.finish_run()
            self._closed = True

    def __enter__(self) -> "StreamingIdentifier":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
