"""Streaming entity identification: keep an EIP answer correct under updates.

A :class:`StreamingIdentifier` runs one full Match/Matchc verification when
constructed and then maintains the resulting
:class:`~repro.identification.eip.EIPResult` across
:class:`~repro.stream.updates.UpdateBatch` applications by repairing, not
recomputing:

* the coordinator applies the batch to the authoritative graph (one version
  tick) and hands the recorded delta to its
  :class:`~repro.partition.lifecycle.FragmentManager`, which derives one
  :class:`~repro.partition.lifecycle.FragmentUpdate` slice per fragment —
  the fragment-local mutations, the *ball augmentation* (nodes newly within
  ``d`` hops of an owned centre), deletion-driven *shedding* (nodes whose
  ball-membership refcount dropped to zero), centre-ownership changes and
  churn-driven migrations;
* each worker catches its resident copy up through
  :func:`~repro.partition.lifecycle.catch_up` — installing the newest
  compaction checkpoint if it is behind it, replaying the slice tail —
  lets the resident :class:`~repro.graph.index.FragmentIndex` patch itself
  forward from the graph's recorded deltas, and re-verifies **only** the
  owned centres within ``d`` hops of a touched node — every other centre's
  verdict is provably unchanged (see ``docs/streaming.md``);
* the coordinator splices the partial reports into its per-fragment state
  (migrated centres' verdict bits move between reports without any
  re-verification) and re-assembles confidences, so :attr:`result` is at
  all times exactly what a from-scratch run on the current graph would
  return.

Rules whose antecedent is disconnected — the usual shape of DMine-mined
rules — are maintained too: the connected x-component is verified
ball-locally as usual, and the free part is checked by the coordinator
against the authoritative graph.  Isolated free nodes (the mined free-``y``
shape) use the **global label census** (the feasibility condition
``count(L) >= #antecedent nodes labelled L`` for each free label, exact for
injective label-equality matching); free components that carry edges use
the **component census** — per-shape embedding enumeration with an exact
per-centre fallback (see :mod:`repro.identification.census`).  The
maintained answer for such rules follows whole-graph matching semantics and
agrees with :func:`repro.identification.eip.identify_entities`, which
routes through the same census; see ``docs/lifecycle.md`` and
``docs/adversarial.md``.
"""

from __future__ import annotations

import pickle
import threading
import time
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Hashable, Sequence

from repro.exceptions import StreamError
from repro.graph.columnar import registered_columnar
from repro.graph.graph import Graph, GraphDelta
from repro.graph.index import registered_index
from repro.graph.neighborhood import multi_source_ball
from repro.identification.census import (
    CensusMatcher,
    apply_census,
    census_feasible,
    max_verification_radius,
    plan_census,
    split_free_pattern,
)
from repro.identification.eip import EIPConfig, EIPResult, _shared_predicate
from repro.identification.match import Match
from repro.identification.matchc import MatchC, _FragmentReport
from repro.obs.registry import registry
from repro.obs.tracing import (
    Tracer,
    active,
    override_tracer,
    span,
    tracing_enabled,
)
from repro.parallel.executor import make_executor
from repro.parallel.runtime import BSPRuntime
from repro.parallel.worker import WorkerContext
from repro.partition.fragment import Fragment
from repro.partition.lifecycle import (
    FragmentLease,
    FragmentManager,
    FragmentUpdate,
    catch_up,
)
from repro.partition.partitioner import partition_graph
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern
from repro.stream.config import StreamConfig
from repro.stream.updates import UpdateBatch

__all__ = [
    "STREAM_ALGORITHMS",
    "CensusMatcher",
    "FragmentUpdate",
    "RuleAdmissionReport",
    "StreamUpdateReport",
    "StreamVerifyPayload",
    "StreamingIdentifier",
    "split_free_pattern",
    "stream_update_worker",
]

NodeId = Hashable

#: Solvers the streaming layer can drive (disVF2 enumerates whole fragments,
#: which is not ball-local, so it stays batch-only).
STREAM_ALGORITHMS = {"match": Match, "matchc": MatchC}


# ----------------------------------------------------------------------
# round payloads and the worker function
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamVerifyPayload:
    """Round payload of one streaming verification (coordinator → worker).

    ``lease`` carries the fragment's base checkpoint reference plus the
    update-slice tail, so any worker process — however stale its resident
    copy, including one that never served this fragment before — catches up
    deterministically.  ``recheck`` restricts re-verification to the
    centres whose verdict may have changed; ``None`` verifies every owned
    centre (the initial full round).  ``census`` maps census-split
    antecedents to their x-components (see :class:`CensusMatcher`).
    """

    lease: FragmentLease
    solver_cls: type
    config: EIPConfig
    rules: tuple[GPAR, ...]
    max_radius: int
    predicate: object
    recheck: tuple | None = None
    census: tuple = ()  # ((antecedent, x_part), ...)
    #: Whether the coordinator had an active tracer when it built the
    #: payload: workers then record their phases into a fragment-local
    #: :class:`~repro.obs.tracing.Tracer` and ship the records back on
    #: ``_FragmentReport.spans`` for adoption under the coordinator's tree.
    traced: bool = False


@dataclass
class StreamUpdateReport:
    """What one :meth:`StreamingIdentifier.apply` did (measurement surface)."""

    delta: GraphDelta
    rechecked_centers: int = 0
    owned_added: int = 0
    owned_removed: int = 0
    entered_nodes: int = 0
    shed_nodes: int = 0
    migrated_centers: int = 0
    compacted_fragments: int = 0
    shipped_edges: int = 0
    resident_nodes: int = 0
    log_ops: int = 0
    wall_time: float = 0.0

    def as_row(self) -> str:
        """One-line human-readable summary used by the CLI."""
        return (
            f"touched={len(self.delta.touched)} rechecked={self.rechecked_centers} "
            f"owned(+{self.owned_added}/-{self.owned_removed}) "
            f"entered={self.entered_nodes} shed={self.shed_nodes} "
            f"migrated={self.migrated_centers} compacted={self.compacted_fragments} "
            f"resident={self.resident_nodes} wall={self.wall_time:.3f}s"
        )


@dataclass
class RuleAdmissionReport:
    """What one :meth:`StreamingIdentifier.admit_rules` backfill did."""

    admitted: tuple[GPAR, ...] = ()
    backfill_centers: int = 0
    wall_time: float = 0.0


def stream_update_worker(
    context: WorkerContext, payload: StreamVerifyPayload
) -> _FragmentReport:
    """BSP worker function: catch up on fragment state, verify the recheck set.

    Catch-up runs through :func:`repro.partition.lifecycle.catch_up`: a
    resident copy behind the lease's base checkpoint installs it, then the
    missed slice tail replays (the applied-sequence counter lives in the
    pool-lifetime :class:`~repro.parallel.worker.WorkerContext`).  The
    resident index is patched forward from the graph's recorded deltas
    rather than rebuilt.

    When the payload asks for tracing, the worker records its phases into a
    fragment-local :class:`~repro.obs.tracing.Tracer` (installed as the
    thread-local override, so nested module-level spans — the index/columnar
    refreshes — land in it too, on every backend) and ships the records back
    on ``report.spans`` for the coordinator to adopt.
    """
    if not payload.traced:
        return _stream_verify(context, payload)
    tracer = Tracer()
    with override_tracer(tracer):
        report = _stream_verify(context, payload)
    report.spans = tracer.records()
    return report


def _stream_verify(
    context: WorkerContext, payload: StreamVerifyPayload
) -> _FragmentReport:
    """The actual worker body (phases traced via the ambient tracer)."""
    with span("stream.worker.catch_up", fragment=context.fragment.index):
        fragment = catch_up(context, payload.lease)

    index = registered_index(fragment.graph)
    if index is not None and index.is_stale:
        with span("stream.worker.index_refresh"):
            index.refresh()
    columnar = registered_columnar(fragment.graph)
    if columnar is not None and columnar.is_stale:
        with span("stream.worker.columnar_refresh"):
            columnar.refresh()

    config = payload.config
    solver = payload.solver_cls(config)
    matcher = context.cached(
        ("eip-matcher", payload.solver_cls, config, payload.max_radius),
        lambda: solver._make_matcher(payload.max_radius),
    )
    if payload.census:
        matcher = CensusMatcher(matcher, dict(payload.census))
    if payload.recheck is None:
        target = fragment
    else:
        target = Fragment(
            index=fragment.index,
            graph=fragment.graph,
            owned_centers=set(payload.recheck),
        )
    with span(
        "stream.worker.verify",
        fragment=fragment.index,
        centers=len(target.owned_centers),
    ):
        return solver._verify_fragment(
            target, payload.rules, matcher, payload.predicate
        )


class StreamingIdentifier:
    """Maintain ``Σ(x, G, η)`` across graph update batches.

    Parameters
    ----------
    graph:
        The live data graph.  The identifier takes over mutation: apply
        updates through :meth:`apply` (arbitrary direct mutations between
        batches are detected and rejected, not silently mis-served).
    rules:
        The rule set Σ.  Connected antecedents are maintained ball-locally;
        antecedents whose only disconnection is isolated free nodes (the
        mined free-``y`` shape) are maintained via the global label census;
        disconnected components that carry edges are maintained via the
        coordinator-held component census (exact, whole-graph semantics —
        see :mod:`repro.identification.census`).
    config:
        Standard :class:`~repro.identification.eip.EIPConfig`; the backend
        and its worker pool stay up between batches.
    algorithm:
        ``"match"`` (default) or ``"matchc"``.
    stream_config:
        Lifecycle thresholds (:class:`repro.stream.StreamConfig`); defaults
        resolve from the environment.

    Use as a context manager, or call :meth:`close` to release the pool.
    """

    def __init__(
        self,
        graph: Graph,
        rules: Sequence[GPAR],
        config: EIPConfig | None = None,
        algorithm: str = "match",
        stream_config: StreamConfig | None = None,
        radius_floor: int = 0,
        **config_overrides,
    ) -> None:
        if config_overrides:
            if config is not None:
                raise StreamError(
                    "pass either an explicit EIPConfig or keyword overrides, "
                    f"not both (got config and {sorted(config_overrides)})"
                )
            warnings.warn(
                "passing EIPConfig fields as keyword arguments to "
                "StreamingIdentifier is deprecated and will be removed in the "
                "next release; build an explicit EIPConfig (or use "
                "repro.api.open_session, which owns config construction)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.graph = graph
        self.rules = tuple(rules)
        self.config = config if config is not None else EIPConfig(**config_overrides)
        self.algorithm = algorithm
        self.stream_config = stream_config if stream_config is not None else StreamConfig()
        # Floor on the verification radius: fragments are partitioned (and
        # their balls materialized) at max(radius(Σ), radius_floor), so a
        # later admit_rules() can bring rules up to the floor without
        # repartitioning.  admit/retire raise the floor to the pinned radius
        # so the resident balls never shrink under live verdicts.
        self.radius_floor = radius_floor
        self._prepare_rules()

        self.stream_config.apply_to_graph(graph)
        centers = graph.nodes_with_label(self.x_label)
        fragments = partition_graph(
            graph,
            self.config.num_workers,
            centers=centers,
            d=self.max_radius,
            seed=self.config.seed,
        )
        for fragment in fragments:
            fragment.graph.configure_delta_log(self.stream_config.delta_log_size)
        # All residency/ownership/log truth lives in the manager, next to
        # the authoritative graph; fragment *objects* may live (and mutate)
        # in worker processes.
        self.manager = FragmentManager(
            graph, fragments, self.max_radius, self.x_label, self.stream_config
        )
        self.fragments = self.manager.fragments
        self.batches_applied = 0
        self._start_runtime()

        payloads = [
            self._payload(fragment.index, recheck=None) for fragment in self.fragments
        ]
        tracer = active()
        with span("stream.initial_verify", fragments=len(payloads)) as init_span:
            reports = self.runtime.run_round(stream_update_worker, payloads)
            if tracer is not None:
                for shipped in reports:
                    if shipped.spans:
                        tracer.adopt(
                            shipped.spans,
                            parent_id=init_span.span_id,
                            prefix=f"t0.w{shipped.fragment_index}.",
                        )
                        shipped.spans = []
        self._reports: dict[int, _FragmentReport] = {
            report.fragment_index: report for report in reports
        }
        self._graph_version = graph.version
        self._result = self._assemble()

    # ------------------------------------------------------------------
    # construction helpers (shared with restore())
    # ------------------------------------------------------------------
    def _prepare_rules(self) -> None:
        """Validate Σ; derive solver, predicate, radius and census plans."""
        if self.algorithm not in STREAM_ALGORITHMS:
            raise StreamError(
                f"unknown streaming algorithm {self.algorithm!r}; "
                f"expected one of {sorted(STREAM_ALGORITHMS)}"
            )
        solver_cls = STREAM_ALGORITHMS[self.algorithm]
        self._solver = solver_cls(self.config)
        representative = _shared_predicate(list(self.rules))
        self.predicate = representative.q_pattern()
        self.x_label = representative.x_label
        # One census plan shared (by construction) with the static solvers:
        # workers verify x-components via CensusMatcher substitution, the
        # coordinator applies the global half at assembly time.  PR = the
        # antecedent + the q(x, y) edge, so a free y reattaches in PR while
        # any other free part census-splits PR too; rule.verification_radius
        # — which needs a connected PR — is replaced by the x-reachable
        # depths of both x-components (RuleCensus.depth).
        self._census_plan = plan_census(self.rules)
        self._census_parts: dict[GPAR, Pattern] = {
            entry.rule: entry.part for entry in self._census_plan.entries
        }
        self._census_requirements: dict[GPAR, tuple] = {
            entry.rule: entry.requirements
            for entry in self._census_plan.entries
            if entry.requirements
        }
        self._census_pr_requirements: dict[GPAR, tuple] = {
            entry.rule: entry.pr_requirements
            for entry in self._census_plan.entries
            if entry.pr_requirements
        }
        self._census_pairs = self._census_plan.substitutions
        self.max_radius = max(
            max_verification_radius(self.rules, self._census_plan),
            self.radius_floor,
        )

    def _start_runtime(self) -> None:
        solver_cls = type(self._solver)
        if self.config.backend == "processes":
            # Pool workers build fragment indexes with the process-wide
            # defaults; exporting before the pool forks/spawns is what makes
            # a programmatic StreamConfig override reach them.
            self.stream_config.export_env()
        executor = make_executor(
            self.config.backend,
            self.config.executor_workers,
            build_indexes=self.config.use_index and solver_cls._consumes_resident_index,
            build_columnar=self.config.use_columnar and solver_cls._consumes_columnar,
        )
        self.runtime = BSPRuntime(self.fragments, executor)
        self.runtime.start_run()
        # In-process backends share the coordinator's fragment indexes and
        # columnar views; honour the configured rebuild fraction on them
        # directly (process pools inherit it through the exported
        # environment variable).
        for fragment in self.fragments:
            resident = registered_index(fragment.graph)
            if resident is not None:
                resident.rebuild_fraction = self.stream_config.delta_rebuild_fraction
            resident_columnar = registered_columnar(fragment.graph)
            if resident_columnar is not None:
                resident_columnar.rebuild_fraction = (
                    self.stream_config.delta_rebuild_fraction
                )
        self._closed = False
        # apply() is not re-entrant: it mutates the authoritative graph, the
        # lifecycle manager and the stored reports in sequence, so a second
        # concurrent call would interleave half-applied ticks.  The guard is
        # non-blocking — concurrent writers are a caller bug (serialize
        # through repro.api.Session.apply), not something to silently queue.
        self._apply_guard = threading.Lock()

    def _payload(
        self,
        index: int,
        recheck: tuple | None,
        rules: tuple[GPAR, ...] | None = None,
    ) -> StreamVerifyPayload:
        return StreamVerifyPayload(
            lease=self.manager.lease(index),
            solver_cls=type(self._solver),
            config=self.config,
            rules=self.rules if rules is None else rules,
            max_radius=self.max_radius,
            predicate=self.predicate,
            recheck=recheck,
            census=self._census_pairs,
            traced=tracing_enabled(),
        )

    # ------------------------------------------------------------------
    def _infeasible_rules(self) -> list[GPAR]:
        """Census rules whose *antecedent* the current label counts cannot cover."""
        if not self._census_requirements:
            return []
        counts = self.graph.node_label_counts()
        return [
            rule
            for rule, requirements in self._census_requirements.items()
            if not census_feasible(requirements, counts)
        ]

    def _pr_infeasible_rules(self) -> list[GPAR]:
        """Census rules whose *PR pattern* the current label counts cannot cover."""
        if not self._census_pr_requirements:
            return []
        counts = self.graph.node_label_counts()
        return [
            rule
            for rule, requirements in self._census_pr_requirements.items()
            if not census_feasible(requirements, counts)
        ]

    def _assemble(self) -> EIPResult:
        reports = [self._reports[fragment.index] for fragment in self.fragments]
        # The maintained reports hold x-part verdicts; the census rewrites
        # them to whole-graph verdicts on *copies*, so a census that becomes
        # satisfiable again on a later tick re-reads the intact x-part sets.
        reports = apply_census(self.graph, self.rules, reports, self._census_plan)
        result = self._solver._assemble(list(self.rules), reports)
        result.timings = self.runtime.timings
        return result

    @property
    def result(self) -> EIPResult:
        """The maintained EIP answer for the graph's current state."""
        if self.graph.version != self._graph_version:
            raise StreamError(
                "the graph was mutated outside StreamingIdentifier.apply(); "
                "the maintained result no longer describes it"
            )
        return self._result

    # ------------------------------------------------------------------
    def apply(self, batch: UpdateBatch) -> StreamUpdateReport:
        """Apply *batch* to the graph and repair the maintained answer.

        Not re-entrant: a second concurrent call (another thread driving the
        same identifier) raises :class:`StreamError` instead of interleaving
        ticks.  Serialize writers through :class:`repro.api.Session`.
        """
        if not self._apply_guard.acquire(blocking=False):
            raise StreamError(
                "another apply() is already in progress on this "
                "StreamingIdentifier; updates must be serialized (use "
                "repro.api.Session.apply, which queues writers)"
            )
        try:
            with span("stream.tick", tick=self.batches_applied + 1):
                return self._apply_locked(batch)
        finally:
            self._apply_guard.release()

    def _apply_locked(self, batch: UpdateBatch) -> StreamUpdateReport:
        if self._closed:
            raise StreamError("this StreamingIdentifier is closed")
        if self.graph.version != self._graph_version:
            raise StreamError(
                "the graph was mutated outside StreamingIdentifier.apply(); "
                "close this identifier and build a fresh one"
            )
        started = time.perf_counter()
        with span("stream.apply_batch") as batch_span:
            delta = batch.apply(self.graph)
            batch_span.set(touched=len(delta.touched))
        report = StreamUpdateReport(delta=delta)
        graph = self.graph
        self._graph_version = graph.version
        self.batches_applied += 1

        # Region whose centres may have changed verdicts: within d hops of a
        # touched node, measured on the post-update graph (exact — see
        # docs/streaming.md).
        with span("stream.slice_build") as slice_span:
            region = multi_source_ball(graph, delta.touched, self.max_radius)
            plan = self.manager.derive_batch(delta, region)
            slice_span.set(
                region=len(region), rechecked=plan.rechecked_centers
            )
        report.rechecked_centers = plan.rechecked_centers
        report.owned_added = plan.owned_added
        report.owned_removed = plan.owned_removed
        report.entered_nodes = plan.entered_nodes
        report.shed_nodes = plan.shed_nodes
        report.migrated_centers = len(plan.migrations)
        report.shipped_edges = plan.shipped_edges

        # Capture migrated centres' verdict bits before the merge removes
        # them from their source reports; their verdicts are provably
        # unchanged (quiescent centres only), so they splice — not re-verify.
        splices = []
        for center, src, dst in plan.migrations:
            stored = self._reports[src]
            splices.append(
                (
                    center,
                    dst,
                    center in stored.positives,
                    center in stored.negatives,
                    {
                        rule
                        for rule in self.rules
                        if center in stored.antecedent_sets.get(rule, ())
                    },
                    {
                        rule
                        for rule in self.rules
                        if center in stored.rule_matches.get(rule, ())
                    },
                )
            )

        payloads = []
        invalidated: dict[int, set] = {}
        for fragment in self.fragments:
            index = fragment.index
            update = plan.updates[index]
            invalidated[index] = set(update.recheck) | set(update.own_remove)
            payloads.append(self._payload(index, recheck=update.recheck))
        tracer = active()
        with span("stream.verify", fragments=len(payloads)) as verify_span:
            partials = self.runtime.run_round(stream_update_worker, payloads)
            if tracer is not None:
                # Re-parent the shipped worker spans under this verify span;
                # the prefix keeps ids unique across ticks and fragments.
                for partial in partials:
                    if partial.spans:
                        tracer.adopt(
                            partial.spans,
                            parent_id=verify_span.span_id,
                            prefix=(
                                f"t{self.batches_applied}"
                                f".w{partial.fragment_index}."
                            ),
                        )
                        partial.spans = []
        # Feed the measured per-fragment worker times of this round into the
        # manager's rebalance policy: migrations then weigh owned-ball sizes
        # by observed per-node cost, not node counts alone.  Placement-only —
        # verdicts never depend on which fragment verifies a centre.
        round_timing = self.runtime.timings.rounds[-1]
        self.manager.record_round_timing(
            {
                fragment.index: elapsed
                for fragment, elapsed in zip(
                    self.fragments, round_timing.worker_times
                )
            }
        )
        with span("stream.assemble", splices=len(splices)):
            for partial in partials:
                self._merge(partial, invalidated[partial.fragment_index])
            for center, dst, positive, negative, antecedent_rules, match_rules in splices:
                stored = self._reports[dst]
                if positive:
                    stored.positives.add(center)
                if negative:
                    stored.negatives.add(center)
                for rule in antecedent_rules:
                    stored.antecedent_sets.setdefault(rule, set()).add(center)
                for rule in match_rules:
                    stored.rule_matches.setdefault(rule, set()).add(center)
                self._recount(stored)
            report.compacted_fragments = len(self.manager.maybe_compact())
            summary = self.manager.resident_summary()
            report.resident_nodes = summary["resident_nodes"]
            report.log_ops = summary["log_ops"]
            self._result = self._assemble()
        report.wall_time = time.perf_counter() - started
        self._record_tick_metrics(report)
        return report

    def _record_tick_metrics(self, report: StreamUpdateReport) -> None:
        """Fold one tick's outcome into the process-global metrics registry."""
        metrics = registry()
        metrics.inc(
            "repro_stream_ticks_total", help="Update batches applied"
        )
        metrics.inc(
            "repro_stream_rechecked_centers_total",
            report.rechecked_centers,
            help="Centres re-verified by streaming repair",
        )
        metrics.inc(
            "repro_stream_shed_nodes_total",
            report.shed_nodes,
            help="Resident nodes shed after deletions",
        )
        metrics.inc(
            "repro_stream_migrated_centers_total",
            report.migrated_centers,
            help="Centres migrated between fragments",
        )
        metrics.inc(
            "repro_stream_compacted_fragments_total",
            report.compacted_fragments,
            help="Fragment logs compacted into checkpoints",
        )
        metrics.observe(
            "repro_stream_tick_seconds",
            report.wall_time,
            help="End-to-end latency of one apply() tick",
        )

    # ------------------------------------------------------------------
    def _merge(self, partial: _FragmentReport, invalidated: set) -> None:
        """Splice a partial re-verification into the fragment's stored report."""
        stored = self._reports[partial.fragment_index]
        stored.positives = (stored.positives - invalidated) | partial.positives
        stored.negatives = (stored.negatives - invalidated) | partial.negatives
        stored.candidates_examined += partial.candidates_examined
        stored.prefix_pool_hits += partial.prefix_pool_hits
        for rule in self.rules:
            antecedent = (
                stored.antecedent_sets.get(rule, set()) - invalidated
            ) | partial.antecedent_sets.get(rule, set())
            matches = (
                stored.rule_matches.get(rule, set()) - invalidated
            ) | partial.rule_matches.get(rule, set())
            stored.antecedent_sets[rule] = antecedent
            stored.rule_matches[rule] = matches
        self._recount(stored)

    def _recount(self, stored: _FragmentReport) -> None:
        """Recompute every derived count of a stored report from its sets."""
        stored.supp_q = len(stored.positives)
        stored.supp_q_bar = len(stored.negatives)
        for rule in self.rules:
            antecedent = stored.antecedent_sets.get(rule, set())
            stored.antecedent_counts[rule] = len(antecedent)
            stored.qbar_counts[rule] = len(antecedent & stored.negatives)

    # ------------------------------------------------------------------
    # dynamic Σ: warm rule admission / retirement (multi-tenant serving)
    # ------------------------------------------------------------------
    def admit_rules(self, new_rules: Sequence[GPAR]) -> RuleAdmissionReport:
        """Extend Σ in place; backfill **only** the new rules' verdicts.

        The resident fragments, their materialized d-balls and every
        existing rule's verdict survive untouched: one verification round
        runs with the additions alone over all owned centres, and its
        per-rule sets merge into the stored reports.  Rules already in Σ
        (structural :class:`~repro.pattern.gpar.GPAR` equality) are skipped
        — that is the warm-admission fast path of docs/multitenant.md.

        The verification radius is pinned: a new rule needing a larger
        radius than the balls were materialized with is rejected (build a
        core with a bigger ``radius_floor`` instead of silently serving it
        from truncated neighbourhoods).

        Not re-entrant with :meth:`apply`; serialize through the session
        layer like any other write.
        """
        if not self._apply_guard.acquire(blocking=False):
            raise StreamError(
                "another apply()/admit_rules() is already in progress on this "
                "StreamingIdentifier; writes must be serialized (use "
                "repro.api, which queues them)"
            )
        try:
            return self._admit_locked(new_rules)
        finally:
            self._apply_guard.release()

    def _admit_locked(self, new_rules: Sequence[GPAR]) -> RuleAdmissionReport:
        if self._closed:
            raise StreamError("this StreamingIdentifier is closed")
        if self.graph.version != self._graph_version:
            raise StreamError(
                "the graph was mutated outside StreamingIdentifier.apply(); "
                "close this identifier and build a fresh one"
            )
        started = time.perf_counter()
        seen = set(self.rules)
        additions: list[GPAR] = []
        for rule in new_rules:
            if rule not in seen:
                additions.append(rule)
                seen.add(rule)
        if not additions:
            return RuleAdmissionReport(admitted=())
        pinned = self.max_radius
        union = self.rules + tuple(additions)
        _shared_predicate(list(union))
        needed = max_verification_radius(union, plan_census(union))
        if needed > pinned:
            raise StreamError(
                f"cannot admit rules needing verification radius {needed}: "
                f"the resident fragment balls were materialized at d={pinned}; "
                f"open a separate core (or rebuild with radius_floor={needed})"
            )
        self.radius_floor = max(self.radius_floor, pinned)
        self.rules = union
        self._prepare_rules()
        payloads = [
            self._payload(fragment.index, recheck=None, rules=tuple(additions))
            for fragment in self.fragments
        ]
        tracer = active()
        with span("stream.admit_rules", rules=len(additions)) as admit_span:
            partials = self.runtime.run_round(stream_update_worker, payloads)
            if tracer is not None:
                for partial in partials:
                    if partial.spans:
                        tracer.adopt(
                            partial.spans,
                            parent_id=admit_span.span_id,
                            prefix=f"adm.w{partial.fragment_index}.",
                        )
                        partial.spans = []
        for partial in partials:
            stored = self._reports[partial.fragment_index]
            stored.candidates_examined += partial.candidates_examined
            stored.prefix_pool_hits += partial.prefix_pool_hits
            # positives/negatives are Σ-independent predicate verdicts over
            # the same owned centres — already held by the stored report.
            for rule in additions:
                stored.antecedent_sets[rule] = partial.antecedent_sets.get(rule, set())
                stored.rule_matches[rule] = partial.rule_matches.get(rule, set())
            self._recount(stored)
        self._result = self._assemble()
        return RuleAdmissionReport(
            admitted=tuple(additions),
            backfill_centers=sum(
                len(fragment.owned_centers) for fragment in self.fragments
            ),
            wall_time=time.perf_counter() - started,
        )

    def retire_rules(self, rules: Sequence[GPAR]) -> tuple[GPAR, ...]:
        """Shrink Σ in place, dropping the retired rules' stored verdicts.

        No verification runs and the radius stays pinned (the resident
        balls may be larger than the remaining Σ needs — correct, just
        roomy).  Retiring every rule is rejected: :meth:`close` the
        identifier instead.  Returns the rules actually removed.
        """
        if not self._apply_guard.acquire(blocking=False):
            raise StreamError(
                "another apply()/admit_rules() is already in progress on this "
                "StreamingIdentifier; writes must be serialized (use "
                "repro.api, which queues them)"
            )
        try:
            if self._closed:
                raise StreamError("this StreamingIdentifier is closed")
            if self.graph.version != self._graph_version:
                raise StreamError(
                    "the graph was mutated outside StreamingIdentifier.apply(); "
                    "close this identifier and build a fresh one"
                )
            removal = set(rules)
            removed = tuple(rule for rule in self.rules if rule in removal)
            if not removed:
                return ()
            remaining = tuple(rule for rule in self.rules if rule not in removal)
            if not remaining:
                raise StreamError(
                    "cannot retire every rule of a StreamingIdentifier; "
                    "close() it instead"
                )
            self.radius_floor = max(self.radius_floor, self.max_radius)
            self.rules = remaining
            self._prepare_rules()
            for stored in self._reports.values():
                for rule in removed:
                    stored.antecedent_sets.pop(rule, None)
                    stored.rule_matches.pop(rule, None)
                    stored.antecedent_counts.pop(rule, None)
                    stored.qbar_counts.pop(rule, None)
                self._recount(stored)
            self._result = self._assemble()
            return removed
        finally:
            self._apply_guard.release()

    # ------------------------------------------------------------------
    # durable state: checkpoint → restart
    # ------------------------------------------------------------------
    def save_state(self, path: Path | str | None = None) -> Path:
        """Write a durable, self-contained checkpoint of the computation.

        The pickle holds the authoritative graph, Σ, both configs, the
        manager's full lifecycle state (ownership, refcounted balls, slice
        logs, compaction bases — on-disk bases are inlined) and the
        maintained per-fragment reports.  :meth:`restore` resumes from it
        with byte-identical answers, on any backend.
        """
        if self.graph.version != self._graph_version:
            raise StreamError(
                "the graph was mutated outside StreamingIdentifier.apply(); "
                "refusing to checkpoint an inconsistent state"
            )
        if path is None:
            if self.stream_config.state_dir is None:
                raise StreamError(
                    "save_state needs an explicit path or a configured state_dir"
                )
            path = Path(self.stream_config.state_dir) / "stream-state.pkl"
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        state = {
            "format": 1,
            "graph": self.graph,
            "rules": self.rules,
            "config": self.config,
            "stream_config": self.stream_config,
            "algorithm": self.algorithm,
            "radius_floor": self.radius_floor,
            "manager": self.manager.state_dict(),
            "reports": self._reports,
            "batches_applied": self.batches_applied,
        }
        with open(path, "wb") as handle:
            pickle.dump(state, handle)
        return path

    @classmethod
    def restore(
        cls,
        path: Path | str,
        backend: str | None = None,
        executor_workers: int | None = None,
    ) -> "StreamingIdentifier":
        """Resume a checkpointed identifier (optionally on another backend).

        Fragments are re-materialised from the saved lifecycle state at the
        saved sequence — no re-verification runs; the restored
        :attr:`result` is byte-identical to the one checkpointed, and later
        :meth:`apply` calls continue exactly as the original would have.
        """
        with open(Path(path), "rb") as handle:
            state = pickle.load(handle)
        if state.get("format") != 1:
            raise StreamError(f"unsupported stream-state format in {path}")
        config = state["config"]
        if backend is not None:
            config = replace(config, backend=backend)
        if executor_workers is not None:
            config = replace(config, executor_workers=executor_workers)
        identifier = cls.__new__(cls)
        identifier.graph = state["graph"]
        identifier.rules = state["rules"]
        identifier.config = config
        identifier.algorithm = state["algorithm"]
        identifier.stream_config = state["stream_config"]
        identifier.radius_floor = state.get("radius_floor", 0)
        identifier._prepare_rules()
        identifier.manager = FragmentManager.from_state(
            identifier.graph, state["manager"], identifier.stream_config
        )
        identifier.fragments = identifier.manager.fragments
        identifier.batches_applied = state["batches_applied"]
        identifier._start_runtime()
        identifier._reports = state["reports"]
        identifier._graph_version = identifier.graph.version
        identifier._result = identifier._assemble()
        return identifier

    # ------------------------------------------------------------------
    def recompute(self) -> EIPResult:
        """From-scratch answer on the current graph (the repair-vs-recompute
        baseline used by the equivalence gate and the ``stream`` benchmark).

        The batch solvers route disconnected rules through the same global
        census as the maintained path (:mod:`repro.identification.census`),
        so this baseline is partition-independent and byte-comparable to
        :attr:`result` for every Σ, free-pattern rules included.
        """
        from repro.identification.eip import identify_entities

        return identify_entities(
            self.graph,
            list(self.rules),
            eta=self.config.eta,
            num_workers=self.config.num_workers,
            algorithm=self.algorithm,
            seed=self.config.seed,
            backend=self.config.backend,
            executor_workers=self.config.executor_workers,
            use_index=self.config.use_index,
            use_columnar=self.config.use_columnar,
            use_incremental=self.config.use_incremental,
        )

    def close(self) -> None:
        """Release the worker pool; the maintained result stays readable."""
        if not self._closed:
            self.runtime.finish_run()
            self._closed = True

    def __enter__(self) -> "StreamingIdentifier":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
