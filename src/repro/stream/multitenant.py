"""Multi-tenant streaming: N rule sets Σ over one resident graph.

A :class:`MultiTenantIdentifier` wraps **one** :class:`StreamingIdentifier`
whose Σ is the union of *distinct canonical antecedents* across all
admitted tenants (deduplicated by the process-wide
:class:`repro.matching.SharedPatternPool`).  Each update tick therefore
verifies a touched centre once per distinct canonical antecedent — not once
per tenant — and the per-tenant answers are *projections* of the shared
per-fragment verdict state:

* admission (:meth:`admit`) registers the tenant's Σ in the pool; rules
  whose canonical key is already resident are served entirely from the
  shared verdicts (zero verification), and only the novel keys are
  backfilled through :meth:`StreamingIdentifier.admit_rules` — the *warm
  admission* of docs/multitenant.md.  The first tenant pays the cold full
  verify; the k-th pays only its novel suffix.
* reads (:meth:`result_for`) rebind each tenant rule to its representative's
  witness sets, re-run the tenant's own census plan over the projected
  reports and assemble with the tenant's rules — byte-identical to an
  independent :func:`repro.identification.eip.identify_entities` run on the
  same graph, because anchored match sets are invariant under antecedent
  isomorphism that preserves the x/y designation (exactly what canonical
  codes quotient by).
* eviction (:meth:`evict`) releases the tenant's pool references and
  retires representatives that lost their last owner from the shared core —
  without touching verdict state any remaining tenant still reads.

Writes are serialized internally; all tenants must share the consequent
predicate, the :class:`~repro.identification.eip.EIPConfig` and the
algorithm (they describe one physical core).  Checkpointing a shared core
is not supported — evict tenants and checkpoint per-tenant cores instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import StreamError
from repro.graph.graph import Graph
from repro.identification.census import apply_census, plan_census
from repro.identification.eip import EIPConfig, EIPResult
from repro.identification.matchc import _FragmentReport
from repro.matching.shared import SharedPatternPool
from repro.obs.registry import registry
from repro.pattern.gpar import GPAR
from repro.stream.config import StreamConfig
from repro.stream.identifier import StreamingIdentifier, StreamUpdateReport
from repro.stream.updates import UpdateBatch

__all__ = ["MultiTenantIdentifier", "TenantAdmission"]


@dataclass(frozen=True)
class TenantAdmission:
    """What admitting one tenant cost (the marginal-cost measurement surface)."""

    tenant: str
    rules: tuple[GPAR, ...]
    shared_rules: int
    novel_rules: int
    shared_prefix_hits: int
    backfill_centers: int
    cold_start: bool
    wall_time: float


class MultiTenantIdentifier:
    """Serve N tenant rule sets from one maintained streaming core.

    Parameters mirror :class:`StreamingIdentifier` minus the rules — Σ
    arrives per tenant through :meth:`admit`.  ``radius_floor`` gives the
    core headroom: tenants admitted later may need a verification radius up
    to the floor (or up to the radius the resident balls were materialized
    with) without repartitioning.
    """

    def __init__(
        self,
        graph: Graph,
        config: EIPConfig | None = None,
        algorithm: str = "match",
        stream_config: StreamConfig | None = None,
        radius_floor: int = 0,
        pool: SharedPatternPool | None = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else EIPConfig()
        self.algorithm = algorithm
        self.stream_config = stream_config
        self.radius_floor = radius_floor
        self.pool = pool if pool is not None else SharedPatternPool()
        self._core: StreamingIdentifier | None = None
        self._tenants: dict[str, tuple[GPAR, ...]] = {}
        self._representatives: dict[str, dict[GPAR, GPAR]] = {}
        self._census_plans: dict[str, object] = {}
        self._admissions: dict[str, TenantAdmission] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def identifier(self) -> StreamingIdentifier:
        """The shared streaming core (raises before the first admission)."""
        core = self._core
        if core is None:
            raise StreamError("no tenants admitted yet; the shared core is not built")
        return core

    @property
    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._tenants)

    @property
    def union_rules(self) -> tuple[GPAR, ...]:
        """The distinct canonical representatives the core verifies."""
        return self.identifier.rules

    def rules_for(self, tenant: str) -> tuple[GPAR, ...]:
        with self._lock:
            return self._require(tenant)

    def admission_for(self, tenant: str) -> TenantAdmission:
        with self._lock:
            self._require(tenant)
            return self._admissions[tenant]

    def _require(self, tenant: str) -> tuple[GPAR, ...]:
        rules = self._tenants.get(tenant)
        if rules is None:
            raise StreamError(f"unknown tenant {tenant!r}")
        return rules

    # ------------------------------------------------------------------
    def admit(self, tenant: str, rules: Sequence[GPAR]) -> TenantAdmission:
        """Admit *tenant* with its Σ; warm when the pool already covers it.

        The first admission builds the core (cold full verify).  Later
        admissions backfill **only** rules whose canonical antecedent key is
        novel across every resident Σ; fully-shared rules admit in O(1).
        """
        with self._lock:
            if self._closed:
                raise StreamError("this MultiTenantIdentifier is closed")
            started = time.perf_counter()
            registration = self.pool.register(tenant, tuple(rules))
            try:
                cold = self._core is None
                novel = registration.novel
                if cold:
                    representatives = tuple(
                        dict.fromkeys(
                            registration.representatives[rule] for rule in rules
                        )
                    )
                    self._core = StreamingIdentifier(
                        self.graph,
                        representatives,
                        config=self.config,
                        algorithm=self.algorithm,
                        stream_config=self.stream_config,
                        radius_floor=self.radius_floor,
                    )
                    backfill = sum(
                        len(fragment.owned_centers)
                        for fragment in self._core.fragments
                    )
                elif novel:
                    backfill = self._core.admit_rules(novel).backfill_centers
                else:
                    backfill = 0
            except BaseException:
                self.pool.release(tenant)
                raise
            self._tenants[tenant] = tuple(rules)
            self._representatives[tenant] = dict(registration.representatives)
            self._census_plans[tenant] = plan_census(tuple(rules))
            admission = TenantAdmission(
                tenant=tenant,
                rules=tuple(rules),
                shared_rules=len(registration.shared),
                novel_rules=len(novel),
                shared_prefix_hits=registration.shared_prefix_hits,
                backfill_centers=backfill,
                cold_start=cold,
                wall_time=time.perf_counter() - started,
            )
            self._admissions[tenant] = admission
            self._record_admission_metrics(admission)
            return admission

    def evict(self, tenant: str) -> None:
        """Retire *tenant*; shared verdict state other tenants read survives.

        Representatives that lost their last owner leave the core (the last
        tenant's eviction closes it outright).
        """
        with self._lock:
            self._require(tenant)
            retired = self.pool.release(tenant)
            del self._tenants[tenant]
            del self._representatives[tenant]
            del self._census_plans[tenant]
            del self._admissions[tenant]
            core = self._core
            if core is not None:
                if not self._tenants:
                    core.close()
                    self._core = None
                elif retired:
                    core.retire_rules(retired)
            registry().inc(
                "repro_tenant_evictions_total", help="Tenants evicted from shared cores"
            )

    # ------------------------------------------------------------------
    def apply(self, batch: UpdateBatch) -> StreamUpdateReport:
        """Apply *batch* once for every tenant: one verification per distinct
        canonical antecedent, verdicts fanned out at read time."""
        with self._lock:
            if self._closed:
                raise StreamError("this MultiTenantIdentifier is closed")
            core = self._core
            if core is None:
                raise StreamError("no tenants admitted; nothing maintains this graph")
            report = core.apply(batch)
            total_rules = sum(len(rules) for rules in self._tenants.values())
            saved = report.rechecked_centers * max(0, total_rules - len(core.rules))
            metrics = registry()
            metrics.inc(
                "repro_tenant_overlay_verdicts_total",
                saved,
                help=(
                    "Per-tenant centre verdicts served from the shared "
                    "substrate instead of being re-verified"
                ),
            )
            return report

    def result_for(self, tenant: str) -> EIPResult:
        """The maintained answer for *tenant*'s Σ on the current graph.

        Byte-identical to an independent
        :func:`~repro.identification.eip.identify_entities` run with the
        tenant's rules: witness sets are rebound representative → tenant
        rule, then the tenant's own census plan and η-assembly run.
        """
        with self._lock:
            rules = self._require(tenant)
            core = self.identifier
            core.result  # raises if the graph was mutated outside apply()
            representatives = self._representatives[tenant]
            plan = self._census_plans[tenant]
        projected = [
            self._project(core._reports[fragment.index], rules, representatives)
            for fragment in core.fragments
        ]
        reports = apply_census(self.graph, rules, projected, plan)
        return core._solver._assemble(list(rules), reports)

    def results(self) -> dict[str, EIPResult]:
        """Every tenant's maintained answer (one projection each)."""
        return {tenant: self.result_for(tenant) for tenant in self.tenants}

    @staticmethod
    def _project(
        stored: _FragmentReport,
        rules: tuple[GPAR, ...],
        representatives: Mapping[GPAR, GPAR],
    ) -> _FragmentReport:
        """Rebind one fragment's shared verdicts to a tenant's rule objects."""
        projected = _FragmentReport(
            fragment_index=stored.fragment_index,
            supp_q=stored.supp_q,
            supp_q_bar=stored.supp_q_bar,
            candidates_examined=stored.candidates_examined,
            prefix_pool_hits=stored.prefix_pool_hits,
            positives=stored.positives,
            negatives=stored.negatives,
        )
        for rule in rules:
            representative = representatives[rule]
            projected.rule_matches[rule] = stored.rule_matches.get(
                representative, set()
            )
            projected.antecedent_sets[rule] = stored.antecedent_sets.get(
                representative, set()
            )
            projected.antecedent_counts[rule] = stored.antecedent_counts.get(
                representative, 0
            )
            projected.qbar_counts[rule] = stored.qbar_counts.get(representative, 0)
        return projected

    def recompute_for(self, tenant: str) -> EIPResult:
        """From-scratch answer for *tenant* (the equivalence baseline)."""
        from repro.identification.eip import identify_entities

        with self._lock:
            rules = self._require(tenant)
        config = self.config
        return identify_entities(
            self.graph,
            list(rules),
            eta=config.eta,
            num_workers=config.num_workers,
            algorithm=self.algorithm,
            seed=config.seed,
            backend=config.backend,
            executor_workers=config.executor_workers,
            use_index=config.use_index,
            use_columnar=config.use_columnar,
            use_incremental=config.use_incremental,
        )

    # ------------------------------------------------------------------
    def _record_admission_metrics(self, admission: TenantAdmission) -> None:
        metrics = registry()
        metrics.inc(
            "repro_tenant_admissions_total", help="Tenants admitted to shared cores"
        )
        metrics.inc(
            "repro_tenant_shared_rules_total",
            admission.shared_rules,
            help="Admitted rules fully served by a resident canonical antecedent",
        )
        metrics.inc(
            "repro_tenant_novel_rules_total",
            admission.novel_rules,
            help="Admitted rules that required a backfill verification",
        )
        metrics.inc(
            "repro_tenant_shared_prefix_hits_total",
            admission.shared_prefix_hits,
            help="Antecedent prefixes already resident for another tenant",
        )
        metrics.inc(
            "repro_tenant_admission_backfill_centers_total",
            admission.backfill_centers,
            help="Centres verified during admission backfills (0 = fully warm)",
        )

    def close(self) -> None:
        """Release every tenant and the shared core's worker pool."""
        with self._lock:
            if self._closed:
                return
            for tenant in tuple(self._tenants):
                self.pool.release(tenant)
            self._tenants.clear()
            self._representatives.clear()
            self._census_plans.clear()
            self._admissions.clear()
            if self._core is not None:
                self._core.close()
                self._core = None
            self._closed = True

    def __enter__(self) -> "MultiTenantIdentifier":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
