"""Incremental match materialization for levelwise mining (delta extension).

DMine grows rules level by level: every level-``k+1`` candidate pattern is a
parent pattern plus *exactly one* edge.  Re-matching each child from an empty
embedding discards everything the parent level already proved.  This module
turns matching into an incremental computation:

* :class:`MatchStore` materializes, per fragment graph, the match set of a
  pattern **plus** its witness embeddings — compact tuples pulled lazily
  from the matcher's own enumeration, keyed by the pattern's canonical
  code — so a later level can start from them;
* :class:`DeltaMatcher` produces a child pattern's matches from a parent
  entry and a :class:`DeltaEdge` by probing only the new edge's endpoints:
  a *closing* edge (both endpoints already in the parent) is one
  ``has_edge`` probe per stored embedding, a *growing* edge (one fresh
  node) is one adjacency-bucket probe per stored embedding, answered by the
  resident :class:`repro.graph.index.FragmentIndex` when one is in use.

Laziness
--------
Deciding that a centre matches needs exactly one embedding, so
materialization costs the same as the find-first probe the from-scratch
path makes.  Each matched centre keeps an :class:`_EmbeddingStream`: the
embeddings pulled so far plus the still-suspended enumeration, shared by
every child that later delta-extends the centre — the second and deeper
embeddings are only ever enumerated when some child's delta probe fails on
the earlier ones, and that work is paid once per parent, not once per
child.  A child entry's stream is itself lazy, drawing parent embeddings
through the delta edge, so laziness composes across levels.

Exactness
---------
A child match restricted to the parent's nodes is a parent match (the
mapping stays injective and every parent edge is still covered), so the
child's matches at a centre are exactly the one-edge extensions of the
parent's embeddings at that centre.  Delta extension therefore returns the
same match set as a full re-match **provided the parent's embeddings can be
enumerated to the end**.  Enumeration is capped (:data:`DEFAULT_EMBEDDING_CAP`)
to bound memory on hub-heavy centres; a stream that hits the cap is marked
truncated and the centre falls back to a full anchored search — the
incremental path never trades exactness for speed.  Every other miss falls
back the same way: a rule that arrives without a materialized parent
(cross-level dedup picked an automorphic sibling, diversification re-seeded
the beam, a process-pool worker with a cold store), a graph that mutated
since materialization (checked against ``Graph.version``), or a matcher
without embedding semantics (dual simulation).

Witness canonicality
--------------------
Entries materialized by full search pull embeddings in the matcher's own
DFS order, so their first embedding per centre **is** the mapping
``find_match_at`` would return — expansion can reuse it as the witness
match without changing which extensions are proposed.  Delta-derived
entries make no such promise and are flagged accordingly; witness consumers
must check :attr:`MatchEntry.canonical_witness`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from repro.exceptions import GraphError, PatternError
from repro.graph.graph import Graph
from repro.matching.base import Matcher
from repro.obs.stats import StatisticsBase
from repro.pattern.canonical import canonical_code
from repro.pattern.pattern import Pattern
from repro.pattern.radius import pattern_radius

NodeId = Hashable

#: Per-centre cap on materialized embeddings.  A centre whose stream hits
#: the cap is marked truncated and re-verified by full search when extended.
DEFAULT_EMBEDDING_CAP = 64

#: How many parent embeddings a delta probe inspects before declaring the
#: centre undecided and falling back to one anchored search.  Keeps the
#: worst case (many parent embeddings, child matching none of them) at the
#: cost the from-scratch path would pay anyway, instead of exhausting the
#: parent's enumeration.
DEFAULT_PROBE_DEPTH = 4

#: Yielded by a child stream's producer when its parent stream truncated:
#: the child cannot know whether further embeddings exist.
_TRUNCATED = object()


@dataclass(frozen=True)
class DeltaEdge:
    """The single pattern edge by which a child extends its parent.

    ``new_node`` is the pattern node introduced together with the edge (one
    of ``source``/``target``) or ``None`` for a *closing* edge between two
    nodes the parent already has; ``new_label`` is its search condition.
    """

    source: Hashable
    target: Hashable
    label: str
    new_node: Hashable | None = None
    new_label: str | None = None

    @property
    def closing(self) -> bool:
        """Whether both endpoints already exist in the parent pattern."""
        return self.new_node is None


def single_edge_delta(parent: Pattern, child: Pattern) -> DeltaEdge | None:
    """The :class:`DeltaEdge` turning *parent* into *child*, or ``None``.

    Returns ``None`` whenever *child* is not exactly *parent* plus one edge
    (and at most one new node carried by that edge) with identical designated
    nodes, labels and no copy counts — callers treat ``None`` as "no delta
    available, fall back to full matching".
    """
    if parent.copy_counts() or child.copy_counts():
        return None
    if parent.x != child.x or parent.y != child.y:
        return None
    parent_edges = set(parent.edges())
    child_edges = set(child.edges())
    if not parent_edges <= child_edges:
        return None
    extra = child_edges - parent_edges
    if len(extra) != 1:
        return None
    edge = next(iter(extra))
    parent_nodes = set(parent.nodes())
    child_nodes = set(child.nodes())
    if not parent_nodes <= child_nodes:
        return None  # the child dropped a (necessarily isolated) parent node
    for node in parent_nodes:
        if parent.label(node) != child.label(node):
            return None
    fresh = child_nodes - parent_nodes
    if not fresh:
        if edge.source not in parent_nodes or edge.target not in parent_nodes:
            return None
        return DeltaEdge(edge.source, edge.target, edge.label)
    if len(fresh) != 1:
        return None
    new_node = next(iter(fresh))
    if new_node not in (edge.source, edge.target):
        return None  # a floating node the new edge does not touch
    other = edge.target if new_node == edge.source else edge.source
    if other not in parent_nodes:
        return None
    return DeltaEdge(
        edge.source, edge.target, edge.label,
        new_node=new_node, new_label=child.label(new_node),
    )


class _EmbeddingStream:
    """Lazily pulled embeddings of one pattern at one centre.

    ``pulled`` is append-only, so any number of children can iterate it
    concurrently while sharing the suspended producer.  A stream ends in one
    of two states: *complete* (the producer exhausted — ``pulled`` is the
    full embedding set) or *truncated* (the cap was hit, or an upstream
    parent stream truncated — completeness unknown, consumers must fall
    back to a full search).
    """

    __slots__ = ("pulled", "cap", "_producer", "truncated")

    def __init__(self, producer: Iterator[tuple], cap: int) -> None:
        self.pulled: list[tuple] = []
        self.cap = cap
        self._producer: Iterator[tuple] | None = producer
        self.truncated = False

    @property
    def exhausted(self) -> bool:
        """Whether pulling more embeddings is impossible (either state)."""
        return self._producer is None

    @property
    def complete(self) -> bool:
        """Whether ``pulled`` provably holds *every* embedding."""
        return self._producer is None and not self.truncated

    def ensure(self, count: int) -> bool:
        """Pull until at least *count* embeddings are available.

        Returns ``False`` when the stream ends first; check
        :attr:`truncated` to tell "provably no more" from "unknown".
        """
        while len(self.pulled) < count:
            producer = self._producer
            if producer is None:
                return False
            if len(self.pulled) >= self.cap:
                self.truncated = True
                self._producer = None
                return False
            item = next(producer, None)
            if item is None:
                self._producer = None
                return False
            if item is _TRUNCATED:
                self.truncated = True
                self._producer = None
                return False
            self.pulled.append(item)
        return True


def _repairable_radius(pattern: Pattern) -> int | None:
    """``r(pattern, x)`` when anchored matching is ball-local, else ``None``.

    A disconnected pattern's "free" nodes are matched against the whole
    graph's label index, so its match set is not a function of any bounded
    ball around the centre — such an entry cannot be repaired after an
    update and must be dropped instead.
    """
    try:
        return pattern_radius(pattern, pattern.x)
    except PatternError:
        return None


class MatchEntry:
    """Materialized matches of one pattern on one graph.

    ``matches`` is the (eagerly decided) match set; ``streams`` maps each
    matched centre to its :class:`_EmbeddingStream`.  ``version`` pins the
    ``Graph.version`` the entry was built against.  ``repair_radius`` bounds
    the data region the entry's embeddings (and their suspended producers,
    through every ancestor stream they may still pull from) can inspect:
    :meth:`MatchStore.repair` keeps a centre's state across an update iff no
    touched node lies within that radius of it.  ``None`` marks an entry
    :meth:`~MatchStore.repair` must drop rather than patch.
    """

    __slots__ = (
        "pattern", "node_order", "matches", "streams", "version",
        "canonical_witness", "repair_radius",
    )

    def __init__(
        self,
        pattern: Pattern,
        node_order: tuple,
        matches: frozenset,
        streams: Mapping[NodeId, _EmbeddingStream],
        version: int,
        canonical_witness: bool,
        repair_radius: int | None = None,
    ) -> None:
        self.pattern = pattern
        self.node_order = node_order
        self.matches = matches
        self.streams = streams
        self.version = version
        self.canonical_witness = canonical_witness
        self.repair_radius = repair_radius

    def witness_for(self, center: NodeId) -> dict | None:
        """The matcher's own first-found mapping at *center*, or ``None``.

        Only canonical entries (materialized by full DFS search) can
        answer; delta-derived embeddings are valid matches but not the
        mapping ``find_match_at`` would produce.
        """
        if not self.canonical_witness:
            return None
        stream = self.streams.get(center)
        if stream is None or not stream.pulled:
            return None
        return dict(zip(self.node_order, stream.pulled[0]))


@dataclass
class StoreStatistics(StatisticsBase):
    """Probe counters of one :class:`MatchStore` (used by tests and docs).

    Snapshot/merge via :class:`repro.obs.stats.StatisticsBase`; collected as
    ``repro_store_*_total`` when ``REPRO_OBS`` is on.
    """

    _metric_kind = "store"

    hits: int = 0
    misses: int = 0
    stale_entries: int = 0
    delta_extensions: int = 0
    fallback_probes: int = 0
    repaired_entries: int = 0
    dropped_on_repair: int = 0
    repair_rechecks: int = 0
    repair_survivors: int = 0


class MatchStore:
    """Per-graph registry of :class:`MatchEntry`, keyed by canonical code.

    The store is *fragment-resident*: it lives next to the fragment graph
    inside a worker (built lazily, never pickled) and is invalidated by the
    graph's mutation counter — a probe against a mutated graph drops the
    stale entry and reports a miss, so a stale read is impossible.
    """

    def __init__(self, graph: Graph, cap: int = DEFAULT_EMBEDDING_CAP) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.graph = graph
        self.cap = cap
        self.statistics = StoreStatistics()
        self._entries: dict[str, MatchEntry] = {}
        self._codes: dict[Pattern, str] = {}
        self._owners: dict[str, set[str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def code_for(self, pattern: Pattern) -> str:
        """Canonical code of *pattern*, memoised per store."""
        code = self._codes.get(pattern)
        if code is None:
            code = self._codes[pattern] = canonical_code(pattern)
        return code

    def get(self, pattern: Pattern) -> MatchEntry | None:
        """The current entry for *pattern*, or ``None`` on any mismatch.

        Misses on: unknown code, an automorphic sibling materialized under
        different node names (its embeddings would not align with the
        caller's delta edge), or a stale graph version (the entry is
        evicted).
        """
        code = self.code_for(pattern)
        entry = self._entries.get(code)
        if entry is None:
            self.statistics.misses += 1
            return None
        if entry.version != self.graph.version:
            self.statistics.stale_entries += 1
            self.statistics.misses += 1
            del self._entries[code]
            return None
        if entry.pattern != pattern:
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return entry

    def put(self, entry: MatchEntry) -> str:
        """Register *entry*; returns its code key."""
        code = self.code_for(entry.pattern)
        self._entries[code] = entry
        return code

    def repair(self, matcher) -> int:
        """Repair stale entries in place after graph updates; returns #kept.

        Instead of discarding the store wholesale when the graph mutates,
        each stale entry is patched against the graph's recorded delta log
        (:meth:`repro.graph.graph.Graph.deltas_since`):

        * centres with **no** touched node within the entry's
          ``repair_radius`` (measured on the post-update graph — exact, see
          ``docs/streaming.md``) keep their matches *and* their lazily
          suspended embedding streams untouched;
        * centres inside an affected ball are re-decided by one full
          anchored search each (only those), receiving fresh streams;
        * removed centres drop out.

        An entry is dropped — the pre-repair behaviour for the whole store —
        only when it is unrepairable: the delta log no longer reaches back to
        its version, its pattern is not ball-local (``repair_radius`` is
        ``None``), or *matcher* cannot enumerate embeddings.

        After ``repair``, every surviving entry is exactly what
        :meth:`DeltaMatcher.materialize`-then-mutate-then-rematerialize would
        have produced, so consumers need no staleness handling of their own.
        """
        graph = self.graph
        if graph.in_batch:
            raise GraphError(
                f"cannot repair the match store of graph {graph.name!r} while "
                "a batch_update is open: the graph is in a half-applied state"
            )
        stats = self.statistics
        current = graph.version
        iter_method = getattr(type(matcher), "iter_matches_at", None)
        can_enumerate = iter_method is not None and iter_method is not Matcher.iter_matches_at
        kept = 0
        for code, entry in list(self._entries.items()):
            if entry.version == current:
                kept += 1
                continue
            deltas = graph.deltas_since(entry.version)
            if deltas is None or entry.repair_radius is None or not can_enumerate:
                del self._entries[code]
                stats.stale_entries += 1
                stats.dropped_on_repair += 1
                continue
            touched: set = set()
            for delta in deltas:
                touched.update(delta.touched)
            if touched:
                self._repair_entry(entry, touched, matcher)
            entry.version = current
            stats.repaired_entries += 1
            kept += 1
        return kept

    def _repair_entry(self, entry: MatchEntry, touched: set, matcher) -> None:
        """Patch one entry: keep unaffected centres, re-decide affected ones."""
        from repro.graph.neighborhood import multi_source_ball

        graph = self.graph
        stats = self.statistics
        affected = multi_source_ball(graph, touched, entry.repair_radius)
        labels = graph._labels
        matches = set()
        streams: dict[NodeId, _EmbeddingStream] = {}
        for center in entry.matches:
            if center in labels and center not in affected:
                matches.add(center)
                stream = entry.streams.get(center)
                if stream is not None:
                    streams[center] = stream
        stats.repair_survivors += len(matches)
        # Only affected centres carrying the centre's search condition can
        # have gained or lost matches; each costs one anchored search.
        x_label = entry.pattern.label(entry.pattern.x)
        node_order = entry.node_order
        for center in affected & graph._nodes_by_label.get(x_label, set()):
            stats.repair_rechecks += 1
            producer = (
                tuple(mapping[node] for node in node_order)
                for mapping in matcher.iter_matches_at(graph, entry.pattern, center)
            )
            stream = _EmbeddingStream(producer, self.cap)
            if stream.ensure(1):
                matches.add(center)
                streams[center] = stream
        entry.matches = frozenset(matches)
        entry.streams = streams

    def acquire(self, pattern: "Pattern | str", owner: str) -> str:
        """Pin *pattern*'s entry (by pattern or code) on behalf of *owner*.

        Owned codes survive :meth:`retain` even when the caller's keep-set
        omits them, so one consumer's round pruning cannot evict an entry a
        concurrent tenant still reads.  Returns the code key.
        """
        code = pattern if isinstance(pattern, str) else self.code_for(pattern)
        self._owners.setdefault(code, set()).add(owner)
        return code

    def release(self, owner: str) -> int:
        """Drop *owner*'s pins; evicts entries that became unowned.

        Only entries that were owner-managed (pinned at least once) are
        evicted on their last release — anonymous entries keep the
        historical retain/clear lifecycle.  Returns the number of entries
        evicted.
        """
        dropped = 0
        for code in [c for c, owners in self._owners.items() if owner in owners]:
            owners = self._owners[code]
            owners.discard(owner)
            if not owners:
                del self._owners[code]
                if self._entries.pop(code, None) is not None:
                    dropped += 1
        return dropped

    def owners_of(self, pattern: "Pattern | str") -> frozenset[str]:
        """Current owners pinning *pattern*'s code (empty when anonymous)."""
        code = pattern if isinstance(pattern, str) else self.code_for(pattern)
        return frozenset(self._owners.get(code, ()))

    def retain(self, codes: Iterable[str]) -> int:
        """Drop every unowned entry whose code is not in *codes*; returns #dropped.

        DMine calls this after each evaluate round with the codes
        materialized *in* that round: the only parents the next level can
        ever need are this level's children, so coordinator-side beam
        pruning translates into bounded worker-side memory.  Codes pinned
        via :meth:`acquire` are exempt: they belong to live tenants, not to
        the pruning caller.
        """
        keep = set(codes)
        stale = [
            code
            for code in self._entries
            if code not in keep and not self._owners.get(code)
        ]
        for code in stale:
            del self._entries[code]
        return len(stale)

    def clear(self) -> None:
        """Drop all entries (e.g. between unrelated runs on a shared graph)."""
        self._entries.clear()
        self._owners.clear()


class DeltaMatcher:
    """Delta-extends materialized matches; falls back to *matcher* when it can't.

    Parameters
    ----------
    graph:
        The (fragment) data graph.
    matcher:
        The anchored matcher used for full materialization and for every
        fallback probe.  Any object with ``match_set``/``exists_match_at``
        works; embedding materialization additionally needs
        ``iter_matches_at`` (the exact matchers have it, dual simulation
        does not — simulation patterns always take the fallback).
    store:
        The fragment's :class:`MatchStore`.
    probe_depth:
        See :data:`DEFAULT_PROBE_DEPTH`.
    """

    def __init__(
        self,
        graph: Graph,
        matcher,
        store: MatchStore,
        probe_depth: int = DEFAULT_PROBE_DEPTH,
    ) -> None:
        if probe_depth < 1:
            raise ValueError(f"probe_depth must be >= 1, got {probe_depth}")
        self.graph = graph
        self.matcher = matcher
        self.store = store
        self.probe_depth = min(probe_depth, store.cap)
        index_of = getattr(matcher, "_index", None)
        self._index = index_of(graph) if callable(index_of) else None

    # ------------------------------------------------------------------
    def supports(self, pattern: Pattern) -> bool:
        """Whether embeddings of *pattern* can be materialized at all.

        The matcher must genuinely *enumerate* matches: the base
        :class:`~repro.matching.base.Matcher` ships a default
        ``iter_matches_at`` that yields at most one mapping, which would
        make an exhausted stream look complete after its first embedding —
        only matchers overriding it (VF2, guided) qualify; everything else
        (dual simulation, locality wrappers) takes the exact fallback.
        """
        if pattern.copy_counts():
            return False
        method = getattr(type(self.matcher), "iter_matches_at", None)
        return method is not None and method is not Matcher.iter_matches_at

    def materialize(
        self,
        pattern: Pattern,
        candidates: Iterable[NodeId],
        want_entry: bool = True,
    ) -> tuple[set, MatchEntry | None]:
        """Full-match *pattern* over *candidates*; optionally store streams.

        The returned match set is byte-identical to
        ``matcher.match_set(graph, pattern, candidates)`` and costs the
        same: deciding a centre pulls exactly one embedding (the matcher's
        find-first probe).  With *want_entry* (and a supported pattern) each
        matched centre keeps its suspended enumeration for later delta
        extension.
        """
        if not want_entry or not self.supports(pattern):
            matches = self.matcher.match_set(self.graph, pattern, candidates=candidates)
            return matches, None
        node_order = tuple(sorted(pattern.nodes(), key=str))
        cap = self.store.cap
        matches: set[NodeId] = set()
        streams: dict[NodeId, _EmbeddingStream] = {}
        for candidate in candidates:
            producer = (
                tuple(mapping[node] for node in node_order)
                for mapping in self.matcher.iter_matches_at(self.graph, pattern, candidate)
            )
            stream = _EmbeddingStream(producer, cap)
            if stream.ensure(1):
                matches.add(candidate)
                streams[candidate] = stream
        entry = MatchEntry(
            pattern=pattern,
            node_order=node_order,
            matches=frozenset(matches),
            streams=streams,
            version=self.graph.version,
            canonical_witness=True,
            repair_radius=_repairable_radius(pattern),
        )
        self.store.put(entry)
        return matches, entry

    # ------------------------------------------------------------------
    def extend(
        self,
        parent: MatchEntry,
        child: Pattern,
        delta: DeltaEdge,
        candidates: Iterable[NodeId],
        want_entry: bool = True,
    ) -> tuple[set, MatchEntry | None]:
        """Matches of *child* over *candidates* via one-edge delta extension.

        Equals ``matcher.match_set(graph, child, candidates)`` exactly: only
        centres in both *candidates* and the parent's match set can match
        (anti-monotonicity); each is decided by probing the delta edge
        against the parent's first few embeddings — an exact answer when the
        parent has that few (the common case) — with one full anchored
        search whenever the probe budget runs out undecided.
        """
        graph = self.graph
        stats = self.store.statistics
        pool = set(candidates)
        pool &= parent.matches
        cap = self.store.cap
        positions = {node: i for i, node in enumerate(parent.node_order)}
        node_order = parent.node_order
        if not delta.closing:
            node_order = node_order + (delta.new_node,)
        matches: set[NodeId] = set()
        streams: dict[NodeId, _EmbeddingStream] = {}
        keep_streams = want_entry and self.supports(child)
        for center in pool:
            parent_stream = parent.streams.get(center)
            if parent_stream is None:
                # A fallback-decided ancestor left no embeddings here.
                stats.fallback_probes += 1
                if self.matcher.exists_match_at(graph, child, center):
                    matches.add(center)
                continue
            stats.delta_extensions += 1
            found: bool | None = None  # None = undecided
            for position in range(self.probe_depth):
                if not parent_stream.ensure(position + 1):
                    if not parent_stream.truncated:
                        found = False  # enumeration complete: nothing extends
                    break
                extended = self._extensions(
                    parent_stream.pulled[position], positions, delta
                )
                if any(True for _ in extended):
                    found = True
                    break
            decided_by_probe = found is not None
            if found is None:
                # Deeper parent embeddings might still extend: one full
                # anchored search settles it at from-scratch cost.
                stats.fallback_probes += 1
                found = self.matcher.exists_match_at(graph, child, center)
            if found:
                matches.add(center)
                if keep_streams and decided_by_probe:
                    # Lazy stream over *all* parent embeddings; fallback-
                    # decided centres keep none, so their descendants fall
                    # back too rather than trusting a partial view.
                    streams[center] = _EmbeddingStream(
                        self._producer(parent_stream, positions, delta), cap
                    )
        entry = None
        if keep_streams:
            # A child stream pulls parent embeddings lazily, so repairing the
            # child must protect the whole ancestor chain's data region.
            child_radius = _repairable_radius(child)
            repair_radius = (
                None
                if child_radius is None or parent.repair_radius is None
                else max(child_radius, parent.repair_radius)
            )
            entry = MatchEntry(
                pattern=child,
                node_order=node_order,
                matches=frozenset(matches),
                streams=streams,
                version=graph.version,
                canonical_witness=False,
                repair_radius=repair_radius,
            )
            self.store.put(entry)
        return matches, entry

    def _producer(
        self, parent_stream: _EmbeddingStream, positions: dict, delta: DeltaEdge
    ) -> Iterator[tuple]:
        """Child embeddings at one centre, drawn lazily through the delta edge."""
        position = 0
        while True:
            if not parent_stream.ensure(position + 1):
                if parent_stream.truncated:
                    yield _TRUNCATED
                return
            yield from self._extensions(parent_stream.pulled[position], positions, delta)
            position += 1

    def _extensions(self, embedding: tuple, positions: dict, delta: DeltaEdge):
        """Yield the child embeddings extending one parent *embedding*."""
        graph = self.graph
        index = self._index
        if delta.closing:
            source = embedding[positions[delta.source]]
            target = embedding[positions[delta.target]]
            if index is not None:
                present = target in index.out_neighbors(source, delta.label)
            else:
                present = graph.has_edge(source, target, delta.label)
            if present:
                yield embedding
            return
        if delta.new_node == delta.target:
            anchor = embedding[positions[delta.source]]
            neighbors = (
                index.out_neighbors(anchor, delta.label)
                if index is not None
                else graph.out_neighbors(anchor, delta.label)
            )
        else:
            anchor = embedding[positions[delta.target]]
            neighbors = (
                index.in_neighbors(anchor, delta.label)
                if index is not None
                else graph.in_neighbors(anchor, delta.label)
            )
        used = set(embedding)
        label_of = index.node_label if index is not None else graph.node_label
        for neighbor in neighbors:
            if neighbor in used:
                continue  # embeddings are injective
            if label_of(neighbor) != delta.new_label:
                continue
            yield embedding + (neighbor,)
