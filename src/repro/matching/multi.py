"""Multi-pattern matching for a set Σ of GPARs.

When EIP is posed with many rules over the same predicate, much of the
per-candidate work is shared: the labelled adjacency profile of a candidate
``vx`` is computed once and checked against every rule's required profile
(a necessary condition), and only the surviving (rule, candidate) pairs run
the expensive anchored isomorphism search.  This mirrors the paper's use of
common sub-pattern extraction [32] in ``Match``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.graph.graph import Graph
from repro.graph.index import graph_index
from repro.matching.base import Matcher, MatchStatistics
from repro.matching.candidates import adjacency_profile, profile_satisfies, required_profile
from repro.pattern.gpar import GPAR

NodeId = Hashable


class MultiPatternMatcher:
    """Evaluate ``PR(x, G)`` for every rule of a workload while sharing work.

    Parameters
    ----------
    matcher:
        The anchored matcher used for the exact checks (typically a
        :class:`repro.matching.GuidedMatcher`, possibly wrapped in a
        :class:`repro.matching.LocalityMatcher`).
    use_profile_filter:
        Enable the shared adjacency-profile necessary condition.
    use_index:
        Serve candidate pools and adjacency profiles from the data graph's
        resident :class:`repro.graph.index.FragmentIndex`.
    """

    def __init__(
        self, matcher: Matcher, use_profile_filter: bool = True, use_index: bool = True
    ) -> None:
        self.matcher = matcher
        self.use_profile_filter = use_profile_filter
        self.use_index = use_index
        self.statistics = MatchStatistics()

    def match_sets(
        self,
        graph: Graph,
        rules: Sequence[GPAR],
        candidates: Iterable[NodeId] | None = None,
    ) -> dict[GPAR, set[NodeId]]:
        """Return ``{rule: PR(x, G)}`` for every rule in *rules*.

        *candidates* restricts the data nodes probed (e.g. the candidate
        centre nodes of a fragment); by default all nodes carrying the rule's
        x-label are probed.
        """
        results: dict[GPAR, set[NodeId]] = {rule: set() for rule in rules}
        if not rules:
            return results

        # Group candidate pools by x-label so the label index is hit once.
        by_x_label: dict[str, list[GPAR]] = {}
        for rule in rules:
            by_x_label.setdefault(rule.x_label, []).append(rule)

        # Pre-compute the required adjacency profile of x for every rule.
        needed_profiles = {
            rule: required_profile(rule.pr_pattern().expanded(), rule.x) for rule in rules
        }

        index = graph_index(graph) if self.use_index else None
        candidate_list = None if candidates is None else list(candidates)
        for x_label, label_rules in by_x_label.items():
            if candidate_list is None:
                if index is not None:
                    pool: Iterable[NodeId] = index.nodes_with_label(x_label)
                else:
                    pool = graph.nodes_with_label(x_label)
            else:
                pool = [
                    node
                    for node in candidate_list
                    if graph.has_node(node) and graph.node_label(node) == x_label
                ]
            for candidate in pool:
                profile = (
                    adjacency_profile(graph, candidate, index)
                    if self.use_profile_filter
                    else None
                )
                for rule in label_rules:
                    self.statistics.candidates_considered += 1
                    if profile is not None and not profile_satisfies(
                        profile, needed_profiles[rule]
                    ):
                        self.statistics.profile_prunes += 1
                        continue
                    if self.matcher.exists_match_at(graph, rule.pr_pattern(), candidate):
                        results[rule].add(candidate)
        self.statistics.merge(self.matcher.statistics)
        self.matcher.reset_statistics()
        return results

    def antecedent_match_sets(
        self,
        graph: Graph,
        rules: Sequence[GPAR],
        candidates: Iterable[NodeId] | None = None,
    ) -> dict[GPAR, set[NodeId]]:
        """Return ``{rule: Q(x, G)}`` (antecedent-only match sets)."""
        results: dict[GPAR, set[NodeId]] = {}
        for rule in rules:
            pool = candidates
            results[rule] = self.matcher.match_set(graph, rule.antecedent, candidates=pool)
        self.statistics.merge(self.matcher.statistics)
        self.matcher.reset_statistics()
        return results
