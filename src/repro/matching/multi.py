"""Multi-pattern matching for a set Σ of GPARs.

When EIP is posed with many rules over the same predicate, much of the
per-candidate work is shared: the labelled adjacency profile of a candidate
``vx`` is computed once and checked against every rule's required profile
(a necessary condition), and only the surviving (rule, candidate) pairs run
the expensive anchored isomorphism search.  This mirrors the paper's use of
common sub-pattern extraction [32] in ``Match``.

The *prefix-trie* mode (``use_prefix_trie``) shares the matching work
itself, not just the filter: each pattern's edges are ordered into a
deterministic connectivity-respecting chain from ``x``, and the match set
of every chain prefix shared by two or more patterns is computed once and
reused as the candidate pool of everything below it in the trie.  Because a
full match restricted to a prefix's nodes is a prefix match, pool
restriction by prefix match sets is lossless — the per-pattern results are
identical to rule-at-a-time evaluation.  EIP rule sets share their
consequent (and, having been grown levelwise from common seeds, usually
long antecedent prefixes), which is exactly the shape the trie rewards.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Mapping, Sequence

from repro.graph.columnar import columnar_view
from repro.graph.graph import Graph
from repro.graph.index import graph_index
from repro.matching.base import Matcher, MatchStatistics
from repro.matching.candidates import adjacency_profile, profile_satisfies, required_profile
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern, PatternEdge

NodeId = Hashable

# Process-wide memo of prefix chains; patterns are immutable and EIP
# workloads re-evaluate the same Σ once per fragment.  Bounded so a
# long-lived process (persistent pool worker, embedding service) cannot
# accumulate chains across unrelated rule sets forever — unlike MatchStore
# (round retention) and FragmentIndex (weakref registry) this cache has no
# natural lifetime, so it is simply cleared when full.
_CHAIN_CACHE: dict[Pattern, tuple] = {}
_CHAIN_CACHE_LIMIT = 4096


class MultiPatternMatcher:
    """Evaluate ``PR(x, G)`` for every rule of a workload while sharing work.

    Parameters
    ----------
    matcher:
        The anchored matcher used for the exact checks (typically a
        :class:`repro.matching.GuidedMatcher`, possibly wrapped in a
        :class:`repro.matching.LocalityMatcher`).
    use_profile_filter:
        Enable the shared adjacency-profile necessary condition.
    use_index:
        Serve candidate pools and adjacency profiles from the data graph's
        resident :class:`repro.graph.index.FragmentIndex`.
    use_prefix_trie:
        Share antecedent-prefix match sets across the workload (see the
        module docstring); identical results either way.
    use_columnar:
        Run the shared profile filter against the data graph's resident
        :class:`repro.graph.columnar.ColumnarFragment` — one interned-id
        pool mask per rule instead of a python profile comparison per
        ``(candidate, rule)`` pair.  The filter remains a necessary
        condition, so the match sets are identical.
    """

    def __init__(
        self,
        matcher: Matcher,
        use_profile_filter: bool = True,
        use_index: bool = True,
        use_prefix_trie: bool = False,
        use_columnar: bool = True,
    ) -> None:
        self.matcher = matcher
        self.use_profile_filter = use_profile_filter
        self.use_index = use_index
        self.use_prefix_trie = use_prefix_trie
        self.use_columnar = use_columnar
        self.statistics = MatchStatistics()

    def _columnar(self, graph: Graph):
        if not (self.use_columnar and self.use_profile_filter) or graph.in_batch:
            return None
        return columnar_view(graph)

    # ------------------------------------------------------------------
    # prefix-trie mode
    # ------------------------------------------------------------------
    @staticmethod
    def _prefix_chain(pattern: Pattern) -> tuple[Pattern, ...]:
        """Cumulative connected-from-x sub-patterns of *pattern*, memoised.

        Edges are consumed smallest-``sort_key``-first among those incident
        to the already-covered node set, which makes the chain deterministic
        and maximises sharing between patterns grown from common prefixes.
        The chain stops at the connected-from-x frontier: components only
        reachable through uncovered nodes (a "free" y) are left to the final
        full-pattern match, where the matcher's label-index fallback already
        handles them.  Chains depend only on the (immutable) pattern, so
        they are memoised process-wide.
        """
        cached = _CHAIN_CACHE.get(pattern)
        if cached is not None:
            return cached
        expanded = pattern.expanded()
        covered = {expanded.x}
        remaining = set(expanded.edges())
        chosen: list[PatternEdge] = []
        chain: list[Pattern] = []
        while remaining:
            incident = [
                edge
                for edge in remaining
                if edge.source in covered or edge.target in covered
            ]
            if not incident:
                break
            edge = min(incident, key=PatternEdge.sort_key)
            remaining.remove(edge)
            chosen.append(edge)
            covered.add(edge.source)
            covered.add(edge.target)
            chain.append(
                Pattern(
                    nodes={node: expanded.label(node) for node in covered},
                    edges=list(chosen),
                    x=expanded.x,
                    y=expanded.y if expanded.y in covered else None,
                )
            )
        result = tuple(chain)
        if len(_CHAIN_CACHE) >= _CHAIN_CACHE_LIMIT:
            _CHAIN_CACHE.clear()
        _CHAIN_CACHE[pattern] = result
        return result

    def shared_match_sets(
        self,
        graph: Graph,
        patterns: Mapping[Hashable, Pattern],
        candidates: Iterable[NodeId] | None = None,
    ) -> dict[Hashable, set[NodeId]]:
        """``{key: Q(x, G)}`` for many patterns over one candidate pool.

        Every chain prefix occurring in at least two patterns' chains is
        matched once against the pool and its match set re-used as the pool
        of everything below it; unshared suffixes jump straight to the full
        pattern, guarded by the same adjacency-profile necessary condition
        the rule-at-a-time path applies.  Results equal per-pattern
        ``matcher.match_set`` calls.
        """
        chains = {key: self._prefix_chain(pattern) for key, pattern in patterns.items()}
        shared: Counter = Counter()
        for chain in chains.values():
            for prefix in chain[:-1]:
                shared[prefix] += 1
        pool_cache: dict[Pattern, frozenset] = {}
        index = graph_index(graph) if self.use_index else None
        base = None if candidates is None else list(candidates)
        results: dict[Hashable, set[NodeId]] = {}
        for key, pattern in patterns.items():
            pool: Iterable[NodeId] | None = base
            for prefix in chains[key][:-1]:
                if shared[prefix] < 2:
                    continue
                cached = pool_cache.get(prefix)
                if cached is None:
                    cached = frozenset(
                        self.matcher.match_set(graph, prefix, candidates=pool)
                    )
                    pool_cache[prefix] = cached
                pool = cached
                self.statistics.prefix_pool_hits += 1
            if self.use_profile_filter and pool is not None:
                expanded = pattern.expanded()
                columnar = self._columnar(graph)
                if columnar is not None:
                    requirement = columnar.compile_requirement(expanded, expanded.x)
                    pool = columnar.filter_candidates(pool, requirement)
                else:
                    needed = required_profile(expanded, expanded.x)
                    pool = [
                        node
                        for node in pool
                        if graph.has_node(node)
                        and profile_satisfies(
                            adjacency_profile(graph, node, index), needed
                        )
                    ]
            results[key] = self.matcher.match_set(graph, pattern, candidates=pool)
        self.statistics.merge(self.matcher.statistics)
        self.matcher.reset_statistics()
        return results

    # ------------------------------------------------------------------
    def match_sets(
        self,
        graph: Graph,
        rules: Sequence[GPAR],
        candidates: Iterable[NodeId] | None = None,
    ) -> dict[GPAR, set[NodeId]]:
        """Return ``{rule: PR(x, G)}`` for every rule in *rules*.

        *candidates* restricts the data nodes probed (e.g. the candidate
        centre nodes of a fragment); by default all nodes carrying the rule's
        x-label are probed.
        """
        results: dict[GPAR, set[NodeId]] = {rule: set() for rule in rules}
        if not rules:
            return results
        if self.use_prefix_trie:
            return self.shared_match_sets(
                graph,
                {rule: rule.pr_pattern() for rule in rules},
                candidates=candidates,
            )

        # Group candidate pools by x-label so the label index is hit once.
        by_x_label: dict[str, list[GPAR]] = {}
        for rule in rules:
            by_x_label.setdefault(rule.x_label, []).append(rule)

        # Pre-compute the required adjacency profile of x for every rule.
        needed_profiles = {
            rule: required_profile(rule.pr_pattern().expanded(), rule.x) for rule in rules
        }

        index = graph_index(graph) if self.use_index else None
        columnar = self._columnar(graph)
        candidate_list = None if candidates is None else list(candidates)
        for x_label, label_rules in by_x_label.items():
            if candidate_list is None:
                if index is not None:
                    pool: Iterable[NodeId] = index.nodes_with_label(x_label)
                else:
                    pool = graph.nodes_with_label(x_label)
            else:
                pool = [
                    node
                    for node in candidate_list
                    if graph.has_node(node) and graph.node_label(node) == x_label
                ]
            if columnar is not None:
                # One interned-id mask per rule over the whole pool instead of
                # a python profile comparison per (candidate, rule) pair.  The
                # statistics keep the pairwise accounting of the dict path.
                pool = list(pool)
                for rule in label_rules:
                    expanded = rule.pr_pattern().expanded()
                    requirement = columnar.compile_requirement(expanded, expanded.x)
                    survivors = columnar.filter_candidates(pool, requirement)
                    self.statistics.candidates_considered += len(pool)
                    self.statistics.profile_prunes += len(pool) - len(survivors)
                    for candidate in survivors:
                        if self.matcher.exists_match_at(
                            graph, rule.pr_pattern(), candidate
                        ):
                            results[rule].add(candidate)
                continue
            for candidate in pool:
                profile = (
                    adjacency_profile(graph, candidate, index)
                    if self.use_profile_filter
                    else None
                )
                for rule in label_rules:
                    self.statistics.candidates_considered += 1
                    if profile is not None and not profile_satisfies(
                        profile, needed_profiles[rule]
                    ):
                        self.statistics.profile_prunes += 1
                        continue
                    if self.matcher.exists_match_at(graph, rule.pr_pattern(), candidate):
                        results[rule].add(candidate)
        self.statistics.merge(self.matcher.statistics)
        self.matcher.reset_statistics()
        return results

    def antecedent_match_sets(
        self,
        graph: Graph,
        rules: Sequence[GPAR],
        candidates: Iterable[NodeId] | None = None,
    ) -> dict[GPAR, set[NodeId]]:
        """Return ``{rule: Q(x, G)}`` (antecedent-only match sets)."""
        if self.use_prefix_trie:
            return self.shared_match_sets(
                graph,
                {rule: rule.antecedent for rule in rules},
                candidates=candidates,
            )
        results: dict[GPAR, set[NodeId]] = {}
        for rule in rules:
            pool = candidates
            results[rule] = self.matcher.match_set(graph, rule.antecedent, candidates=pool)
        self.statistics.merge(self.matcher.statistics)
        self.matcher.reset_statistics()
        return results
