"""Subgraph-isomorphism matching of patterns against data graphs.

The paper's algorithms never need the full enumeration of matches: both the
support metrics and entity identification only ask *which data nodes can play
the role of the designated node x* (``Q(x, G)``).  The matchers therefore
expose anchored, early-terminating queries in addition to full enumeration
(which is retained for the ``disVF2`` baseline and as a test oracle).

All matchers accept ``use_index`` (default on): probes for label candidate
sets, adjacency profiles, labelled neighbour sets and k-hop sketches are
then served by the data graph's resident
:class:`repro.graph.index.FragmentIndex` instead of being re-derived from
the raw graph per call — identical results, measured ≥2× faster on repeated
matching traffic (docs/indexing.md).  They also accept ``use_columnar``
(default on): anchored ``match_set`` pools are then label-bucketed and
profile-prefiltered against the graph's resident
:class:`repro.graph.columnar.ColumnarFragment` — interned label ids, CSR
adjacency and a precomputed profile matrix, vectorized when numpy is
available — and dual simulation runs over CSR ranges (docs/columnar.md).

Matchers
--------
:class:`VF2Matcher`
    Plain backtracking subgraph isomorphism with candidate filtering, in the
    spirit of VF2 [Cordella et al. 2004].
:class:`GuidedMatcher`
    The optimised search of ``Match`` (paper Section 5.2): k-hop sketch
    pruning and best-first candidate ordering, with early termination.
:class:`LocalityMatcher`
    Restricts an anchored search to the d-neighbourhood ``Gd(vx)``, the data
    locality both DMine and Match rely on.
:class:`MultiPatternMatcher`
    Shares work across a set Σ of GPARs (adjacency profiles of candidates are
    computed once per candidate and reused by every rule; the prefix-trie
    mode additionally shares antecedent-prefix match sets).
:class:`MatchStore` / :class:`DeltaMatcher`
    Incremental match materialization for levelwise mining: parent match
    sets and embeddings are kept per fragment and a one-edge child is
    matched by probing only the new edge (docs/incremental.md).
:class:`SharedPatternPool`
    Process-wide canonical-antecedent registry across tenant rule sets:
    tenants whose rules share a canonical antecedent share one verification
    stream in multi-tenant serving (docs/multitenant.md).
"""

from repro.matching.base import Matcher, MatchStatistics
from repro.matching.candidates import (
    adjacency_profile,
    columnar_filter_candidates,
    label_candidates,
    profile_satisfies,
    required_profile,
)
from repro.matching.incremental import (
    DeltaEdge,
    DeltaMatcher,
    MatchEntry,
    MatchStore,
    single_edge_delta,
)
from repro.matching.shared import (
    PoolStatistics,
    SharedPatternPool,
    TenantRegistration,
    rule_key,
)
from repro.matching.vf2 import VF2Matcher
from repro.matching.guided import GuidedMatcher
from repro.matching.locality import LocalityMatcher
from repro.matching.multi import MultiPatternMatcher
from repro.matching.simulation import (
    SimulationMatcher,
    maximum_dual_simulation,
    simulation_match_set,
)

__all__ = [
    "Matcher",
    "MatchStatistics",
    "VF2Matcher",
    "GuidedMatcher",
    "LocalityMatcher",
    "MultiPatternMatcher",
    "SimulationMatcher",
    "DeltaEdge",
    "DeltaMatcher",
    "MatchEntry",
    "MatchStore",
    "PoolStatistics",
    "SharedPatternPool",
    "TenantRegistration",
    "rule_key",
    "single_edge_delta",
    "maximum_dual_simulation",
    "simulation_match_set",
    "label_candidates",
    "adjacency_profile",
    "columnar_filter_candidates",
    "required_profile",
    "profile_satisfies",
]
