"""Candidate generation and cheap necessary-condition filters.

Every helper accepts an optional :class:`repro.graph.index.FragmentIndex`;
when one is supplied the probe is answered from the resident index (a dict
lookup) instead of being re-derived from the raw graph (an O(degree) walk).
The results are identical by construction — the index is a memoisation of
exactly these quantities.

The pool-level filter (:func:`columnar_filter_candidates`) additionally
accepts a :class:`repro.graph.columnar.ColumnarFragment`: the label check
and the profile-domination check then run in interned-id space against the
precomputed profile matrix — with numpy, as one mask over the whole pool.
Both checks are necessary conditions for an isomorphism match, so filtering
never changes a match set, only the work done to compute it.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable

from repro.graph.columnar import ColumnarFragment
from repro.graph.graph import Graph
from repro.graph.index import FragmentIndex
from repro.pattern.pattern import Pattern

NodeId = Hashable

# A profile maps (direction, edge label, neighbour label) -> count, where
# direction is "out" or "in".  It summarises the labelled adjacency of a node.
Profile = dict[tuple[str, str, str], int]


def label_candidates(
    graph: Graph,
    pattern: Pattern,
    pattern_node,
    index: FragmentIndex | None = None,
    columnar: ColumnarFragment | None = None,
) -> frozenset | set[NodeId]:
    """Data nodes whose label satisfies the search condition of *pattern_node*.

    With an *index* (or a *columnar* view) this returns a frozen label bucket
    **directly** — no per-probe copy; callers that need to mutate the result
    must copy it themselves (``set(...)``).  Without either the graph already
    hands out a fresh mutable set.
    """
    label = pattern.label(pattern_node)
    if columnar is not None:
        return columnar.nodes_with_label(label)
    if index is not None:
        return index.nodes_with_label(label)
    return graph.nodes_with_label(label)


def columnar_filter_candidates(
    columnar: ColumnarFragment,
    pattern: Pattern,
    pattern_node,
    pool: Iterable[NodeId],
) -> list[NodeId]:
    """Pool members that satisfy *pattern_node*'s label + profile requirement.

    Equivalent to keeping every ``v`` with ``graph.node_label(v) ==
    pattern.label(pattern_node)`` and ``degree_consistent(graph, v, pattern,
    pattern_node)``, evaluated against the columnar profile matrix.
    """
    requirement = columnar.compile_requirement(pattern, pattern_node)
    return columnar.filter_candidates(pool, requirement)


def required_profile(pattern: Pattern, pattern_node) -> Profile:
    """Adjacency profile a data node must dominate to match *pattern_node*.

    Computed on the copy-expanded pattern by the caller when copy counts
    matter; here the pattern is used as given.
    """
    profile: Counter = Counter()
    for edge in pattern.out_edges(pattern_node):
        profile[("out", edge.label, pattern.label(edge.target))] += 1
    for edge in pattern.in_edges(pattern_node):
        profile[("in", edge.label, pattern.label(edge.source))] += 1
    return dict(profile)


def adjacency_profile(graph: Graph, node: NodeId, index: FragmentIndex | None = None) -> Profile:
    """Labelled adjacency profile of a data node.

    This is the quantity :class:`repro.matching.MultiPatternMatcher` caches
    per candidate so that every rule in Σ reuses it.  With an *index* the
    precomputed profile is returned directly (treat it as read-only).
    """
    if index is not None:
        return index.profile(node)
    profile: Counter = Counter()
    for edge in graph.out_edges(node):
        profile[("out", edge.label, graph.node_label(edge.target))] += 1
    for edge in graph.in_edges(node):
        profile[("in", edge.label, graph.node_label(edge.source))] += 1
    return dict(profile)


def profile_satisfies(candidate_profile: Profile, needed: Profile) -> bool:
    """Whether a candidate's profile dominates the required profile."""
    for key, count in needed.items():
        if candidate_profile.get(key, 0) < count:
            return False
    return True


def degree_consistent(
    graph: Graph,
    data_node: NodeId,
    pattern: Pattern,
    pattern_node,
    index: FragmentIndex | None = None,
) -> bool:
    """Cheap degree-based necessary condition for ``data_node`` to match.

    For every (direction, edge label, neighbour label) the pattern requires,
    the data node must have at least as many such neighbours.
    """
    return profile_satisfies(
        adjacency_profile(graph, data_node, index), required_profile(pattern, pattern_node)
    )
