"""Data-locality matching inside ``Gd(vx)`` (paper Sections 4.2 and 5.1).

For any pattern of radius ``d`` at x, a node ``vx`` matches x in G iff it
matches x in the d-neighbourhood ``Gd(vx)``.  Restricting the search space to
the (typically small) ball is what makes per-candidate work independent of
``|G|`` and is the basis of the parallel-scalability argument.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.graph import Graph
from repro.graph.neighborhood import d_neighborhood
from repro.matching.base import Matcher
from repro.pattern.pattern import Pattern
from repro.pattern.radius import pattern_radius

NodeId = Hashable


class LocalityMatcher(Matcher):
    """Wrap another matcher so anchored queries run inside ``Gd(vx)``.

    Parameters
    ----------
    inner:
        The matcher performing the actual search (VF2 or guided).
    radius:
        Ball radius ``d``; when ``None`` the radius of the pattern at x is
        used per query (the tight, always-correct choice).
    cache_balls:
        Cache extracted neighbourhoods per (graph, node, radius); useful when
        the same candidate is probed by many rules (EIP with a set Σ).

    Notes
    -----
    The resident :class:`repro.graph.index.FragmentIndex` machinery is
    *fragment*-resident: extracted d-balls are transient per-candidate
    subgraphs, and eagerly indexing each one costs more than the handful of
    probes it would serve.  The inner matcher's index use is therefore
    suspended while it searches inside a ball (the label pool of anchored
    ``match_set`` queries still comes from the data graph's resident index).
    """

    def __init__(self, inner: Matcher, radius: int | None = None, cache_balls: bool = True) -> None:
        super().__init__(use_columnar=getattr(inner, "use_columnar", True))
        self.inner = inner
        self.radius = radius
        self.cache_balls = cache_balls
        # The pool prefilter of match_set must mirror the inner matcher's
        # semantics (a disVF2 inner must pay the unfiltered search).
        self._columnar_prefilter = getattr(inner, "_columnar_prefilter", True)
        # Keyed by the graph object itself (identity hash) so cached balls
        # keep their source graph alive and ids are never reused; each entry
        # is pinned to the Graph.version it was extracted at, so a graph
        # mutated between probes (repro.stream update batches) re-extracts
        # instead of serving a stale neighbourhood.
        self._ball_cache: dict[tuple[Graph, NodeId, int], tuple[int, Graph]] = {}

    def _ball(self, graph: Graph, anchor_value: NodeId, radius: int) -> Graph:
        # The BFS half of the extraction runs on the resident index's
        # memoised frozen-neighbourhood view when the index is enabled
        # (Graph.neighbors allocates a fresh set per visited node).
        index = None if graph.in_batch else self._index(graph)
        if not self.cache_balls:
            return d_neighborhood(graph, anchor_value, radius, index=index)
        key = (graph, anchor_value, radius)
        entry = self._ball_cache.get(key)
        if entry is not None and entry[0] == graph.version and not graph.in_batch:
            return entry[1]
        ball = d_neighborhood(graph, anchor_value, radius, index=index)
        if not graph.in_batch:  # never pin a half-applied batch state
            self._ball_cache[key] = (graph.version, ball)
        return ball

    def clear_caches(self) -> None:
        """Drop cached neighbourhoods."""
        self._ball_cache.clear()

    def find_match_at(self, graph: Graph, pattern: Pattern, anchor_value: NodeId) -> dict | None:
        if not graph.has_node(anchor_value):
            return None
        expanded = pattern.expanded()
        radius = self.radius if self.radius is not None else pattern_radius(expanded, expanded.x)
        ball = self._ball(graph, anchor_value, radius)
        inner_use_index = self.inner.use_index
        self.inner.use_index = False  # balls are transient; see the class docstring
        try:
            mapping = self.inner.find_match_at(ball, expanded, anchor_value)
        finally:
            self.inner.use_index = inner_use_index
        self.statistics.merge(self.inner.statistics)
        self.inner.reset_statistics()
        return mapping
