"""Cross-Σ antecedent sharing: the process-wide :class:`SharedPatternPool`.

One resident graph can serve many tenants, each with their own rule set Σ.
Their antecedents overlap heavily in practice (tenants mine from the same
graph), yet without coordination every tenant's identifier re-materializes
every antecedent match set from scratch.  The pool is the coordination
point: it canonicalizes antecedents across all registered Σ with
:func:`repro.pattern.canonical.canonical_code` — codes respect the x/y
designation, so equal codes mean identical anchored match sets — and keeps
one *representative* :class:`~repro.pattern.gpar.GPAR` per distinct
``(antecedent code, consequent label)`` key.  A streaming core then verifies
each touched centre once per distinct key, not once per tenant, and the
verdicts fan out to every tenant whose rule maps to that key
(docs/multitenant.md).

Prefix-level sharing is tracked too: the pool records every antecedent
prefix from :meth:`MultiPatternMatcher._prefix_chain`, so a tenant whose
rules share only a *prefix* with resident rules still registers
``shared_prefix_hits`` — the trie inside
:meth:`~repro.matching.multi.MultiPatternMatcher.shared_match_sets` pools
exactly those prefixes at verify time.

The pool itself is pure bookkeeping (no graph access, thread-safe); the
verification reuse happens in :class:`repro.stream.MultiTenantIdentifier`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.matching.multi import MultiPatternMatcher
from repro.pattern.canonical import canonical_code
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern

__all__ = ["PoolStatistics", "SharedPatternPool", "TenantRegistration", "rule_key"]


def rule_key(rule: GPAR) -> str:
    """Canonical cross-Σ identity of *rule*: antecedent code + consequent.

    Two rules with equal keys have byte-identical verdicts on every graph
    (the antecedent code fixes ``Q(x, G)`` up to isomorphism *including*
    the x/y designation; the consequent label fixes ``q(x, y)``), so one
    verification serves both.
    """
    return f"{canonical_code(rule.antecedent)}=>{rule.consequent_label}"


@dataclass(frozen=True)
class TenantRegistration:
    """Outcome of admitting one tenant's Σ into the pool.

    ``representatives`` maps each of the tenant's rules to the pool-wide
    representative rule its verdicts are read from; ``novel`` are the rules
    this registration introduced (they *are* their own representatives) and
    ``shared`` the rules fully served by an already-resident key.
    """

    tenant: str
    keys: dict[GPAR, str]
    representatives: dict[GPAR, GPAR]
    novel: tuple[GPAR, ...]
    shared: tuple[GPAR, ...]
    shared_prefix_hits: int


@dataclass
class PoolStatistics:
    """Counters mirrored into ``repro_tenant_*`` metrics by the admitters."""

    registrations: int = 0
    shared_rules: int = 0
    novel_rules: int = 0
    shared_prefix_hits: int = 0
    released: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "registrations": self.registrations,
            "shared_rules": self.shared_rules,
            "novel_rules": self.novel_rules,
            "shared_prefix_hits": self.shared_prefix_hits,
            "released": self.released,
        }


@dataclass
class _KeyState:
    representative: GPAR
    owners: set[str] = field(default_factory=set)


class SharedPatternPool:
    """Process-wide registry of canonical antecedents across tenant Σ.

    ``register`` admits a tenant's rules, deduplicating against every
    resident Σ; ``release`` retires a tenant and reports which
    representatives became unowned (their match state can be dropped from
    the shared core).  All methods are thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._keys: dict[str, _KeyState] = {}
        self._tenants: dict[str, dict[GPAR, str]] = {}
        self._prefix_owners: dict[Pattern, set[str]] = {}
        self.statistics = PoolStatistics()

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._tenants)

    def representative(self, key: str) -> GPAR:
        with self._lock:
            state = self._keys.get(key)
            if state is None:
                raise KeyError(key)
            return state.representative

    def register(self, tenant: str, rules: tuple[GPAR, ...] | list[GPAR]) -> TenantRegistration:
        """Admit *tenant*'s Σ; returns the sharing map for its rules."""
        if not rules:
            raise ReproError(f"tenant {tenant!r} registered an empty rule set")
        with self._lock:
            if tenant in self._tenants:
                raise ReproError(f"tenant {tenant!r} is already registered")
            keys: dict[GPAR, str] = {}
            representatives: dict[GPAR, GPAR] = {}
            novel: list[GPAR] = []
            shared: list[GPAR] = []
            prefix_hits = 0
            for rule in rules:
                key = rule_key(rule)
                state = self._keys.get(key)
                if state is None:
                    state = self._keys[key] = _KeyState(representative=rule)
                    novel.append(rule)
                elif rule not in keys:
                    shared.append(rule)
                state.owners.add(tenant)
                keys[rule] = key
                representatives[rule] = state.representative
                for prefix in MultiPatternMatcher._prefix_chain(rule.antecedent):
                    owners = self._prefix_owners.setdefault(prefix, set())
                    if owners - {tenant}:
                        prefix_hits += 1
                    owners.add(tenant)
            self._tenants[tenant] = keys
            stats = self.statistics
            stats.registrations += 1
            stats.shared_rules += len(shared)
            stats.novel_rules += len(novel)
            stats.shared_prefix_hits += prefix_hits
            return TenantRegistration(
                tenant=tenant,
                keys=keys,
                representatives=representatives,
                novel=tuple(novel),
                shared=tuple(shared),
                shared_prefix_hits=prefix_hits,
            )

    def release(self, tenant: str) -> tuple[GPAR, ...]:
        """Retire *tenant*; returns representatives that lost their last owner."""
        with self._lock:
            keys = self._tenants.pop(tenant, None)
            if keys is None:
                return ()
            retired: list[GPAR] = []
            for key in dict.fromkeys(keys.values()):
                state = self._keys.get(key)
                if state is None:
                    continue
                state.owners.discard(tenant)
                if not state.owners:
                    retired.append(state.representative)
                    del self._keys[key]
            for prefix in list(self._prefix_owners):
                owners = self._prefix_owners[prefix]
                owners.discard(tenant)
                if not owners:
                    del self._prefix_owners[prefix]
            self.statistics.released += 1
            return tuple(retired)

    def owners_of(self, rule: GPAR) -> frozenset[str]:
        """Tenants whose Σ contains a rule canonically equal to *rule*."""
        with self._lock:
            state = self._keys.get(rule_key(rule))
            return frozenset(state.owners) if state is not None else frozenset()
