"""Matcher interface and shared search machinery."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

from repro.exceptions import MatchingError
from repro.graph.columnar import ColumnarFragment, columnar_view
from repro.graph.graph import Graph
from repro.graph.index import FragmentIndex, graph_index
from repro.matching.candidates import label_candidates
from repro.obs.stats import StatisticsBase
from repro.pattern.pattern import Pattern, PatternEdge

NodeId = Hashable


@dataclass
class MatchStatistics(StatisticsBase):
    """Counters describing the work a matcher performed.

    The benchmark harness uses these to contrast e.g. ``Match`` (early
    termination) against ``disVF2`` (full enumeration) in a way that is
    independent of interpreter noise.  ``snapshot()``/``merge()`` come from
    :class:`repro.obs.stats.StatisticsBase`, as for every ``*Statistics``
    class; with collection enabled the counters feed the process-global
    registry as ``repro_match_*_total``.
    """

    _metric_kind = "match"

    candidates_considered: int = 0
    states_expanded: int = 0
    backtracks: int = 0
    matches_found: int = 0
    sketch_prunes: int = 0
    profile_prunes: int = 0
    prefix_pool_hits: int = 0


@dataclass
class _SearchPlan:
    """A connectivity-respecting elimination order for a pattern.

    ``order[0]`` is the anchor (designated node).  ``anchors[i]`` lists, for
    the i-th pattern node, the pattern edges connecting it to already-placed
    nodes, which is where candidate sets come from during the search.
    """

    order: list = field(default_factory=list)
    # For each position i >= 1: list of (edge, already_placed_is_source)
    connections: list = field(default_factory=list)


def build_search_plan(pattern: Pattern, anchor) -> _SearchPlan:
    """Compute a BFS-style matching order starting from *anchor*.

    Raises :class:`MatchingError` if the pattern is disconnected (every
    practical GPAR pattern is connected by definition).
    """
    if not pattern.has_node(anchor):
        raise MatchingError(f"anchor {anchor!r} is not a pattern node")
    order = [anchor]
    placed = {anchor}
    connections: list[list[tuple[PatternEdge, bool]]] = [[]]
    remaining = set(pattern.nodes()) - placed
    while remaining:
        best_node = None
        best_links: list[tuple[PatternEdge, bool]] = []
        for node in remaining:
            links: list[tuple[PatternEdge, bool]] = []
            for edge in pattern.out_edges(node):
                if edge.target in placed:
                    links.append((edge, False))
            for edge in pattern.in_edges(node):
                if edge.source in placed:
                    links.append((edge, True))
            if links and (best_node is None or len(links) > len(best_links)):
                best_node = node
                best_links = links
        if best_node is None:
            # Disconnected pattern (e.g. the antecedent of a GPAR whose y is
            # only tied in through the consequent edge).  Place an arbitrary
            # remaining node as a "free" node: it has no connections, so the
            # matchers fall back to the label index for its candidates.
            best_node = min(remaining, key=str)
            best_links = []
        order.append(best_node)
        connections.append(best_links)
        placed.add(best_node)
        remaining.discard(best_node)
    return _SearchPlan(order=order, connections=connections)


class Matcher(ABC):
    """Common interface of all subgraph-isomorphism matchers.

    Parameters
    ----------
    use_index:
        When ``True`` (default) anchored searches consult the resident
        :class:`repro.graph.index.FragmentIndex` of the data graph (label
        buckets, adjacency profiles, frozen adjacency views, sketch cache);
        ``False`` re-derives everything from the raw graph per probe — the
        measured-but-slower baseline of the index benchmarks.  The two modes
        return identical matches.
    use_columnar:
        When ``True`` (default) ``match_set`` prefilters its candidate pool
        against the resident :class:`repro.graph.columnar.ColumnarFragment`
        (interned-label + profile-matrix domination, vectorized with numpy).
        The filter is a necessary condition for an isomorphism match, so the
        resulting match set is identical; only the per-candidate search work
        shrinks.  Matchers whose baseline semantics forbid the profile
        filter (``disVF2``: ``use_degree_filter=False``) suspend it via
        ``_columnar_prefilter``.
    """

    #: Whether match_set may profile-prefilter the pool (see use_columnar).
    _columnar_prefilter = True

    def __init__(self, use_index: bool = True, use_columnar: bool = True) -> None:
        self.statistics = MatchStatistics()
        self.use_index = use_index
        self.use_columnar = use_columnar

    def reset_statistics(self) -> None:
        """Zero the work counters."""
        self.statistics = MatchStatistics()

    def _index(self, graph: Graph) -> FragmentIndex | None:
        """The data graph's resident index, or ``None`` when disabled."""
        if not self.use_index:
            return None
        return graph_index(graph)

    def _columnar(self, graph: Graph) -> ColumnarFragment | None:
        """The data graph's resident columnar view, or ``None`` when disabled."""
        if not self.use_columnar:
            return None
        return columnar_view(graph)

    # -- anchored queries -------------------------------------------------
    @abstractmethod
    def find_match_at(self, graph: Graph, pattern: Pattern, anchor_value: NodeId) -> dict | None:
        """Return one isomorphism mapping ``pattern.x -> anchor_value``, or None."""

    def exists_match_at(self, graph: Graph, pattern: Pattern, anchor_value: NodeId) -> bool:
        """Whether some match maps the designated node x to *anchor_value*."""
        return self.find_match_at(graph, pattern, anchor_value) is not None

    # -- match sets -------------------------------------------------------
    def match_set(
        self,
        graph: Graph,
        pattern: Pattern,
        candidates: Iterable[NodeId] | None = None,
    ) -> set[NodeId]:
        """``Q(x, G)``: data nodes that can play the designated node x.

        *candidates* restricts the nodes to test (callers typically pass the
        label-index candidates or a previously computed superset).
        """
        expanded = pattern.expanded()
        columnar = self._columnar(graph) if self._columnar_prefilter else None
        if candidates is None:
            # With a resident index this is the index's frozen bucket —
            # no per-probe copy; it is only iterated here, never mutated.
            pool: Iterable[NodeId] = label_candidates(
                graph, expanded, expanded.x, self._index(graph), columnar
            )
        else:
            pool = candidates
        if columnar is not None:
            # Interned-id label + profile-domination mask over the whole
            # pool: a necessary condition, so dropped candidates could never
            # have matched — the match set is unchanged by construction.
            requirement = columnar.compile_requirement(expanded, expanded.x)
            before = len(pool) if hasattr(pool, "__len__") else None
            pool = columnar.filter_candidates(pool, requirement)
            if before is not None:
                self.statistics.profile_prunes += before - len(pool)
        matched: set[NodeId] = set()
        for candidate in pool:
            self.statistics.candidates_considered += 1
            if self.exists_match_at(graph, expanded, candidate):
                matched.add(candidate)
        return matched

    # -- full enumeration -------------------------------------------------
    def find_all(
        self,
        graph: Graph,
        pattern: Pattern,
        limit: int | None = None,
    ) -> list[dict]:
        """Enumerate isomorphism mappings (pattern node -> data node).

        Used by the disVF2 baseline and by tests; the core algorithms use the
        anchored early-terminating queries instead.
        """
        expanded = pattern.expanded()
        anchors = label_candidates(graph, expanded, expanded.x, self._index(graph))
        results: list[dict] = []
        for candidate in sorted(anchors, key=str):
            for mapping in self.iter_matches_at(graph, expanded, candidate):
                results.append(mapping)
                if limit is not None and len(results) >= limit:
                    return results
        return results

    def iter_matches_at(
        self, graph: Graph, pattern: Pattern, anchor_value: NodeId
    ) -> Iterator[dict]:
        """Iterate over all matches anchored at *anchor_value*.

        Default implementation yields at most one (the anchored search);
        matchers supporting full enumeration override it.
        """
        mapping = self.find_match_at(graph, pattern, anchor_value)
        if mapping is not None:
            yield mapping
