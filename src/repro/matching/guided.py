"""Guided search with k-hop sketches and early termination (Section 5.2).

``Match`` improves on the plain matcher in two ways:

* **early termination** — a candidate ``vx`` is accepted as soon as *one*
  isomorphic match anchored at it is found (inherited from the anchored
  interface of :class:`repro.matching.base.Matcher`);
* **guided search** — when several data nodes could play the next pattern
  node, the one whose k-hop neighbourhood sketch has the largest label
  surplus over the pattern's sketch is tried first, and candidates whose
  sketch fails to dominate the pattern's are pruned outright.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.graph.graph import Graph
from repro.graph.sketch import KHopSketch, build_sketch, sketch_dominates, sketch_score
from repro.matching.base import Matcher, build_search_plan
from repro.matching.candidates import degree_consistent
from repro.pattern.pattern import Pattern

NodeId = Hashable


class GuidedMatcher(Matcher):
    """Sketch-guided anchored matcher (the search core of ``Match``).

    Parameters
    ----------
    sketch_hops:
        Number of hops summarised by the sketches (the paper uses 2).
    use_sketch_pruning:
        If ``True`` candidates whose sketch cannot dominate the pattern
        node's sketch are discarded before the recursive search.
    use_index:
        Serve data-node sketches, adjacency profiles and frozen adjacency
        views from the graph's resident :class:`FragmentIndex` — the sketch
        cache is then shared by every matcher probing the same graph in the
        process, instead of being private to this instance.
    """

    def __init__(
        self,
        sketch_hops: int = 2,
        use_sketch_pruning: bool = True,
        use_index: bool = True,
        use_columnar: bool = True,
    ) -> None:
        super().__init__(use_index=use_index, use_columnar=use_columnar)
        if sketch_hops < 1:
            raise ValueError(f"sketch_hops must be >= 1, got {sketch_hops}")
        self.sketch_hops = sketch_hops
        self.use_sketch_pruning = use_sketch_pruning
        # Per data-graph sketch cache keyed by the graph object itself (not
        # id(): holding the object avoids id reuse after garbage collection),
        # pinned to the Graph.version it was filled at — a graph mutated
        # between probes (repro.stream update batches) starts a fresh cache
        # instead of serving stale sketches.  Only used when the resident
        # index is disabled.
        self._data_sketches: dict[Graph, tuple[int, dict[NodeId, KHopSketch]]] = {}
        # Pattern sketches keyed by (pattern, node); Pattern hashes by
        # structure, so transient expanded copies reuse the right entry.
        self._pattern_sketches: dict[tuple[Pattern, NodeId], KHopSketch] = {}
        # Graph views of patterns, keyed by the pattern (structural hash).
        self._pattern_graphs: dict[Pattern, Graph] = {}

    # ------------------------------------------------------------------
    # sketch caches
    # ------------------------------------------------------------------
    def _data_sketch(self, graph: Graph, index, node: NodeId) -> KHopSketch:
        if index is not None:
            return index.sketch(node, self.sketch_hops)
        if graph.in_batch:  # half-applied state: compute, never cache
            return build_sketch(graph, node, self.sketch_hops)
        entry = self._data_sketches.get(graph)
        if entry is None or entry[0] != graph.version:
            cache: dict[NodeId, KHopSketch] = {}
            self._data_sketches[graph] = (graph.version, cache)
        else:
            cache = entry[1]
        sketch = cache.get(node)
        if sketch is None:
            sketch = build_sketch(graph, node, self.sketch_hops)
            cache[node] = sketch
        return sketch

    def _pattern_sketch(self, pattern: Pattern, pattern_graph: Graph, node: NodeId) -> KHopSketch:
        key = (pattern, node)
        sketch = self._pattern_sketches.get(key)
        if sketch is None:
            sketch = build_sketch(pattern_graph, node, self.sketch_hops)
            self._pattern_sketches[key] = sketch
        return sketch

    def _pattern_graph(self, pattern: Pattern) -> Graph:
        graph = self._pattern_graphs.get(pattern)
        if graph is None:
            graph = pattern.to_graph()
            self._pattern_graphs[pattern] = graph
        return graph

    def clear_caches(self) -> None:
        """Drop all cached sketches (e.g. between benchmark repetitions)."""
        self._data_sketches.clear()
        self._pattern_sketches.clear()
        self._pattern_graphs.clear()

    # ------------------------------------------------------------------
    def find_match_at(self, graph: Graph, pattern: Pattern, anchor_value: NodeId) -> dict | None:
        expanded = pattern.expanded()
        for mapping in self._search(graph, expanded, anchor_value, first_only=True):
            return mapping
        return None

    def iter_matches_at(self, graph: Graph, pattern: Pattern, anchor_value: NodeId) -> Iterator[dict]:
        expanded = pattern.expanded()
        yield from self._search(graph, expanded, anchor_value, first_only=False)

    # ------------------------------------------------------------------
    def _search(
        self,
        graph: Graph,
        pattern: Pattern,
        anchor_value: NodeId,
        first_only: bool,
    ) -> Iterator[dict]:
        if not graph.has_node(anchor_value):
            return
        if graph.node_label(anchor_value) != pattern.label(pattern.x):
            return
        index = self._index(graph)
        if not degree_consistent(graph, anchor_value, pattern, pattern.x, index):
            return
        pattern_graph = self._pattern_graph(pattern)
        if self.use_sketch_pruning:
            anchor_sketch = self._data_sketch(graph, index, anchor_value)
            needed = self._pattern_sketch(pattern, pattern_graph, pattern.x)
            if not sketch_dominates(anchor_sketch, needed):
                self.statistics.sketch_prunes += 1
                return
        plan = build_search_plan(pattern, pattern.x)
        mapping: dict = {pattern.x: anchor_value}
        used: set[NodeId] = {anchor_value}
        yield from self._extend(
            graph, index, pattern, pattern_graph, plan, 1, mapping, used, first_only
        )

    def _ranked_candidates(self, graph, index, pattern, pattern_graph, plan, position, mapping):
        node = plan.order[position]
        node_label = pattern.label(node)
        candidate_set = None
        for edge, placed_is_source in plan.connections[position]:
            if placed_is_source:
                neighbors = (
                    index.out_neighbors(mapping[edge.source], edge.label)
                    if index is not None
                    else graph.out_neighbors(mapping[edge.source], edge.label)
                )
            else:
                neighbors = (
                    index.in_neighbors(mapping[edge.target], edge.label)
                    if index is not None
                    else graph.in_neighbors(mapping[edge.target], edge.label)
                )
            candidate_set = neighbors if candidate_set is None else candidate_set & neighbors
            if not candidate_set:
                return []
        if candidate_set is None:
            # Free node of a disconnected pattern: fall back to the label index.
            candidate_set = (
                index.nodes_with_label(node_label)
                if index is not None
                else graph.nodes_with_label(node_label)
            )
        filtered = [c for c in candidate_set if graph.node_label(c) == node_label]
        if not filtered:
            return []
        needed = self._pattern_sketch(pattern, pattern_graph, node)
        ranked: list[tuple[int, NodeId]] = []
        for candidate in filtered:
            sketch = self._data_sketch(graph, index, candidate)
            if self.use_sketch_pruning and not sketch_dominates(sketch, needed):
                self.statistics.sketch_prunes += 1
                continue
            ranked.append((sketch_score(sketch, needed), candidate))
        # Best (largest surplus) first; break ties deterministically.
        ranked.sort(key=lambda item: (-item[0], str(item[1])))
        return [candidate for _, candidate in ranked]

    def _consistent(self, graph, pattern, node, data_node, mapping) -> bool:
        for edge in pattern.out_edges(node):
            if edge.target in mapping and not graph.has_edge(data_node, mapping[edge.target], edge.label):
                return False
        for edge in pattern.in_edges(node):
            if edge.source in mapping and not graph.has_edge(mapping[edge.source], data_node, edge.label):
                return False
        return True

    def _extend(
        self,
        graph: Graph,
        index,
        pattern: Pattern,
        pattern_graph: Graph,
        plan,
        position: int,
        mapping: dict,
        used: set,
        first_only: bool,
    ) -> Iterator[dict]:
        if position == len(plan.order):
            self.statistics.matches_found += 1
            yield dict(mapping)
            return
        node = plan.order[position]
        for data_node in self._ranked_candidates(
            graph, index, pattern, pattern_graph, plan, position, mapping
        ):
            if data_node in used:
                continue
            self.statistics.states_expanded += 1
            if not self._consistent(graph, pattern, node, data_node, mapping):
                self.statistics.backtracks += 1
                continue
            mapping[node] = data_node
            used.add(data_node)
            produced = False
            for result in self._extend(
                graph, index, pattern, pattern_graph, plan, position + 1, mapping, used, first_only
            ):
                produced = True
                yield result
                if first_only:
                    break
            used.discard(data_node)
            del mapping[node]
            if first_only and produced:
                return
            if not produced:
                self.statistics.backtracks += 1
