"""Graph-simulation matching semantics (the paper's future-work extension).

The conclusion of the paper names "allowing other matching semantics such as
graph simulation" as an extension of GPARs.  This module implements dual
(forward + backward) graph simulation between a pattern and a data graph:

* a relation ``S ⊆ Vp × V`` is a *simulation* if whenever ``(u, v) ∈ S``,
  the labels agree and every pattern edge ``u --l--> u'`` (resp. incoming
  ``u'' --l--> u``) is matched by some data edge ``v --l--> v'`` with
  ``(u', v') ∈ S`` (resp. ``v'' --l--> v`` with ``(u'', v'') ∈ S``);
* the *maximum* simulation is computed by iterative refinement and is unique.

Simulation is weaker than subgraph isomorphism (it is not injective and does
not preserve cycles exactly) but computable in polynomial time, so a
simulation-based GPAR can be evaluated on graphs where isomorphism is too
expensive.  ``SimulationMatcher`` plugs into the same ``match_set`` interface
as the exact matchers; every isomorphism match is also a simulation match,
so it over-approximates ``Q(x, G)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.columnar import ColumnarFragment, columnar_view
from repro.graph.graph import Graph
from repro.graph.index import FragmentIndex, graph_index
from repro.pattern.pattern import Pattern

NodeId = Hashable


def maximum_dual_simulation(
    pattern: Pattern,
    graph: Graph,
    index: FragmentIndex | None = None,
    columnar: ColumnarFragment | None = None,
) -> dict[Hashable, set[NodeId]]:
    """Compute the maximum dual simulation of *pattern* into *graph*.

    Returns a mapping ``pattern node -> set of data nodes`` that simulate it;
    all sets are empty when no total simulation exists (some pattern node has
    no simulating data node).  With an *index* the label seeding and the
    per-candidate neighbour probes of the refinement loop are answered from
    the resident :class:`FragmentIndex` instead of copying adjacency sets.
    With a *columnar* view the whole refinement runs over CSR ranges in
    interned-id space (vectorized when numpy is available); the maximum
    simulation is unique, so the result is identical to the dict fixpoint.
    The columnar path requires a pristine (overlay-free) view — a patched
    view returns ``None`` from ``dual_simulation`` and the dict path below
    takes over until the next compile boundary.
    """
    expanded = pattern.expanded()
    if columnar is not None:
        result = columnar.dual_simulation(expanded)
        if result is not None:
            return result
    # Initial candidates: label agreement.
    if index is not None:
        simulation: dict[Hashable, set[NodeId]] = {
            node: set(index.nodes_with_label(expanded.label(node))) for node in expanded.nodes()
        }
    else:
        simulation = {
            node: set(graph.nodes_with_label(expanded.label(node))) for node in expanded.nodes()
        }
    if any(not candidates for candidates in simulation.values()):
        return {node: set() for node in expanded.nodes()}

    changed = True
    while changed:
        changed = False
        for node in expanded.nodes():
            survivors: set[NodeId] = set()
            for candidate in simulation[node]:
                consistent = True
                for edge in expanded.out_edges(node):
                    successors = (
                        index.out_neighbors(candidate, edge.label)
                        if index is not None
                        else graph.out_neighbors(candidate, edge.label)
                    )
                    if not (successors & simulation[edge.target]):
                        consistent = False
                        break
                if consistent:
                    for edge in expanded.in_edges(node):
                        predecessors = (
                            index.in_neighbors(candidate, edge.label)
                            if index is not None
                            else graph.in_neighbors(candidate, edge.label)
                        )
                        if not (predecessors & simulation[edge.source]):
                            consistent = False
                            break
                if consistent:
                    survivors.add(candidate)
            if survivors != simulation[node]:
                simulation[node] = survivors
                changed = True
        if any(not candidates for candidates in simulation.values()):
            return {node: set() for node in expanded.nodes()}
    return simulation


class SimulationMatcher:
    """Match-set computation under dual graph simulation.

    Exposes the subset of the :class:`repro.matching.base.Matcher` interface
    the metrics need (``match_set`` and ``exists_match_at``); because
    simulation is a global fixpoint, anchored queries are answered from the
    maximum simulation rather than by per-candidate search.
    """

    def __init__(self, use_index: bool = True, use_columnar: bool = True) -> None:
        self.use_index = use_index
        self.use_columnar = use_columnar
        # Cache of maximum simulations keyed by (pattern, graph identity),
        # each entry pinned to the Graph.version it was computed at: a
        # mutated graph (e.g. under repro.stream update batches) recomputes
        # instead of serving a stale fixpoint.
        self._cache: dict[tuple[Pattern, int], tuple[int, dict]] = {}
        self._graphs: dict[int, Graph] = {}

    def _simulation(self, graph: Graph, pattern: Pattern) -> dict:
        key = (pattern, id(graph))
        entry = self._cache.get(key)
        if entry is not None and entry[0] == graph.version and not graph.in_batch:
            return entry[1]
        index = graph_index(graph) if self.use_index else None
        columnar = (
            columnar_view(graph) if self.use_columnar and not graph.in_batch else None
        )
        simulation = maximum_dual_simulation(pattern, graph, index, columnar)
        if not graph.in_batch:  # a half-applied batch state must not linger
            self._cache[key] = (graph.version, simulation)
            self._graphs[id(graph)] = graph  # keep the graph alive for id stability
        return simulation

    def clear_caches(self) -> None:
        """Drop cached simulations."""
        self._cache.clear()
        self._graphs.clear()

    def match_set(self, graph: Graph, pattern: Pattern, candidates=None) -> set[NodeId]:
        """Data nodes simulating the designated node x."""
        expanded = pattern.expanded()
        matches = set(self._simulation(graph, expanded).get(expanded.x, set()))
        if candidates is not None:
            matches &= set(candidates)
        return matches

    def exists_match_at(self, graph: Graph, pattern: Pattern, anchor_value: NodeId) -> bool:
        """Whether *anchor_value* simulates the designated node x."""
        expanded = pattern.expanded()
        return anchor_value in self._simulation(graph, expanded).get(expanded.x, set())


def simulation_match_set(graph: Graph, pattern: Pattern) -> set[NodeId]:
    """Convenience wrapper: ``Q(x, G)`` under dual simulation semantics."""
    return SimulationMatcher().match_set(graph, pattern)
