"""Backtracking subgraph isomorphism in the spirit of VF2.

The matcher looks for *non-induced* subgraph isomorphisms: an injective,
label-preserving mapping of pattern nodes to data nodes under which every
pattern edge is present in the data graph with the same label (paper
Section 2.1 — the matched subgraph G' consists exactly of the mapped nodes
and edges).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.graph.graph import Graph
from repro.matching.base import Matcher, build_search_plan
from repro.matching.candidates import degree_consistent
from repro.pattern.pattern import Pattern

NodeId = Hashable


class VF2Matcher(Matcher):
    """Plain backtracking matcher with label/degree candidate filtering.

    Parameters
    ----------
    use_degree_filter:
        When ``True`` (default) candidates failing the labelled-degree
        necessary condition are rejected before the recursive search; the
        ``disVF2`` baseline of the paper disables every extra filter.
    use_index:
        Consult the data graph's resident :class:`FragmentIndex` for label
        buckets, adjacency profiles and frozen adjacency views (see
        :class:`repro.matching.base.Matcher`).
    use_columnar:
        Prefilter ``match_set`` pools against the resident columnar view
        (see :class:`repro.matching.base.Matcher`).  Suspended automatically
        when *use_degree_filter* is off: the ``disVF2`` baseline must pay
        the full per-candidate search the paper measures.
    """

    def __init__(
        self,
        use_degree_filter: bool = True,
        use_index: bool = True,
        use_columnar: bool = True,
    ) -> None:
        super().__init__(use_index=use_index, use_columnar=use_columnar)
        self.use_degree_filter = use_degree_filter
        if not use_degree_filter:
            self._columnar_prefilter = False

    # ------------------------------------------------------------------
    def find_match_at(self, graph: Graph, pattern: Pattern, anchor_value: NodeId) -> dict | None:
        expanded = pattern.expanded()
        for mapping in self._search(graph, expanded, anchor_value, first_only=True):
            return mapping
        return None

    def iter_matches_at(self, graph: Graph, pattern: Pattern, anchor_value: NodeId) -> Iterator[dict]:
        expanded = pattern.expanded()
        yield from self._search(graph, expanded, anchor_value, first_only=False)

    # ------------------------------------------------------------------
    def _search(
        self,
        graph: Graph,
        pattern: Pattern,
        anchor_value: NodeId,
        first_only: bool,
    ) -> Iterator[dict]:
        if not graph.has_node(anchor_value):
            return
        if graph.node_label(anchor_value) != pattern.label(pattern.x):
            return
        index = self._index(graph)
        if self.use_degree_filter and not degree_consistent(
            graph, anchor_value, pattern, pattern.x, index
        ):
            return
        plan = build_search_plan(pattern, pattern.x)
        mapping: dict = {pattern.x: anchor_value}
        used: set[NodeId] = {anchor_value}
        yield from self._extend(graph, index, pattern, plan, 1, mapping, used, first_only)

    def _candidates_for(self, graph: Graph, index, pattern: Pattern, plan, position, mapping):
        """Candidate data nodes for the pattern node at *position* in the plan."""
        node = plan.order[position]
        node_label = pattern.label(node)
        candidate_set: set[NodeId] | frozenset | None = None
        for edge, placed_is_source in plan.connections[position]:
            if placed_is_source:
                placed_data = mapping[edge.source]
                neighbors = (
                    index.out_neighbors(placed_data, edge.label)
                    if index is not None
                    else graph.out_neighbors(placed_data, edge.label)
                )
            else:
                placed_data = mapping[edge.target]
                neighbors = (
                    index.in_neighbors(placed_data, edge.label)
                    if index is not None
                    else graph.in_neighbors(placed_data, edge.label)
                )
            if candidate_set is None:
                candidate_set = neighbors
            else:
                candidate_set = candidate_set & neighbors
            if not candidate_set:
                return set()
        if candidate_set is None:
            # Free node of a disconnected pattern: fall back to the label index.
            if index is not None:
                return index.nodes_with_label(node_label)
            return graph.nodes_with_label(node_label)
        return {node_id for node_id in candidate_set if graph.node_label(node_id) == node_label}

    def _consistent(self, graph: Graph, pattern: Pattern, node, data_node, mapping) -> bool:
        """All pattern edges between *node* and already-mapped nodes must exist."""
        for edge in pattern.out_edges(node):
            if edge.target in mapping and not graph.has_edge(data_node, mapping[edge.target], edge.label):
                return False
        for edge in pattern.in_edges(node):
            if edge.source in mapping and not graph.has_edge(mapping[edge.source], data_node, edge.label):
                return False
        return True

    def _extend(
        self,
        graph: Graph,
        index,
        pattern: Pattern,
        plan,
        position: int,
        mapping: dict,
        used: set,
        first_only: bool,
    ) -> Iterator[dict]:
        if position == len(plan.order):
            self.statistics.matches_found += 1
            yield dict(mapping)
            return
        node = plan.order[position]
        candidates = self._candidates_for(graph, index, pattern, plan, position, mapping)
        for data_node in sorted(candidates, key=str):
            if data_node in used:
                continue
            self.statistics.states_expanded += 1
            if self.use_degree_filter and not degree_consistent(
                graph, data_node, pattern, node, index
            ):
                continue
            if not self._consistent(graph, pattern, node, data_node, mapping):
                self.statistics.backtracks += 1
                continue
            mapping[node] = data_node
            used.add(data_node)
            produced = False
            for result in self._extend(
                graph, index, pattern, plan, position + 1, mapping, used, first_only
            ):
                produced = True
                yield result
                if first_only:
                    break
            used.discard(data_node)
            del mapping[node]
            if first_only and produced:
                return
            if not produced:
                self.statistics.backtracks += 1
