"""Argument-validation helpers.

These raise :class:`ValueError`/:class:`TypeError` with consistent messages;
library-level errors (graph/pattern/mining) use :mod:`repro.exceptions`.
"""

from __future__ import annotations

from typing import Any


def require_positive(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def require_in_range(value: float, name: str, low: float, high: float) -> None:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_type(value: Any, name: str, expected: type | tuple[type, ...]) -> None:
    """Raise :class:`TypeError` unless *value* is an instance of *expected*."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be of type {names}, got {type(value).__name__}")
