"""Deterministic random-number-generator plumbing.

All stochastic code in the library (synthetic graph generators, workload
generators, partition tie-breaking) accepts either an integer seed, an
existing :class:`random.Random`, or ``None``; :func:`ensure_rng` normalises
those into a :class:`random.Random` instance so results are reproducible
whenever a seed is supplied.
"""

from __future__ import annotations

import random


def ensure_rng(seed_or_rng: int | random.Random | None = None) -> random.Random:
    """Return a :class:`random.Random` for *seed_or_rng*.

    Parameters
    ----------
    seed_or_rng:
        ``None`` for a fresh unseeded generator, an ``int`` seed for a
        deterministic generator, or an existing :class:`random.Random`
        which is returned unchanged.
    """
    if seed_or_rng is None:
        return random.Random()
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if isinstance(seed_or_rng, bool) or not isinstance(seed_or_rng, int):
        raise TypeError(
            "seed_or_rng must be None, an int seed, or a random.Random, "
            f"got {type(seed_or_rng).__name__}"
        )
    return random.Random(seed_or_rng)
