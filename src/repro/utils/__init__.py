"""Small shared utilities: RNG handling, timing, validation helpers."""

from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    require_positive,
    require_non_negative,
    require_in_range,
    require_type,
)

__all__ = [
    "ensure_rng",
    "Stopwatch",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_type",
]
