"""Wall-clock timing helpers used by the parallel runtime and benches."""

from __future__ import annotations

import time


class Stopwatch:
    """A restartable stopwatch measuring elapsed wall-clock seconds.

    Example
    -------
    >>> watch = Stopwatch()
    >>> watch.start()
    >>> _ = sum(range(1000))
    >>> elapsed = watch.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._started_at: float | None = None
        self.total: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) timing; returns self for chaining."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds of this interval."""
        if self._started_at is None:
            raise RuntimeError(
                "Stopwatch.stop() called while not running: either start() "
                "was never called or the interval was already stopped; check "
                "`running` first, or use peek() for a non-destructive read"
            )
        elapsed = time.perf_counter() - self._started_at
        self.total += elapsed
        self._started_at = None
        return elapsed

    def peek(self) -> float:
        """Elapsed seconds of the current interval without stopping it.

        Returns 0.0 when the stopwatch is not running, so callers (e.g. the
        span timer in :mod:`repro.obs.tracing`) can read it unconditionally.
        """
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently timing an interval."""
        return self._started_at is not None
