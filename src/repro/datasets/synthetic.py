"""Synthetic graph generator (paper Section 6, "Experimental setting").

The paper uses a generator controlled by ``|V|`` and ``|E|`` with labels
drawn from an alphabet of 100 labels.  This module reproduces that knob set
at laptop scale: nodes receive labels from a configurable alphabet, edges are
placed with a preferential-attachment bias so the degree distribution is
skewed like a social network, and edge labels come from a smaller alphabet
(the paper's real graphs have 5–11 edge types).
"""

from __future__ import annotations

import random

from repro.exceptions import DatasetError
from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng


def synthetic_graph(
    num_nodes: int,
    num_edges: int,
    num_node_labels: int = 100,
    num_edge_labels: int = 11,
    seed: int | random.Random | None = 0,
    name: str | None = None,
    preferential: bool = True,
) -> Graph:
    """Generate a labelled directed graph with the requested size.

    Parameters
    ----------
    num_nodes, num_edges:
        Target ``|V|`` and ``|E|``.  Self-loops and duplicate
        (source, target, label) triples are avoided, so the generator may
        need slightly more attempts than ``num_edges``; it raises
        :class:`DatasetError` if the request is impossible
        (``num_edges > num_nodes * (num_nodes - 1) * num_edge_labels``).
    num_node_labels, num_edge_labels:
        Sizes of the label alphabets (``L0 .. L{n-1}`` / ``e0 .. e{m-1}``).
    preferential:
        When ``True`` edge targets are drawn with probability proportional to
        current degree + 1 (power-law-ish degree distribution); when
        ``False`` both endpoints are uniform.
    """
    if num_nodes < 1:
        raise DatasetError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_edges < 0:
        raise DatasetError(f"num_edges must be >= 0, got {num_edges}")
    capacity = num_nodes * (num_nodes - 1) * max(1, num_edge_labels)
    if num_edges > capacity:
        raise DatasetError(
            f"cannot place {num_edges} distinct edges on {num_nodes} nodes "
            f"with {num_edge_labels} edge labels (capacity {capacity})"
        )
    rng = ensure_rng(seed)
    graph = Graph(name=name or f"synthetic({num_nodes},{num_edges})")

    node_labels = [f"L{i}" for i in range(max(1, num_node_labels))]
    edge_labels = [f"e{i}" for i in range(max(1, num_edge_labels))]
    nodes = [f"n{i}" for i in range(num_nodes)]
    for node in nodes:
        graph.add_node(node, rng.choice(node_labels))

    # Preferential-attachment pool: node ids appear once per unit of degree.
    pool: list[str] = list(nodes)
    placed = 0
    attempts = 0
    max_attempts = num_edges * 50 + 1000
    while placed < num_edges:
        attempts += 1
        if attempts > max_attempts:
            raise DatasetError(
                f"could not place {num_edges} distinct edges after {attempts} attempts"
            )
        source = rng.choice(nodes)
        target = rng.choice(pool) if preferential else rng.choice(nodes)
        if source == target:
            continue
        label = rng.choice(edge_labels)
        if graph.add_edge(source, target, label):
            placed += 1
            if preferential:
                pool.append(target)
                pool.append(source)
    return graph
