"""GPAR workload generation for the EIP benchmarks (paper Section 6).

The paper evaluates ``Match`` on sets Σ of 8–48 GPARs whose labels are drawn
from the data graph.  :func:`generate_gpars` samples such rules directly from
a graph: it picks a positive centre node for the predicate, walks its
d-neighbourhood, and lifts the visited edges into a pattern — which
guarantees the generated rule has at least one match and uses realistic
label combinations.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.exceptions import DatasetError
from repro.graph.graph import Graph
from repro.graph.neighborhood import bfs_distances
from repro.graph.statistics import most_frequent_edge_patterns
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern, PatternEdge
from repro.utils.rng import ensure_rng

NodeId = Hashable


def most_frequent_predicates(graph: Graph, top: int = 20) -> list[Pattern]:
    """The *top* most frequent single-edge predicate patterns of *graph*.

    Each returned pattern is ``x --q--> y`` with the x/y labels of the
    frequent edge pattern; DMine's default seeding uses these (Exp-1).
    """
    patterns: list[Pattern] = []
    for source_label, edge_label, target_label, _count in most_frequent_edge_patterns(graph, top):
        patterns.append(
            Pattern(
                nodes={"x": source_label, "y": target_label},
                edges=[PatternEdge("x", "y", edge_label)],
                x="x",
                y="y",
            )
        )
    return patterns


def _predicate_parts(predicate: Pattern) -> tuple[str, str, str]:
    edges = predicate.edges()
    if len(edges) != 1:
        raise DatasetError("a predicate pattern must have exactly one edge")
    edge = edges[0]
    return predicate.label(predicate.x), edge.label, predicate.label(edge.target)


def generate_gpars(
    graph: Graph,
    predicate: Pattern,
    count: int,
    max_pattern_edges: int = 6,
    d: int = 2,
    seed: int | random.Random | None = 0,
    name_prefix: str = "W",
) -> list[GPAR]:
    """Sample *count* GPARs for *predicate* from the structure of *graph*.

    Parameters
    ----------
    graph:
        The data graph the rules are sampled from.
    predicate:
        Single-edge predicate pattern ``x --q--> y``.
    count:
        Number of rules to produce.
    max_pattern_edges:
        Upper bound on the number of antecedent edges per rule.
    d:
        Maximum radius of the rule pattern at x.
    seed:
        Randomness control.

    Returns
    -------
    list[GPAR]
        ``count`` distinct, valid GPARs, each with at least one match in
        *graph* by construction.  Raises :class:`DatasetError` when the graph
        has no positive centre for the predicate.
    """
    if count < 1:
        raise DatasetError(f"count must be >= 1, got {count}")
    rng = ensure_rng(seed)
    x_label, q_label, y_label = _predicate_parts(predicate)

    positives = [
        node
        for node in sorted(graph.nodes_with_label(x_label), key=str)
        if any(
            graph.node_label(target) == y_label
            for target in graph.out_neighbors(node, q_label)
        )
    ]
    if not positives:
        raise DatasetError(
            f"graph {graph.name!r} has no positive centre for predicate "
            f"{x_label} --{q_label}--> {y_label}"
        )

    rules: list[GPAR] = []
    seen: set = set()
    attempts = 0
    max_attempts = count * 60
    while len(rules) < count and attempts < max_attempts:
        attempts += 1
        rule = _sample_rule(
            graph,
            rng,
            rng.choice(positives),
            x_label,
            q_label,
            y_label,
            max_pattern_edges=max_pattern_edges,
            d=d,
            name=f"{name_prefix}{len(rules) + 1}",
        )
        if rule is None or rule in seen:
            continue
        seen.add(rule)
        rules.append(rule)
    if len(rules) < count:
        raise DatasetError(
            f"could only sample {len(rules)} of {count} distinct GPARs "
            f"after {attempts} attempts; relax max_pattern_edges or d"
        )
    return rules


def _sample_rule(
    graph: Graph,
    rng: random.Random,
    center: NodeId,
    x_label: str,
    q_label: str,
    y_label: str,
    max_pattern_edges: int,
    d: int,
    name: str,
) -> GPAR | None:
    """Lift a random connected subgraph around *center* into a GPAR."""
    distances = bfs_distances(graph, center, radius=d)
    # Data node -> pattern node id, seeded with the designated x.
    node_map: dict[NodeId, str] = {center: "x"}
    pattern_nodes: dict[str, str] = {"x": x_label}
    pattern_edges: list[PatternEdge] = []
    y_assigned: str | None = None

    target_edges = rng.randint(1, max_pattern_edges)
    frontier = [center]
    guard = 0
    while len(pattern_edges) < target_edges and frontier and guard < 200:
        guard += 1
        data_node = rng.choice(frontier)
        # Sorted so the draw depends only on graph *content* and the seed —
        # never on adjacency-set iteration order (hash seed / insertion
        # order), which must not change which Σ a (graph, seed) pair yields
        # (repro.serve regenerates Σ from a serialized graph document).
        incident = sorted(
            list(graph.out_edges(data_node)) + list(graph.in_edges(data_node)),
            key=lambda e: (str(e.source), e.label, str(e.target)),
        )
        if not incident:
            frontier.remove(data_node)
            continue
        edge = rng.choice(incident)
        other = edge.target if edge.source == data_node else edge.source
        if other not in distances:
            continue
        # Never copy the consequent edge into the antecedent.
        if (
            edge.source == center
            and edge.label == q_label
            and graph.node_label(edge.target) == y_label
            and (y_assigned is None or node_map.get(edge.target) == y_assigned)
        ):
            continue
        if other not in node_map:
            pattern_id = f"v{len(node_map)}"
            node_map[other] = pattern_id
            pattern_nodes[pattern_id] = graph.node_label(other)
            frontier.append(other)
        new_edge = PatternEdge(node_map[edge.source], node_map[edge.target], edge.label)
        if new_edge not in pattern_edges and new_edge.source != new_edge.target:
            pattern_edges.append(new_edge)
        if y_assigned is None and graph.node_label(other) == y_label and other != center:
            y_assigned = node_map[other]

    if not pattern_edges:
        return None
    # Ensure a designated y exists; add a fresh, antecedent-disconnected y
    # node only through the consequent is not allowed (PR must be connected),
    # so attach it through an existing q-link of the centre when needed.
    if y_assigned is None:
        y_targets = [
            target
            for target in graph.out_neighbors(center, q_label)
            if graph.node_label(target) == y_label and target not in node_map
        ]
        if not y_targets:
            return None
        chosen = sorted(y_targets, key=str)[0]
        y_assigned = f"v{len(node_map)}"
        node_map[chosen] = y_assigned
        pattern_nodes[y_assigned] = y_label
        # Tie y into the antecedent via a co-location or co-interest edge so
        # the antecedent stays connected (keeps the parallel and sequential
        # evaluations exactly comparable); give up on this sample otherwise.
        tied = False
        for edge in sorted(
            graph.in_edges(chosen), key=lambda e: (str(e.source), e.label, str(e.target))
        ):
            if edge.source in node_map and edge.source != center:
                pattern_edges.append(
                    PatternEdge(node_map[edge.source], y_assigned, edge.label)
                )
                tied = True
                break
        if not tied:
            return None

    antecedent = Pattern(
        nodes=pattern_nodes,
        edges=pattern_edges,
        x="x",
        y=y_assigned,
    )
    if antecedent.has_edge("x", y_assigned, q_label):
        return None
    try:
        rule = GPAR(antecedent, consequent_label=q_label, name=name)
    except Exception:
        return None
    if rule.radius > d:
        return None
    return rule
