"""Pokec-like and Google+-like social graph generators.

These are the documented substitutes for the paper's real datasets (see
DESIGN.md): they reproduce the *shape* of the data the algorithms see —
typed user nodes linked to attribute nodes (cities, hobbies, music genres,
schools, employers, majors), follow/like edges between users, community
structure, and planted regularities so that GPAR mining discovers rules of
the same flavour as the paper's case studies (R9–R11 in Fig. 5(g)).
"""

from __future__ import annotations

import random

from repro.exceptions import DatasetError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng

# Shared edge labels.
FOLLOW = "follow"
LIKE = "like"
LIVE_IN = "live_in"
HOBBY = "hobby"
LIKE_MUSIC = "like_music"
LIKE_BOOK = "like_book"
VISIT = "visit"
SCHOOL = "school"
EMPLOYER = "employer"
MAJOR = "major"


def pokec_like(
    num_users: int = 600,
    num_communities: int = 12,
    seed: int | random.Random | None = 0,
    name: str = "pokec_like",
) -> Graph:
    """A Pokec-flavoured social graph.

    Users are grouped into communities.  Members of a community live in the
    same city, follow each other densely, and share hobbies.  Two
    regularities are planted (with noise) for the mining case studies:

    * in "music" communities, users whose followees like a music genre tend
      to like that genre themselves (the R9 flavour);
    * in "book" communities, users who follow each other and like
      professional-development books tend to also like personal-development
      books (the R10 flavour).
    """
    if num_users < 10:
        raise DatasetError("pokec_like needs at least 10 users")
    if num_communities < 1:
        raise DatasetError("num_communities must be >= 1")
    rng = ensure_rng(seed)
    builder = GraphBuilder(name)

    # Attribute nodes carry *specific* labels (the value itself), mirroring
    # the paper's value bindings ("Shakira album", "French restaurant"): this
    # is what makes predicates such as like_book(user, "personal development")
    # non-degenerate under the LCWA (some users like other book topics, so
    # supp(q̄) > 0).
    music_genres = ["Disco", "Rock", "Folk", "HipHop"]
    hobbies = ["party", "listen_to_music", "reading", "hiking", "gaming"]
    cities = [f"city{i}" for i in range(max(2, num_communities // 2))]
    book_topics = ["profession development", "personal development", "travel", "cooking"]
    cuisines = ["French restaurant", "Asian restaurant", "Italian restaurant"]
    restaurants = [f"restaurant{i}" for i in range(10)]

    for genre in music_genres:
        builder.node(f"music:{genre}", genre)
    for hobby in hobbies:
        builder.node(f"hobby:{hobby}", hobby)
    for city in cities:
        builder.node(city, "city")
    for topic in book_topics:
        builder.node(f"book:{topic}", topic)
    for index, restaurant in enumerate(restaurants):
        builder.node(restaurant, cuisines[index % len(cuisines)])

    users = [f"u{i}" for i in range(num_users)]
    for user in users:
        builder.node(user, "user")

    community_of = {user: rng.randrange(num_communities) for user in users}
    community_kind = {
        community: ("music" if community % 2 == 0 else "book")
        for community in range(num_communities)
    }
    community_city = {
        community: cities[community % len(cities)] for community in range(num_communities)
    }
    community_genre = {
        community: music_genres[community % len(music_genres)]
        for community in range(num_communities)
    }

    graph_edges: set[tuple[str, str, str]] = set()

    def add_edge(source: str, target: str, label: str) -> None:
        if source != target and (source, target, label) not in graph_edges:
            graph_edges.add((source, target, label))

    by_community: dict[int, list[str]] = {}
    for user in users:
        by_community.setdefault(community_of[user], []).append(user)

    for user in users:
        community = community_of[user]
        add_edge(user, community_city[community], LIVE_IN)
        # Hobbies: one community hobby plus a random one.
        add_edge(user, f"hobby:{hobbies[community % len(hobbies)]}", HOBBY)
        add_edge(user, f"hobby:{rng.choice(hobbies)}", HOBBY)
        # A couple of restaurant visits for workload predicates.
        if rng.random() < 0.6:
            add_edge(user, rng.choice(restaurants), VISIT)

        members = by_community[community]
        # Dense intra-community follows plus sparse cross-community ones.
        for _ in range(3):
            friend = rng.choice(members)
            if friend != user:
                add_edge(user, friend, FOLLOW)
                if rng.random() < 0.7:
                    add_edge(friend, user, FOLLOW)
        if rng.random() < 0.25:
            add_edge(user, rng.choice(users), FOLLOW)

    # Planted regularities (with noise).
    for community, members in by_community.items():
        genre = community_genre[community]
        if community_kind[community] == "music":
            for user in members:
                if rng.random() < 0.8:
                    add_edge(user, f"music:{genre}", LIKE_MUSIC)
                elif rng.random() < 0.5:
                    add_edge(user, f"music:{rng.choice(music_genres)}", LIKE_MUSIC)
        else:
            for user in members:
                if rng.random() < 0.75:
                    add_edge(user, "book:profession development", LIKE_BOOK)
                    if rng.random() < 0.85:
                        add_edge(user, "book:personal development", LIKE_BOOK)
                elif rng.random() < 0.3:
                    add_edge(user, f"book:{rng.choice(book_topics)}", LIKE_BOOK)

    graph = builder.build()
    for source, target, label in sorted(graph_edges):
        graph.add_edge(source, target, label)
    return graph


def googleplus_like(
    num_users: int = 600,
    num_circles: int = 10,
    seed: int | random.Random | None = 0,
    name: str = "googleplus_like",
) -> Graph:
    """A Google+-flavoured social-attribute graph (5 node / 5 edge types).

    Node types: ``user``, ``school``, ``employer``, ``major``, ``place``.
    Edge types: ``follow``, ``school``, ``employer``, ``major``, ``live_in``.
    A regularity in the spirit of R11 is planted: users in the same circle
    who follow each other and share school + employer tend to share a major.
    """
    if num_users < 10:
        raise DatasetError("googleplus_like needs at least 10 users")
    if num_circles < 1:
        raise DatasetError("num_circles must be >= 1")
    rng = ensure_rng(seed)
    builder = GraphBuilder(name)

    # As in the Pokec-like generator, attribute nodes carry specific labels
    # (the school/employer/major name) so predicates such as
    # major(user, "Computer Science") have both positives and LCWA negatives.
    schools = ["CMU", "MIT", "Stanford", "Edinburgh", "Tsinghua"]
    employers = ["Microsoft", "Google", "Amazon", "IBM"]
    majors = ["Computer Science", "Math", "Biology", "Economics"]
    places = [f"place{i}" for i in range(8)]

    for school in schools:
        builder.node(f"school:{school}", school)
    for employer in employers:
        builder.node(f"employer:{employer}", employer)
    for major in majors:
        builder.node(f"major:{major}", major)
    for place in places:
        builder.node(place, "place")

    users = [f"g{i}" for i in range(num_users)]
    for user in users:
        builder.node(user, "user")

    circle_of = {user: rng.randrange(num_circles) for user in users}
    circle_school = {circle: schools[circle % len(schools)] for circle in range(num_circles)}
    circle_employer = {
        circle: employers[circle % len(employers)] for circle in range(num_circles)
    }
    circle_major = {circle: majors[circle % len(majors)] for circle in range(num_circles)}

    edges: set[tuple[str, str, str]] = set()

    def add_edge(source: str, target: str, label: str) -> None:
        if source != target and (source, target, label) not in edges:
            edges.add((source, target, label))

    by_circle: dict[int, list[str]] = {}
    for user in users:
        by_circle.setdefault(circle_of[user], []).append(user)

    for user in users:
        circle = circle_of[user]
        add_edge(user, places[circle % len(places)], LIVE_IN)
        if rng.random() < 0.85:
            add_edge(user, f"school:{circle_school[circle]}", SCHOOL)
        else:
            add_edge(user, f"school:{rng.choice(schools)}", SCHOOL)
        if rng.random() < 0.8:
            add_edge(user, f"employer:{circle_employer[circle]}", EMPLOYER)
        else:
            add_edge(user, f"employer:{rng.choice(employers)}", EMPLOYER)
        # Planted regularity: circle members overwhelmingly share the major.
        if rng.random() < 0.75:
            add_edge(user, f"major:{circle_major[circle]}", MAJOR)
        elif rng.random() < 0.4:
            add_edge(user, f"major:{rng.choice(majors)}", MAJOR)

        members = by_circle[circle]
        for _ in range(3):
            peer = rng.choice(members)
            if peer != user:
                add_edge(user, peer, FOLLOW)
                if rng.random() < 0.6:
                    add_edge(peer, user, FOLLOW)
        if rng.random() < 0.2:
            add_edge(user, rng.choice(users), FOLLOW)

    graph = builder.build()
    for source, target, label in sorted(edges):
        graph.add_edge(source, target, label)
    return graph
