"""Datasets: the paper's running examples, synthetic graphs, social graphs.

The real Pokec and Google+ datasets used in the paper are not redistributable
here; :mod:`repro.datasets.social` provides generators that reproduce their
label-schema shape (typed users, attribute nodes, follow/like edges and
embedded communities) at laptop scale, which is the documented substitution
of DESIGN.md.
"""

from repro.datasets.paper_graphs import (
    example7_graph,
    example7_rule_r2,
    graph_g1,
    graph_g2,
    rule_r1,
    rule_r4,
    rule_r5,
    rule_r6,
    rule_r7,
    rule_r8,
    visit_french_predicate,
)
from repro.datasets.synthetic import synthetic_graph
from repro.datasets.social import googleplus_like, pokec_like
from repro.datasets.workloads import generate_gpars, most_frequent_predicates

__all__ = [
    "graph_g1",
    "graph_g2",
    "rule_r1",
    "rule_r4",
    "rule_r5",
    "rule_r6",
    "rule_r7",
    "rule_r8",
    "example7_graph",
    "example7_rule_r2",
    "visit_french_predicate",
    "synthetic_graph",
    "pokec_like",
    "googleplus_like",
    "generate_gpars",
    "most_frequent_predicates",
]
