"""The paper's running examples: graphs G1, G2 and rules R1–R8.

The figures of the paper cannot be recovered edge-for-edge from the text, so
G1 and G2 are *reconstructions* chosen to reproduce the quantities the paper
states explicitly:

* Example 3 — ``Q1(x, G1) = {cust1, cust2, cust3, cust5}``;
* Example 5 — ``supp(Q1, G1) = 4``, ``supp(R1, G1) = 3``;
             ``supp(R4, G2) = supp(Q4, G2) = 3`` (matches acct1–acct3);
* Example 6/7 — v1 positive, v2 negative, v3 unknown; ``conf(R2, G) = 1``
  versus conventional confidence 1/3;
* Example 8 — ``supp(q, G1) = 5``, ``supp(q̄, G1) = 1``,
  ``conf(R1) = conf(R7) = 0.6``, ``conf(R8) = 0.2``, ``diff(R1, R7) = 0``,
  ``diff(R1, R8) = diff(R7, R8) = 1``, and the top-2 diversified set
  ``{R7, R8}`` with ``F = 1.08`` at λ = 0.5;
* Example 10 — ``PR1(x, G1) = {cust1, cust2, cust3}``.

The intermediate-round numbers of Example 9 for R5/R6 depend on figure
details that are not fully recoverable; our reconstructions of R5/R6 are
structurally faithful (radius-1 ancestors of R7/R8) but their exact match
sets may differ from the illustration.  This is noted in DESIGN.md.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.pattern.builder import PatternBuilder
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern

# Node labels used by the examples.
CUST = "cust"
CITY = "city"
FRENCH = "French restaurant"
ASIAN = "Asian restaurant"
ACCT = "acct"
BLOG = "blog"
KEYWORD = "keyword"
FAKE = "fake"

# Edge labels.
FRIEND = "friend"
LIVE_IN = "live_in"
LIKE = "like"
IN = "in"
VISIT = "visit"
POST = "post"
CONTAINS = "contains"
IS_A = "is_a"


# ----------------------------------------------------------------------
# G1: restaurant recommendation network (Fig. 2, left)
# ----------------------------------------------------------------------
def graph_g1() -> Graph:
    """The restaurant-recommendation graph G1."""
    builder = GraphBuilder("G1")
    builder.node("NewYork", CITY).node("LA", CITY)
    for cust in ("cust1", "cust2", "cust3", "cust4", "cust5", "cust6"):
        builder.node(cust, CUST)
    for restaurant in ("LeBernardin", "PerSe", "frNY1", "frNY2", "frNY3"):
        builder.node(restaurant, FRENCH)
    for restaurant in ("Patina", "frLA1", "frLA2", "frLA3"):
        builder.node(restaurant, FRENCH)
    builder.node("asianNY", ASIAN).node("asianLA", ASIAN)

    # Residence.
    for cust in ("cust1", "cust2", "cust3", "cust5"):
        builder.edge(cust, "NewYork", LIVE_IN)
    for cust in ("cust4", "cust6"):
        builder.edge(cust, "LA", LIVE_IN)

    # Restaurants located in cities.
    for restaurant in ("LeBernardin", "PerSe", "frNY1", "frNY2", "frNY3", "asianNY"):
        builder.edge(restaurant, "NewYork", IN)
    for restaurant in ("Patina", "frLA1", "frLA2", "frLA3", "asianLA"):
        builder.edge(restaurant, "LA", IN)

    # Friendships (symmetric).
    builder.undirected_edge("cust1", "cust2", FRIEND)
    builder.undirected_edge("cust2", "cust3", FRIEND)
    builder.undirected_edge("cust1", "cust3", FRIEND)
    builder.undirected_edge("cust2", "cust5", FRIEND)
    builder.undirected_edge("cust4", "cust6", FRIEND)
    builder.undirected_edge("cust5", "cust6", FRIEND)

    # Interests (like).
    for cust in ("cust1", "cust2", "cust3", "cust5"):
        for restaurant in ("frNY1", "frNY2", "frNY3"):
            builder.edge(cust, restaurant, LIKE)
    for restaurant in ("frLA1", "frLA2", "frLA3"):
        builder.edge("cust4", restaurant, LIKE)
    builder.edge("cust6", "asianLA", LIKE)
    builder.edge("cust5", "asianNY", LIKE)

    # Visits: cust1-cust3 visit Le Bernardin, cust4/cust6 visit Patina,
    # cust5 visits only an Asian restaurant (the LCWA-negative node).
    for cust in ("cust1", "cust2", "cust3"):
        builder.edge(cust, "LeBernardin", VISIT)
    builder.edge("cust4", "Patina", VISIT)
    builder.edge("cust6", "Patina", VISIT)
    builder.edge("cust5", "asianNY", VISIT)
    return builder.build()


def visit_french_predicate() -> Pattern:
    """The predicate pattern ``Pq``: ``visit(x: cust, y: French restaurant)``."""
    return (
        PatternBuilder()
        .node("x", CUST)
        .node("y", FRENCH)
        .edge("x", "y", VISIT)
        .designate(x="x", y="y")
        .build()
    )


def rule_r1() -> GPAR:
    """R1: the French-restaurant recommendation rule of Example 1/4 (Fig. 1a).

    If x and x' are friends living in the same city c, both like 3 French
    restaurants in c, and x' visits a French restaurant y in c, then x is
    likely to visit y.
    """
    antecedent = (
        PatternBuilder()
        .node("x", CUST)
        .node("x2", CUST)
        .node("c", CITY)
        .node("y", FRENCH)
        .node("fr", FRENCH, copies=3)
        .undirected_edge("x", "x2", FRIEND)
        .edge("x", "c", LIVE_IN)
        .edge("x2", "c", LIVE_IN)
        .edge("x", "fr", LIKE)
        .edge("x2", "fr", LIKE)
        .edge("fr", "c", IN)
        .edge("y", "c", IN)
        .edge("x2", "y", VISIT)
        .designate(x="x", y="y")
        .build()
    )
    return GPAR(antecedent, consequent_label=VISIT, name="R1")


def rule_r5() -> GPAR:
    """R5 (Fig. 3): x has a friend and likes 2 French restaurants ⇒ x visits y."""
    antecedent = (
        PatternBuilder()
        .node("x", CUST)
        .node("x2", CUST)
        .node("y", FRENCH)
        .node("fr", FRENCH, copies=2)
        .undirected_edge("x", "x2", FRIEND)
        .edge("x", "fr", LIKE)
        .designate(x="x", y="y")
        .build()
    )
    return GPAR(antecedent, consequent_label=VISIT, name="R5")


def rule_r6() -> GPAR:
    """R6 (Fig. 3): x has a friend and likes an Asian restaurant ⇒ x visits y."""
    antecedent = (
        PatternBuilder()
        .node("x", CUST)
        .node("x2", CUST)
        .node("y", FRENCH)
        .node("asian", ASIAN)
        .undirected_edge("x", "x2", FRIEND)
        .edge("x", "asian", LIKE)
        .designate(x="x", y="y")
        .build()
    )
    return GPAR(antecedent, consequent_label=VISIT, name="R6")


def rule_r7() -> GPAR:
    """R7 (Fig. 3): R5 extended with city/locality constraints.

    x and its friend x' both like 2 French restaurants, x lives in city c,
    and x' visits a French restaurant y located in c ⇒ x visits y.
    """
    antecedent = (
        PatternBuilder()
        .node("x", CUST)
        .node("x2", CUST)
        .node("c", CITY)
        .node("y", FRENCH)
        .node("fr", FRENCH, copies=2)
        .undirected_edge("x", "x2", FRIEND)
        .edge("x", "fr", LIKE)
        .edge("x2", "fr", LIKE)
        .edge("x", "c", LIVE_IN)
        .edge("y", "c", IN)
        .edge("x2", "y", VISIT)
        .designate(x="x", y="y")
        .build()
    )
    return GPAR(antecedent, consequent_label=VISIT, name="R7")


def rule_r8() -> GPAR:
    """R8 (Fig. 3): R6 extended with city/locality constraints.

    x likes an Asian restaurant, lives in city c, and has a friend x' who
    visits a French restaurant y located in c ⇒ x visits y.
    """
    antecedent = (
        PatternBuilder()
        .node("x", CUST)
        .node("x2", CUST)
        .node("c", CITY)
        .node("y", FRENCH)
        .node("asian", ASIAN)
        .undirected_edge("x", "x2", FRIEND)
        .edge("x", "asian", LIKE)
        .edge("x", "c", LIVE_IN)
        .edge("y", "c", IN)
        .edge("x2", "y", VISIT)
        .designate(x="x", y="y")
        .build()
    )
    return GPAR(antecedent, consequent_label=VISIT, name="R8")


# ----------------------------------------------------------------------
# G2: social accounts and blogs (Fig. 2, right) and rule R4
# ----------------------------------------------------------------------
def graph_g2() -> Graph:
    """The fake-account graph G2."""
    builder = GraphBuilder("G2")
    for acct in ("acct1", "acct2", "acct3", "acct4"):
        builder.node(acct, ACCT)
    for blog in ("p1", "p2", "p3", "p4", "p5", "p6", "p7"):
        builder.node(blog, BLOG)
    builder.node("k1", KEYWORD, {"text": "claim a prize"})
    builder.node("k2", KEYWORD, {"text": "lottery rules"})
    builder.node("fake", FAKE)

    # All four accounts are confirmed fake (so supp(R4) = supp(Q4) as in
    # Example 5), acct4 playing the role of the already-known fake peer.
    for acct in ("acct1", "acct2", "acct3", "acct4"):
        builder.edge(acct, "fake", IS_A)

    # Shared liked blogs (the "blogs P1..Pk" of the rule, k = 2).
    for acct in ("acct1", "acct2", "acct3", "acct4"):
        builder.edge(acct, "p5", LIKE)
        builder.edge(acct, "p6", LIKE)

    # Posts and their keywords.  acct1/acct2 post scam blogs sharing keyword
    # k1, acct2/acct3 post blogs sharing k2, while acct4's post carries no
    # known keyword — so Q4(x, G2) = {acct1, acct2, acct3} as in Example 5.
    builder.edge("acct1", "p1", POST)
    builder.edge("acct2", "p2", POST)
    builder.edge("acct2", "p3", POST)
    builder.edge("acct3", "p4", POST)
    builder.edge("acct4", "p7", POST)
    builder.edge("p1", "k1", CONTAINS)
    builder.edge("p2", "k1", CONTAINS)
    builder.edge("p3", "k2", CONTAINS)
    builder.edge("p4", "k2", CONTAINS)
    return builder.build()


def rule_r4(k: int = 2) -> GPAR:
    """R4: the fake-account detection rule of Example 1/4 (Fig. 1d).

    If account x' is confirmed fake, x and x' like *k* common blogs, x posts
    blog y1, x' posts y2, and y1 and y2 contain the same keyword, then x is
    likely a fake account (consequent ``is_a(x, fake)``).
    """
    antecedent = (
        PatternBuilder()
        .node("x", ACCT)
        .node("x2", ACCT)
        .node("y", FAKE)
        .node("y1", BLOG)
        .node("y2", BLOG)
        .node("shared", BLOG, copies=k)
        .node("w", KEYWORD)
        .edge("x2", "y", IS_A)
        .edge("x", "shared", LIKE)
        .edge("x2", "shared", LIKE)
        .edge("x", "y1", POST)
        .edge("x2", "y2", POST)
        .edge("y1", "w", CONTAINS)
        .edge("y2", "w", CONTAINS)
        .designate(x="x", y="y")
        .build()
    )
    return GPAR(antecedent, consequent_label=IS_A, name="R4")


# ----------------------------------------------------------------------
# Example 6/7: the Ecuador / Shakira-album rule R2 and its small graph
# ----------------------------------------------------------------------
USER = "user"
FAN = "fan"
SHAKIRA_ALBUM = "Shakira album"
OTHER_ALBUM = "album"
COUNTRY = "country"


def example7_graph() -> Graph:
    """The small graph of Examples 6/7: v1 positive, v2 negative, v3 unknown."""
    builder = GraphBuilder("G_ecuador")
    builder.node("Ecuador", COUNTRY)
    builder.node("shakira_album", SHAKIRA_ALBUM)
    builder.node("mj_album", OTHER_ALBUM)
    for user in ("v1", "v2", "v3"):
        builder.node(user, USER)
        builder.edge(user, "Ecuador", LIVE_IN)
    for fan in ("u1", "u2"):
        builder.node(fan, FAN)
        builder.edge(fan, "Ecuador", LIVE_IN)
        builder.edge(fan, "shakira_album", LIKE)
    for user in ("v1", "v2", "v3"):
        for fan in ("u1", "u2"):
            builder.undirected_edge(user, fan, FRIEND)
    # v1 likes the Shakira album (positive), v2 likes only another album
    # (LCWA negative), v3 has no like edge at all (unknown).
    builder.edge("v1", "shakira_album", LIKE)
    builder.edge("v2", "mj_album", LIKE)
    return builder.build()


def example7_rule_r2() -> GPAR:
    """R2: friends living in Ecuador both like the Shakira album ⇒ x likes it."""
    antecedent = (
        PatternBuilder()
        .node("x", USER)
        .node("x1", FAN)
        .node("x2", FAN)
        .node("c", COUNTRY)
        .node("y", SHAKIRA_ALBUM)
        .undirected_edge("x", "x1", FRIEND)
        .undirected_edge("x", "x2", FRIEND)
        .edge("x", "c", LIVE_IN)
        .edge("x1", "c", LIVE_IN)
        .edge("x2", "c", LIVE_IN)
        .edge("x1", "y", LIKE)
        .edge("x2", "y", LIKE)
        .designate(x="x", y="y")
        .build()
    )
    return GPAR(antecedent, consequent_label=LIKE, name="R2")
