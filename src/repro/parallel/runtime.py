"""Bulk-synchronous coordinator/worker runtime with time accounting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.registry import registry
from repro.obs.stats import merge_worker_metrics
from repro.parallel.executor import Executor, SequentialExecutor, WorkerTask
from repro.parallel.worker import WorkerContext
from repro.partition.fragment import Fragment


@dataclass(frozen=True)
class RoundTiming:
    """Timing of one BSP round.

    ``worker_metrics`` carries each worker's shipped statistics delta for
    the round (``None`` entries when ``REPRO_OBS`` collection is off) — the
    per-round view behind the aggregated ``repro_*_total`` counters the
    runtime merges into the process-global registry.
    """

    round_index: int
    worker_times: tuple[float, ...]
    coordinator_time: float
    worker_metrics: tuple = ()

    @property
    def parallel_time(self) -> float:
        """Simulated round time: slowest worker plus coordinator work."""
        slowest = max(self.worker_times) if self.worker_times else 0.0
        return slowest + self.coordinator_time

    @property
    def sequential_time(self) -> float:
        """Total work of the round if it ran on one processor."""
        return sum(self.worker_times) + self.coordinator_time

    @property
    def skew(self) -> float:
        """``(max - min) / max`` of worker times (0 when perfectly even)."""
        if not self.worker_times:
            return 0.0
        slowest = max(self.worker_times)
        if slowest == 0:
            return 0.0
        return (slowest - min(self.worker_times)) / slowest


@dataclass
class RunTimings:
    """Accumulated timings of a whole parallel run."""

    rounds: list[RoundTiming] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def simulated_parallel_time(self) -> float:
        """Σ over rounds of (max worker time + coordinator time)."""
        return sum(round_timing.parallel_time for round_timing in self.rounds)

    @property
    def sequential_time(self) -> float:
        """Σ over rounds of (Σ worker times + coordinator time)."""
        return sum(round_timing.sequential_time for round_timing in self.rounds)

    @property
    def speedup(self) -> float:
        """Sequential / simulated-parallel time (≥ 1 for balanced work)."""
        parallel = self.simulated_parallel_time
        if parallel == 0:
            return 1.0
        return self.sequential_time / parallel

    @property
    def num_rounds(self) -> int:
        """Number of BSP rounds executed."""
        return len(self.rounds)

    def max_worker_skew(self) -> float:
        """Worst per-round worker-time skew (the paper reports ≤ 14.4%)."""
        return max((round_timing.skew for round_timing in self.rounds), default=0.0)


class BSPRuntime:
    """Applies worker functions to fragments round by round.

    A round's work is described by ``(worker_fn, fragment_id, payload)``
    descriptors rather than closures over fragments: the executor owns the
    fragments for the whole run (the process backend ships them to its pool
    exactly once), and each round only sends small per-fragment payloads.
    ``worker_fn(context, payload)`` must be a module-level callable and the
    payloads picklable when a process backend is used.

    Parameters
    ----------
    fragments:
        The fragments produced by :func:`repro.partition.partition_graph`;
        worker i holds ``fragments[i]`` for the whole run.
    executor:
        Execution backend; defaults to :class:`SequentialExecutor`.
    """

    def __init__(self, fragments: Sequence[Fragment], executor: Executor | None = None) -> None:
        self.fragments = list(fragments)
        self.executor = executor if executor is not None else SequentialExecutor()
        self.timings = RunTimings()
        self._run_started: float | None = None
        self._executor_started = False

    @property
    def num_workers(self) -> int:
        """Number of workers (= fragments)."""
        return len(self.fragments)

    def start_run(self) -> None:
        """Mark the start of the run and bring up the execution backend."""
        self._run_started = time.perf_counter()
        self.timings = RunTimings()
        if not self._executor_started:
            self.executor.start(self.fragments)
            self._executor_started = True

    def finish_run(self) -> RunTimings:
        """Close the run, release the backend and return the timings.

        Safe to call from a ``finally`` block: a second call is a no-op that
        returns the already-closed timings.
        """
        if self._run_started is not None:
            self.timings.wall_time = time.perf_counter() - self._run_started
            self._run_started = None
        if self._executor_started:
            self.executor.shutdown()
            self._executor_started = False
        return self.timings

    def run_round(
        self,
        worker_fn: Callable[[WorkerContext, object], object],
        payloads: Sequence[object] | None = None,
        coordinator_fn: Callable[[list[object]], object] | None = None,
    ) -> object:
        """Run one BSP round.

        *worker_fn* is applied to every fragment's context with the matching
        entry of *payloads* (``None`` payloads when omitted) — the
        "computation" phase; *coordinator_fn* receives the list of worker
        results (the "barrier synchronisation" phase) and its return value is
        the round's result.
        """
        if self._run_started is None:
            self.start_run()
        if payloads is None:
            payloads = [None] * len(self.fragments)
        if len(payloads) != len(self.fragments):
            raise ValueError(
                f"expected {len(self.fragments)} payloads, got {len(payloads)}"
            )
        tasks = [
            WorkerTask(worker_fn, fragment.index, payload)
            for fragment, payload in zip(self.fragments, payloads)
        ]
        worker_results, durations, metrics = self.executor.run(tasks)
        if any(metrics):
            merge_worker_metrics(registry(), metrics)
        coordinator_started = time.perf_counter()
        outcome: object = worker_results
        if coordinator_fn is not None:
            outcome = coordinator_fn(worker_results)
        coordinator_elapsed = time.perf_counter() - coordinator_started
        self.timings.rounds.append(
            RoundTiming(
                round_index=len(self.timings.rounds),
                worker_times=tuple(durations),
                coordinator_time=coordinator_elapsed,
                worker_metrics=tuple(metrics),
            )
        )
        return outcome
