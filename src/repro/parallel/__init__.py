"""Simulated coordinator/worker BSP runtime.

The paper runs DMine and Match on an n-node cluster; this reproduction runs
the same bulk-synchronous structure on one machine.  Each round applies a
worker function to every fragment, records the per-worker compute time, and
accounts the round's *simulated parallel time* as the maximum worker time
plus the coordinator's assembling time.  Speedup-versus-n benchmarks use the
simulated time, which makes the scaling curves deterministic and independent
of how many physical cores the benchmark machine has; wall-clock time is
recorded alongside for reference.
"""

from repro.parallel.executor import Executor, SequentialExecutor, ThreadPoolExecutorBackend
from repro.parallel.messages import RuleMessage
from repro.parallel.runtime import BSPRuntime, RoundTiming, RunTimings

__all__ = [
    "Executor",
    "SequentialExecutor",
    "ThreadPoolExecutorBackend",
    "RuleMessage",
    "BSPRuntime",
    "RoundTiming",
    "RunTimings",
]
