"""Coordinator/worker BSP runtime with pluggable execution backends.

The paper runs DMine and Match on an n-node cluster; this reproduction runs
the same bulk-synchronous structure on one machine.  Each round applies a
worker function to every fragment, records the per-worker compute time, and
accounts the round's *simulated parallel time* as the maximum worker time
plus the coordinator's assembling time.  Speedup-versus-n benchmarks use the
simulated time, which makes the scaling curves deterministic and independent
of how many physical cores the benchmark machine has; wall-clock time is
recorded alongside, and the ``processes`` backend turns it into a *real*
multi-core measurement (see ``docs/parallel.md``).
"""

from repro.parallel.executor import (
    BACKENDS,
    Executor,
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
    WorkerTask,
    make_executor,
)
from repro.parallel.messages import (
    EvaluatePayload,
    Proposal,
    ProposePayload,
    RuleFocus,
    RuleMessage,
)
from repro.parallel.runtime import BSPRuntime, RoundTiming, RunTimings
from repro.parallel.worker import WorkerContext, init_worker, run_task

__all__ = [
    "BACKENDS",
    "Executor",
    "SequentialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "WorkerTask",
    "WorkerContext",
    "make_executor",
    "init_worker",
    "run_task",
    "RuleMessage",
    "RuleFocus",
    "Proposal",
    "ProposePayload",
    "EvaluatePayload",
    "BSPRuntime",
    "RoundTiming",
    "RunTimings",
]
