"""Messages exchanged between workers and the coordinator (Section 4.2).

A worker reports, for every GPAR it generated or evaluated locally, the
triple ``<R, conf, flag>`` of the paper: the rule, the local support counts
needed to assemble the global confidence, and whether the rule can still be
extended at this worker.  The local match sets of the designated node are
included so the coordinator can compute the diversification distance
``diff(R, R')`` (Jaccard over match sets) — exactly the information shown in
the message tables of Example 9.

Everything in this module is a frozen dataclass built from picklable parts
(patterns, frozensets, ints) so the same messages can cross a process
boundary on the multiprocessing backend.  The payload types describe one
round's worth of coordinator → worker instructions; they carry witness
*sets of node ids*, never graphs, which keeps per-round IPC small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.pattern.gpar import GPAR

NodeId = Hashable


@dataclass(frozen=True)
class RuleMessage:
    """Per-rule, per-fragment message ``<R, conf, flag>``."""

    rule: GPAR
    fragment_index: int
    supp_r: int = 0
    supp_antecedent: int = 0
    supp_q_qbar: int = 0
    supp_q: int = 0
    supp_q_bar: int = 0
    extendable: bool = False
    # Witness sets (owned centres only), used for diff() and for Σ(x, G, η).
    rule_matches: frozenset = frozenset()
    antecedent_matches: frozenset = frozenset()
    qbar_matches: frozenset = frozenset()
    # Upper-bound support for the message-reduction rules (Lemma 3): owned
    # centres matching R that still have unexplored structure at hop r + 1.
    upper_support: int = 0

    def payload_size(self) -> int:
        """Rough message size (number of ids + counters), for reporting."""
        return (
            7
            + len(self.rule_matches)
            + len(self.antecedent_matches)
            + len(self.qbar_matches)
        )


@dataclass(frozen=True)
class RuleFocus:
    """Coordinator → worker guidance for expanding one rule at one fragment.

    ``centers`` is the fragment's match set of the rule from the previous
    round — the centres worth expanding around.  ``None`` means "no
    previous-round knowledge": the worker falls back to its local positive
    centres.  (The anti-monotone evaluation pools travel separately in
    :class:`EvaluatePayload`, which only ships them for the deduplicated
    representatives actually being evaluated.)
    """

    centers: frozenset | None = None


@dataclass(frozen=True)
class Proposal:
    """One proposed extension, tagged with the message-set rule it extends."""

    rule: GPAR
    parent_index: int


@dataclass(frozen=True)
class ProposePayload:
    """Round payload for the propose half-round (coordinator → worker).

    ``focus`` is parallel to ``rules``.  ``predicate`` and ``config`` let a
    cold worker process rebuild its per-fragment miner deterministically.
    """

    rules: tuple[GPAR, ...]
    focus: tuple[RuleFocus, ...]
    predicate: object
    config: object


@dataclass(frozen=True)
class EvaluatePayload:
    """Round payload for the evaluate half-round (coordinator → worker).

    ``pools`` is parallel to ``rules``: the inherited candidate pool for each
    representative at this fragment (``None`` → the fragment's full
    candidate set).  ``parents`` (also parallel to ``rules``, empty when the
    incremental path is off) names the message-set rule each representative
    was proposed from *at this fragment*, so the worker can delta-extend the
    parent's materialized matches instead of re-matching from scratch; a
    ``None`` parent means "no materialized lineage here — full match".
    Only rule objects travel, never match stores: the stores are
    fragment-resident and rebuilt from the fragment on a cache miss.
    """

    rules: tuple[GPAR, ...]
    pools: tuple[frozenset | None, ...]
    predicate: object
    config: object
    parents: tuple[GPAR | None, ...] = ()
