"""Messages exchanged between workers and the coordinator (Section 4.2).

A worker reports, for every GPAR it generated or evaluated locally, the
triple ``<R, conf, flag>`` of the paper: the rule, the local support counts
needed to assemble the global confidence, and whether the rule can still be
extended at this worker.  The local match sets of the designated node are
included so the coordinator can compute the diversification distance
``diff(R, R')`` (Jaccard over match sets) — exactly the information shown in
the message tables of Example 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.pattern.gpar import GPAR

NodeId = Hashable


@dataclass
class RuleMessage:
    """Per-rule, per-fragment message ``<R, conf, flag>``."""

    rule: GPAR
    fragment_index: int
    supp_r: int = 0
    supp_antecedent: int = 0
    supp_q_qbar: int = 0
    supp_q: int = 0
    supp_q_bar: int = 0
    extendable: bool = False
    # Witness sets (owned centres only), used for diff() and for Σ(x, G, η).
    rule_matches: set = field(default_factory=set)
    antecedent_matches: set = field(default_factory=set)
    qbar_matches: set = field(default_factory=set)
    # Upper-bound support for the message-reduction rules (Lemma 3): owned
    # centres matching R that still have unexplored structure at hop r + 1.
    upper_support: int = 0

    def payload_size(self) -> int:
        """Rough message size (number of ids + counters), for reporting."""
        return (
            7
            + len(self.rule_matches)
            + len(self.antecedent_matches)
            + len(self.qbar_matches)
        )
