"""Worker-side execution context and the process-pool task runner.

The process backend keeps a **persistent** pool for a whole BSP run: each
worker process receives the fragment list exactly once, at pool start, via
the :func:`init_worker` initializer which stores them in a module-level
registry.  Every subsequent round ships only a small picklable
``(worker_fn, fragment_id, payload)`` descriptor — never the graph — and the
worker resolves ``fragment_id`` against its local registry.

The initializer also builds each fragment's resident
:class:`repro.graph.index.FragmentIndex` (label buckets, adjacency profiles,
sketch cache) unless index building was disabled, so the matching hot path
probes a warm index that lives with the fragment for the pool's lifetime and
never crosses the pickle boundary.

Per-fragment scratch state (a ``LocalMiner``, a matcher with warm caches,
the incremental :class:`repro.matching.incremental.MatchStore` holding the
previous level's materialized matches) lives in a :class:`WorkerContext`
that survives across rounds for the lifetime of the pool; like the index,
a match store is fragment-resident and never pickled — it fills during
evaluation and a cold worker simply falls back to full matching.  Because a pool may route any fragment's task to any
of its processes, worker functions must treat that state strictly as a
cache: anything stored there has to be *deterministically reconstructible*
from the fragment and the payload, so a cache miss in a different process
yields identical results.  Cross-round algorithm state therefore lives at
the coordinator and travels inside payloads.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.stats import collect_process_metrics, collection_enabled
from repro.partition.fragment import Fragment

# Registry populated once per worker process by ``init_worker``.
_FRAGMENTS: dict[int, Fragment] = {}
_CONTEXTS: dict[int, "WorkerContext"] = {}

#: Status tags of the tuples :func:`run_task` sends back to the parent.
TASK_OK = "ok"
TASK_ERROR = "error"


@dataclass
class WorkerContext:
    """One worker's view of its fragment plus pool-lifetime scratch state."""

    fragment: Fragment
    state: dict = field(default_factory=dict)

    def cached(self, key, factory: Callable[[], object]) -> object:
        """Return ``state[key]``, building it with *factory* on first use.

        The value must be a pure function of the fragment and *key*; see the
        module docstring for why.
        """
        try:
            return self.state[key]
        except KeyError:
            value = self.state[key] = factory()
            return value


def init_worker(
    fragments: Sequence[Fragment],
    build_indexes: bool = True,
    build_columnar: bool = True,
) -> None:
    """Pool initializer: install *fragments* in this process's registry.

    With *build_indexes* (the default) each fragment's resident
    :class:`~repro.graph.index.FragmentIndex` is built here, once per worker
    process, so every round's matching work starts from a warm index;
    *build_columnar* does the same for the resident
    :class:`~repro.graph.columnar.ColumnarFragment` views.
    """
    from repro.graph.columnar import columnar_view
    from repro.graph.index import graph_index

    _FRAGMENTS.clear()
    _CONTEXTS.clear()
    for fragment in fragments:
        _FRAGMENTS[fragment.index] = fragment
        if build_indexes:
            graph_index(fragment.graph)
        if build_columnar:
            columnar_view(fragment.graph)


def context_for(fragment_id: int) -> WorkerContext:
    """The persistent :class:`WorkerContext` for *fragment_id* (KeyError if unknown)."""
    context = _CONTEXTS.get(fragment_id)
    if context is None:
        context = _CONTEXTS[fragment_id] = WorkerContext(_FRAGMENTS[fragment_id])
    return context


def run_task(worker_fn: Callable, fragment_id: int, payload: object) -> tuple:
    """Execute one task inside a worker process.

    Returns ``("ok", result, seconds, metrics)`` on success or
    ``("error", text, 0.0, None)`` on failure — errors travel back as plain
    strings because the original exception (or its traceback) may not
    survive pickling; the parent wraps them in
    :class:`repro.exceptions.WorkerError`.

    ``metrics`` is the process's watermarked statistics delta
    (:func:`repro.obs.stats.collect_process_metrics`) when ``REPRO_OBS``
    collection is on, else ``None`` — the coordinator merges the shipped
    deltas into its global registry so process-pool runs aggregate exactly
    like sequential ones.

    The duration is measured *around the worker function only*, so the
    simulated parallel-time accounting excludes pool dispatch and IPC.
    """
    try:
        context = context_for(fragment_id)
        started = time.perf_counter()
        result = worker_fn(context, payload)
        elapsed = time.perf_counter() - started
        metrics = collect_process_metrics() if collection_enabled() else None
        return (TASK_OK, result, elapsed, metrics)
    except Exception:
        return (TASK_ERROR, traceback.format_exc(), 0.0, None)
