"""Execution backends for the BSP runtime.

The sequential executor is the default: it runs worker functions one after
another while timing each, which is all the simulated-parallel-time model
needs.  A thread-pool backend is provided for callers who want real
concurrency (useful when worker functions release the GIL or do I/O); the
algorithms are backend-agnostic.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence


class Executor(ABC):
    """Runs a batch of zero-argument tasks and reports per-task durations."""

    @abstractmethod
    def run(self, tasks: Sequence[Callable[[], object]]) -> tuple[list[object], list[float]]:
        """Execute *tasks*; return (results, per-task elapsed seconds)."""


class SequentialExecutor(Executor):
    """Run tasks one at a time (default backend)."""

    def run(self, tasks: Sequence[Callable[[], object]]) -> tuple[list[object], list[float]]:
        results: list[object] = []
        durations: list[float] = []
        for task in tasks:
            started = time.perf_counter()
            results.append(task())
            durations.append(time.perf_counter() - started)
        return results, durations


class ThreadPoolExecutorBackend(Executor):
    """Run tasks on a thread pool.

    Per-task durations are measured inside each task, so the simulated
    parallel-time accounting stays meaningful even under real concurrency.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers

    def run(self, tasks: Sequence[Callable[[], object]]) -> tuple[list[object], list[float]]:
        results: list[object | None] = [None] * len(tasks)
        durations: list[float] = [0.0] * len(tasks)

        def timed(index: int, task: Callable[[], object]) -> None:
            started = time.perf_counter()
            results[index] = task()
            durations[index] = time.perf_counter() - started

        if not tasks:
            return [], []
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(timed, index, task) for index, task in enumerate(tasks)]
            for future in futures:
                future.result()
        return list(results), durations
