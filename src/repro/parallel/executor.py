"""Execution backends for the BSP runtime.

All backends share one contract: :meth:`Executor.start` receives the
fragments once per run, :meth:`Executor.run` executes a batch of
:class:`WorkerTask` descriptors — ``(worker_fn, fragment_id, payload)``, no
closures over graphs — and :meth:`Executor.shutdown` releases any pooled
resources.  Worker functions take ``(context, payload)`` where the
:class:`~repro.parallel.worker.WorkerContext` persists across rounds.

* :class:`SequentialExecutor` runs tasks one after another while timing
  each, which is all the simulated-parallel-time model needs (default).
* :class:`ThreadPoolExecutorBackend` gives real concurrency when worker
  functions release the GIL or do I/O.
* :class:`ProcessPoolExecutorBackend` gives real multi-core parallelism: a
  persistent ``multiprocessing`` pool whose processes hold the fragments for
  the whole run, so per-round messages stay small.  Worker functions must be
  module-level (picklable by reference) and payloads picklable.

Worker exceptions are wrapped in :class:`repro.exceptions.WorkerError`
carrying the fragment id, on every backend.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import ExecutorError, WorkerError
from repro.obs.stats import collect_process_metrics, collection_enabled
from repro.parallel.worker import TASK_OK, WorkerContext, init_worker, run_task
from repro.partition.fragment import Fragment

#: Names accepted by :func:`make_executor` (and the ``--backend`` CLI flag).
BACKENDS = ("sequential", "threads", "processes")


@dataclass(frozen=True)
class WorkerTask:
    """One unit of round work: apply *fn* to a fragment's context.

    ``fn`` must be a module-level callable and ``payload`` picklable for the
    process backend; the sequential and thread backends accept anything.
    """

    fn: Callable[[WorkerContext, object], object]
    fragment_id: int
    payload: object = None


class Executor(ABC):
    """Runs batches of :class:`WorkerTask` and reports per-task durations.

    ``build_indexes`` (default ``True``) makes :meth:`start` build each
    fragment's resident :class:`repro.graph.index.FragmentIndex` up front —
    in the worker-pool initializer for the process backend, in-process for
    the sequential/thread backends — so every backend begins its first round
    with warm fragment indexes.  ``build_columnar`` does the same for the
    resident :class:`repro.graph.columnar.ColumnarFragment` views.
    """

    name = "abstract"
    build_indexes = True
    build_columnar = True
    # The process backend builds indexes inside its pool initializer instead
    # of in the coordinator process (where the fragments are never matched).
    _warm_indexes_in_parent = True

    def start(self, fragments: Sequence[Fragment]) -> None:
        """Receive the run's fragments; called once before the first round."""
        self._contexts = {
            fragment.index: WorkerContext(fragment) for fragment in fragments
        }
        if self._warm_indexes_in_parent:
            if self.build_indexes:
                from repro.graph.index import graph_index

                for fragment in fragments:
                    graph_index(fragment.graph)
            if self.build_columnar:
                from repro.graph.columnar import columnar_view

                for fragment in fragments:
                    columnar_view(fragment.graph)

    def shutdown(self) -> None:
        """Release pooled resources; called once after the last round."""

    @abstractmethod
    def run(
        self, tasks: Sequence[WorkerTask]
    ) -> tuple[list[object], list[float], list[dict | None]]:
        """Execute *tasks*; return (results, per-task seconds, metric deltas).

        The third list carries each task's shipped statistics delta
        (:func:`repro.obs.stats.collect_process_metrics`), ``None`` entries
        when ``REPRO_OBS`` collection is off.
        """

    # -- shared helper for the in-process backends --------------------------
    def _context(self, fragment_id: int) -> WorkerContext:
        try:
            return self._contexts[fragment_id]
        except (AttributeError, KeyError):
            raise ExecutorError(
                f"unknown fragment id {fragment_id!r}; was start() called with the run's fragments?"
            ) from None

    def _run_in_process(self, task: WorkerTask) -> tuple[object, float, dict | None]:
        context = self._context(task.fragment_id)
        started = time.perf_counter()
        try:
            result = task.fn(context, task.payload)
        except Exception as exc:
            raise WorkerError(task.fragment_id, f"{type(exc).__name__}: {exc}") from exc
        elapsed = time.perf_counter() - started
        metrics = collect_process_metrics() if collection_enabled() else None
        return result, elapsed, metrics


class SequentialExecutor(Executor):
    """Run tasks one at a time (default backend)."""

    name = "sequential"

    def run(
        self, tasks: Sequence[WorkerTask]
    ) -> tuple[list[object], list[float], list[dict | None]]:
        results: list[object] = []
        durations: list[float] = []
        metrics: list[dict | None] = []
        for task in tasks:
            result, elapsed, delta = self._run_in_process(task)
            results.append(result)
            durations.append(elapsed)
            metrics.append(delta)
        return results, durations, metrics


class ThreadPoolExecutorBackend(Executor):
    """Run tasks on a persistent thread pool.

    The pool is created by :meth:`start` and reused across every round of
    the run (mirroring the process backend, so thread-vs-process wall-clock
    comparisons pay the same lifecycle costs).  Per-task durations are
    measured inside each task, so the simulated parallel-time accounting
    stays meaningful even under real concurrency.  A worker exception is
    re-raised as :class:`WorkerError` instead of being left behind as a
    ``None`` result.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def start(self, fragments: Sequence[Fragment]) -> None:
        super().start(fragments)
        self.shutdown()
        workers = self.max_workers
        if workers is None:
            workers = min(len(fragments) or 1, os.cpu_count() or 1)
        self._pool = ThreadPoolExecutor(max_workers=max(1, workers))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def run(
        self, tasks: Sequence[WorkerTask]
    ) -> tuple[list[object], list[float], list[dict | None]]:
        if not tasks:
            return [], [], []
        # Tolerate direct use without the start()/shutdown() lifecycle.
        pool = self._pool if self._pool is not None else ThreadPoolExecutor(self.max_workers)
        try:
            futures = [pool.submit(self._run_in_process, task) for task in tasks]
            outcomes = [future.result() for future in futures]
        finally:
            if pool is not self._pool:
                pool.shutdown(wait=True)
        return (
            [result for result, _, _ in outcomes],
            [elapsed for _, elapsed, _ in outcomes],
            [delta for _, _, delta in outcomes],
        )


def _default_start_method() -> str:
    """``fork`` on Linux (cheap, no re-import), else ``spawn``.

    macOS offers ``fork`` but CPython documents it as unsafe there (system
    frameworks may deadlock in forked children), so everything that is not
    Linux gets ``spawn``.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and sys.platform.startswith("linux"):
        return "fork"
    return "spawn"


class ProcessPoolExecutorBackend(Executor):
    """Run tasks on a persistent multi-process pool (real parallelism).

    The pool is created by :meth:`start` with the fragments shipped once via
    the :func:`repro.parallel.worker.init_worker` initializer; it stays warm
    until :meth:`shutdown`, so a multi-round BSP run pays the fork/pickle
    cost once rather than per round.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``min(num_fragments, cpu_count)``.
    start_method:
        ``multiprocessing`` start method (``fork``/``spawn``/``forkserver``);
        defaults to ``fork`` where the platform offers it.
    """

    name = "processes"
    _warm_indexes_in_parent = False

    def __init__(self, max_workers: int | None = None, start_method: str | None = None) -> None:
        self.max_workers = max_workers
        self.start_method = start_method
        self._pool = None

    def start(self, fragments: Sequence[Fragment]) -> None:
        super().start(fragments)
        self.shutdown()
        fragment_list = list(fragments)
        processes = self.max_workers
        if processes is None:
            processes = min(len(fragment_list), os.cpu_count() or 1)
        processes = max(1, min(processes, len(fragment_list) or 1))
        context = multiprocessing.get_context(self.start_method or _default_start_method())
        # concurrent.futures rather than multiprocessing.Pool: a worker that
        # dies abruptly (segfault, OOM kill) breaks the pending futures with
        # BrokenProcessPool instead of hanging result retrieval forever.
        self._pool = ProcessPoolExecutor(
            max_workers=processes,
            mp_context=context,
            initializer=init_worker,
            initargs=(fragment_list, self.build_indexes, self.build_columnar),
        )

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def run(
        self, tasks: Sequence[WorkerTask]
    ) -> tuple[list[object], list[float], list[dict | None]]:
        if not tasks:
            return [], [], []
        if self._pool is None:
            raise ExecutorError(
                "process pool not started; call start(fragments) before run()"
            )
        futures = [
            self._pool.submit(run_task, task.fn, task.fragment_id, task.payload)
            for task in tasks
        ]
        results: list[object] = []
        durations: list[float] = []
        metrics: list[dict | None] = []
        for task, future in zip(tasks, futures):
            try:
                status, value, elapsed, delta = future.result()
            except BrokenProcessPool as exc:
                raise WorkerError(
                    task.fragment_id, f"worker process died abruptly: {exc}"
                ) from exc
            if status != TASK_OK:
                raise WorkerError(task.fragment_id, value)
            results.append(value)
            durations.append(elapsed)
            metrics.append(delta)
        return results, durations, metrics


def make_executor(
    backend: str,
    max_workers: int | None = None,
    build_indexes: bool = True,
    build_columnar: bool = True,
) -> Executor:
    """Instantiate the execution backend named by a config/CLI string.

    *build_indexes* controls whether the backend builds the fragments'
    resident :class:`repro.graph.index.FragmentIndex` at start (see
    :class:`Executor`); algorithm configs pass their ``use_index`` flag here
    so unindexed baseline runs skip the build entirely.  *build_columnar*
    does the same for the resident columnar views (the ``use_columnar``
    flag of the algorithm configs).
    """
    if backend == "sequential":
        executor: Executor = SequentialExecutor()
    elif backend == "threads":
        executor = ThreadPoolExecutorBackend(max_workers=max_workers)
    elif backend == "processes":
        executor = ProcessPoolExecutorBackend(max_workers=max_workers)
    else:
        raise ExecutorError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    executor.build_indexes = build_indexes
    executor.build_columnar = build_columnar
    return executor
