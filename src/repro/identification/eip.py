"""EIP problem definition, configuration and result types."""

from __future__ import annotations

import base64
import binascii
import json
import math
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.exceptions import IdentificationError
from repro.graph.graph import Graph
from repro.parallel.executor import BACKENDS
from repro.parallel.runtime import RunTimings
from repro.pattern.gpar import GPAR

NodeId = Hashable


@dataclass(frozen=True)
class EIPConfig:
    """Parameters of an entity-identification run.

    Attributes
    ----------
    eta:
        Confidence bound η > 0; only rules with ``conf(R, G) >= eta``
        contribute identified entities.
    num_workers:
        Number of fragments / processors n.
    seed:
        Partitioning tie-break seed.
    backend:
        Execution backend: ``"sequential"`` (default), ``"threads"`` or
        ``"processes"`` (real multi-core parallelism).  All backends
        produce identical matches.
    executor_workers:
        Pool size for the thread/process backends; ``None`` sizes the pool
        to ``min(num_workers, cpu_count)``.
    use_index:
        Serve matcher probes from each fragment's resident
        :class:`repro.graph.index.FragmentIndex` (built in the worker-pool
        initializer on the process backend).  ``False`` re-derives label
        sets, profiles and sketches per probe; both settings identify
        identical entities (see docs/indexing.md).
    use_columnar:
        Serve label-bucket candidate pools and the shared profile filter
        from each fragment's resident
        :class:`repro.graph.columnar.ColumnarFragment` (CSR adjacency and
        interned-label profile matrix, vectorized when numpy is available).
        ``False`` keeps the dict/per-probe path; both settings identify
        identical entities (see docs/columnar.md).
    use_incremental:
        Evaluate Σ through the prefix-trie mode of
        :class:`repro.matching.MultiPatternMatcher`: rules with a shared
        consequent share their antecedent-prefix match sets instead of being
        matched rule-at-a-time.  Consumed by the ``Match`` solver (the
        baselines keep their paper cost profiles); both settings identify
        identical entities (see docs/incremental.md).
    """

    eta: float = 1.0
    num_workers: int = 4
    seed: int = 0
    backend: str = "sequential"
    executor_workers: int | None = None
    use_index: bool = True
    use_columnar: bool = True
    use_incremental: bool = True

    def __post_init__(self) -> None:
        if self.eta <= 0:
            raise IdentificationError(f"eta must be > 0, got {self.eta}")
        if self.num_workers < 1:
            raise IdentificationError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.backend not in BACKENDS:
            raise IdentificationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.executor_workers is not None and self.executor_workers < 1:
            raise IdentificationError(
                f"executor_workers must be >= 1, got {self.executor_workers}"
            )


@dataclass(frozen=True)
class AnswerEntry:
    """One (entity, rule) pair of a paginated EIP answer.

    ``rule_index`` is the rule's position in Σ (the order the rules were
    given to the run), so two runs over the same Σ enumerate entries in the
    same total order regardless of set iteration order.
    """

    entity: NodeId
    rule_index: int
    rule_name: str
    confidence: float

    def as_dict(self) -> dict:
        """JSON-friendly form (entity rendered as a string)."""
        confidence = self.confidence
        return {
            "entity": str(self.entity),
            "rule_index": self.rule_index,
            "rule": self.rule_name,
            "confidence": "inf" if math.isinf(confidence) else round(confidence, 9),
        }


@dataclass(frozen=True)
class AnswerPage:
    """One page of a paginated EIP answer (see :meth:`EIPResult.pages`)."""

    entries: tuple[AnswerEntry, ...]
    next_cursor: str | None
    total: int

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def _encode_cursor(payload: list) -> str:
    """Opaque, URL-safe cursor encoding (stable across processes)."""
    raw = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def _decode_cursor(cursor: str) -> list:
    try:
        raw = base64.urlsafe_b64decode(cursor.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeDecodeError) as exc:
        raise IdentificationError(f"malformed answer cursor {cursor!r}") from exc
    if not isinstance(payload, list) or len(payload) != 2:
        raise IdentificationError(f"malformed answer cursor {cursor!r}")
    return payload


@dataclass
class EIPResult:
    """Output of an EIP run."""

    identified: set = field(default_factory=set)
    rule_confidences: dict[GPAR, float] = field(default_factory=dict)
    rule_matches: dict[GPAR, frozenset] = field(default_factory=dict)
    accepted_rules: list[GPAR] = field(default_factory=list)
    timings: RunTimings = field(default_factory=RunTimings)
    candidates_examined: int = 0
    #: Prefix-trie pool applications across all fragments; > 0 proves the
    #: shared-prefix path actually ran (the ``incremental`` bench family
    #: gates on this for census-split Σ).
    prefix_pool_hits: int = 0

    def confidence_of(self, rule: GPAR) -> float:
        """Global confidence computed for *rule* (KeyError if unknown)."""
        return self.rule_confidences[rule]

    # ------------------------------------------------------------------
    # pagination
    # ------------------------------------------------------------------
    def answer_entries(self) -> list[AnswerEntry]:
        """Every (entity, accepted rule) pair in the deterministic total order.

        The order is ``(str(entity id), rule index in Σ)``; set iteration
        order never leaks into it, so two byte-identical results enumerate
        byte-identical entry sequences (the property the paginated serving
        layer and its consistency tests rely on).
        """
        order = {rule: index for index, rule in enumerate(self.rule_confidences)}
        entries = [
            AnswerEntry(
                entity=entity,
                rule_index=order[rule],
                rule_name=rule.name,
                confidence=self.rule_confidences[rule],
            )
            for rule in self.accepted_rules
            for entity in self.rule_matches.get(rule, frozenset())
        ]
        entries.sort(key=lambda entry: (str(entry.entity), entry.rule_index))
        return entries

    def pages(self, cursor: str | None = None, limit: int = 100) -> AnswerPage:
        """One page of the answer, resuming after an opaque *cursor*.

        Entries are the ``(entity, rule)`` pairs of every accepted rule's
        match set, in the deterministic ``(entity id, rule index)`` order of
        :meth:`answer_entries`.  The returned ``next_cursor`` encodes the
        last entry's sort key (not an offset), so a page sequence is stable
        under re-enumeration; ``None`` marks the final page.  Raises
        :class:`IdentificationError` on a malformed cursor.
        """
        if limit < 1:
            raise IdentificationError(f"page limit must be >= 1, got {limit}")
        entries = self.answer_entries()
        start = 0
        if cursor is not None:
            last_entity, last_index = _decode_cursor(cursor)
            key = (str(last_entity), int(last_index))
            # First entry strictly after the cursor's key (bisection would
            # need a parallel key list; answers are small enough to scan).
            while start < len(entries):
                entry = entries[start]
                if (str(entry.entity), entry.rule_index) > key:
                    break
                start += 1
        page = tuple(entries[start : start + limit])
        next_cursor = None
        if start + limit < len(entries) and page:
            tail = page[-1]
            next_cursor = _encode_cursor([str(tail.entity), tail.rule_index])
        return AnswerPage(entries=page, next_cursor=next_cursor, total=len(entries))

    def summary(self) -> str:
        """Human-readable run summary used by examples."""
        lines = [
            f"identified {len(self.identified)} potential customers "
            f"from {len(self.rule_confidences)} rules "
            f"({len(self.accepted_rules)} above the confidence bound)"
        ]
        for rule in self.accepted_rules:
            confidence = self.rule_confidences[rule]
            conf = "inf" if math.isinf(confidence) else f"{confidence:.3f}"
            lines.append(
                f"  {rule.name}: conf={conf} matches={len(self.rule_matches[rule])}"
            )
        return "\n".join(lines)


def _shared_predicate(rules: Sequence[GPAR]) -> GPAR:
    """Validate that all rules pertain to the same predicate; return one of them."""
    if not rules:
        raise IdentificationError("EIP needs at least one GPAR")
    first = rules[0]
    signature = (first.x_label, first.consequent_label, first.y_label)
    for rule in rules[1:]:
        if (rule.x_label, rule.consequent_label, rule.y_label) != signature:
            raise IdentificationError(
                "all GPARs in Σ must pertain to the same predicate q(x, y); "
                f"{rule.name} differs from {first.name}"
            )
    return first


def identify_entities(
    graph: Graph,
    rules: Sequence[GPAR],
    eta: float = 1.0,
    num_workers: int = 4,
    algorithm: str = "match",
    seed: int = 0,
    backend: str = "sequential",
    executor_workers: int | None = None,
    use_index: bool = True,
    use_columnar: bool = True,
    use_incremental: bool = True,
) -> EIPResult:
    """Solve EIP with the named algorithm (``match``, ``matchc`` or ``disvf2``)."""
    from repro.identification.disvf2 import DisVF2
    from repro.identification.match import Match
    from repro.identification.matchc import MatchC

    config = EIPConfig(
        eta=eta,
        num_workers=num_workers,
        seed=seed,
        backend=backend,
        executor_workers=executor_workers,
        use_index=use_index,
        use_columnar=use_columnar,
        use_incremental=use_incremental,
    )
    algorithms = {"match": Match, "matchc": MatchC, "disvf2": DisVF2}
    try:
        implementation = algorithms[algorithm.lower()]
    except KeyError:
        raise IdentificationError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(algorithms)}"
        ) from None
    return implementation(config).identify(graph, list(rules))
