"""``Match``: Matchc plus the optimisations of Section 5.2.

Three optimisations over :class:`repro.identification.MatchC`:

* **early termination** — candidates are accepted on the first witnessing
  match (inherited from the anchored matcher interface, but here combined
  with the pruning below so far fewer search states are expanded);
* **guided search** — the sketch-guided matcher orders and prunes candidate
  assignments by k-hop neighbourhood sketches;
* **shared work across Σ** — the labelled adjacency profile of each
  candidate is computed once and checked against every rule's required
  profile (a necessary condition) before any isomorphism search runs, the
  common sub-pattern sharing of [Le et al. 2012] in spirit.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.graph.columnar import columnar_view
from repro.graph.index import graph_index
from repro.matching.base import Matcher
from repro.matching.candidates import adjacency_profile, profile_satisfies, required_profile
from repro.matching.guided import GuidedMatcher
from repro.matching.multi import MultiPatternMatcher
from repro.metrics.lcwa import predicate_stats_over
from repro.identification.eip import EIPConfig
from repro.identification.matchc import MatchC, _FragmentReport
from repro.partition.fragment import Fragment
from repro.pattern.gpar import GPAR

NodeId = Hashable


class Match(MatchC):
    """Optimised parallel EIP solver (the paper's ``Match``)."""

    # The guided matcher runs directly on each fragment graph, so the
    # worker-initializer index build pays off here (unlike MatchC's
    # ball-restricted search).
    _consumes_resident_index = True
    _consumes_columnar = True

    def __init__(self, config: EIPConfig, sketch_hops: int = 2) -> None:
        super().__init__(config)
        self.sketch_hops = sketch_hops

    def _make_matcher(self, max_radius: int) -> Matcher:
        # The fragment itself is the locality unit (it is the union of the
        # owned candidates' d-balls); running the guided matcher directly on
        # it lets the k-hop sketch cache be shared across all candidates and
        # all rules of Σ instead of being rebuilt per extracted ball.
        return GuidedMatcher(
            sketch_hops=self.sketch_hops,
            use_index=self.config.use_index,
            use_columnar=self.config.use_columnar,
        )

    def _verify_fragment(
        self,
        fragment: Fragment,
        rules: Sequence[GPAR],
        matcher: Matcher,
        predicate,
    ) -> _FragmentReport:
        if self.config.use_incremental and rules:
            return self._verify_fragment_shared(fragment, rules, matcher, predicate)
        graph = fragment.graph
        index = graph_index(graph) if self.config.use_index else None
        stats = predicate_stats_over(graph, predicate, fragment.owned_centers)
        owned = set(stats.positives) | set(stats.negatives) | set(stats.unknown)
        report = _FragmentReport(fragment_index=fragment.index)
        local_positives = set(stats.positives)
        local_negatives = set(stats.negatives)
        report.positives = local_positives
        report.negatives = local_negatives
        report.supp_q = len(local_positives)
        report.supp_q_bar = len(local_negatives)

        columnar = (
            columnar_view(graph)
            if self.config.use_columnar and not graph.in_batch
            else None
        )
        rule_matches: dict[GPAR, set[NodeId]] = {rule: set() for rule in rules}
        antecedent_sets: dict[GPAR, set[NodeId]] = {rule: set() for rule in rules}
        qbar_counts = {rule: 0 for rule in rules}

        if columnar is not None:
            # The shared profile filter compiles to one interned-id
            # requirement per rule; domination is checked against the
            # precomputed profile matrix row of each candidate.  Same
            # necessary condition, so the witness sets are unchanged.
            report.candidates_examined = len(owned) * len(rules)
            for rule in rules:
                antecedent = rule.antecedent.expanded()
                ante_req = columnar.compile_requirement(antecedent, antecedent.x)
                pr = rule.pr_pattern().expanded()
                pr_req = columnar.compile_requirement(pr, pr.x)
                for candidate in columnar.filter_candidates(owned, ante_req):
                    if not matcher.exists_match_at(graph, rule.antecedent, candidate):
                        continue
                    antecedent_sets[rule].add(candidate)
                    if candidate in local_negatives:
                        qbar_counts[rule] += 1
                    if candidate not in local_positives:
                        continue
                    if not columnar.dominates(candidate, pr_req):
                        continue
                    if matcher.exists_match_at(graph, rule.pr_pattern(), candidate):
                        rule_matches[rule].add(candidate)
        else:
            # Required adjacency profiles of x, computed once per rule.
            antecedent_profiles = {
                rule: required_profile(rule.antecedent.expanded(), rule.x)
                for rule in rules
            }
            pr_profiles = {
                rule: required_profile(rule.pr_pattern().expanded(), rule.x)
                for rule in rules
            }
            for candidate in owned:
                # One adjacency profile per candidate, shared by all rules of Σ.
                profile = adjacency_profile(graph, candidate, index)
                for rule in rules:
                    report.candidates_examined += 1
                    if not profile_satisfies(profile, antecedent_profiles[rule]):
                        continue
                    if not matcher.exists_match_at(graph, rule.antecedent, candidate):
                        continue
                    antecedent_sets[rule].add(candidate)
                    if candidate in local_negatives:
                        qbar_counts[rule] += 1
                    if candidate not in local_positives:
                        continue
                    if not profile_satisfies(profile, pr_profiles[rule]):
                        continue
                    if matcher.exists_match_at(graph, rule.pr_pattern(), candidate):
                        rule_matches[rule].add(candidate)

        report.rule_matches = rule_matches
        report.antecedent_sets = antecedent_sets
        report.antecedent_counts = {
            rule: len(matches) for rule, matches in antecedent_sets.items()
        }
        report.qbar_counts = qbar_counts
        return report

    def _verify_fragment_shared(
        self,
        fragment: Fragment,
        rules: Sequence[GPAR],
        matcher: Matcher,
        predicate,
    ) -> _FragmentReport:
        """Prefix-trie evaluation of Σ: shared antecedent-prefix match sets.

        Produces the same counts and witness sets as the per-candidate loop
        of :meth:`_verify_fragment` — pool restriction by prefix match sets
        is lossless — while rules grown from common prefixes (the normal
        shape of a mined Σ with one consequent) scan the candidate pool once
        per shared prefix instead of once per rule.
        """
        graph = fragment.graph
        stats = predicate_stats_over(graph, predicate, fragment.owned_centers)
        owned = set(stats.positives) | set(stats.negatives) | set(stats.unknown)
        report = _FragmentReport(fragment_index=fragment.index)
        local_positives = set(stats.positives)
        local_negatives = set(stats.negatives)
        report.positives = local_positives
        report.negatives = local_negatives
        report.supp_q = len(local_positives)
        report.supp_q_bar = len(local_negatives)
        # Parity with the rule-at-a-time loop, which examines every
        # (candidate, rule) pair exactly once.
        report.candidates_examined = len(owned) * len(rules)

        multi = MultiPatternMatcher(
            matcher,
            use_index=self.config.use_index,
            use_prefix_trie=True,
            use_columnar=self.config.use_columnar,
        )
        antecedent_sets = multi.shared_match_sets(
            graph, {rule: rule.antecedent for rule in rules}, candidates=owned
        )
        # PR matches only count at positive owned centres; one shared base
        # pool keeps the trie's prefix cache valid across all of Σ.
        pr_sets = multi.shared_match_sets(
            graph,
            {rule: rule.pr_pattern() for rule in rules},
            candidates=owned & local_positives,
        )
        report.prefix_pool_hits = multi.statistics.prefix_pool_hits
        for rule in rules:
            antecedent_matches = antecedent_sets[rule]
            report.rule_matches[rule] = pr_sets[rule]
            report.antecedent_sets[rule] = antecedent_matches
            report.antecedent_counts[rule] = len(antecedent_matches)
            report.qbar_counts[rule] = len(antecedent_matches & local_negatives)
        return report
