"""``Matchc``: the parallel-scalable EIP algorithm of Theorem 6.

Steps (Section 5.1):

1. **Partitioning** — fragment G so that every candidate centre's d-ball is
   local to one fragment (d = the largest rule radius in Σ).
2. **Matching** — each worker verifies, for every owned candidate ``vx`` and
   every rule R, whether ``vx ∈ PR(x, Gd(vx))`` and ``vx ∈ Q(x, Gd(vx))``,
   and classifies vx against the predicate (positive / LCWA-negative).
3. **Assembling** — the coordinator sums the fragment-local counts into
   ``conf(R, G)`` per rule and outputs the matches of rules whose confidence
   reaches η.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.graph.graph import Graph
from repro.matching.base import Matcher
from repro.matching.locality import LocalityMatcher
from repro.matching.vf2 import VF2Matcher
from repro.metrics.confidence import bayes_factor_confidence
from repro.metrics.lcwa import predicate_stats_over
from repro.identification.census import (
    CensusMatcher,
    apply_census,
    max_verification_radius,
    plan_census,
)
from repro.identification.eip import EIPConfig, EIPResult, _shared_predicate
from repro.obs.tracing import span
from repro.parallel.executor import make_executor
from repro.parallel.runtime import BSPRuntime
from repro.parallel.worker import WorkerContext
from repro.partition.fragment import Fragment
from repro.partition.partitioner import partition_graph
from repro.pattern.gpar import GPAR

NodeId = Hashable


@dataclass(frozen=True)
class VerifyPayload:
    """Round payload of the matching step (coordinator → worker).

    Ships the solver *class* (picklable by reference) plus its config so a
    worker process can rebuild the solver — and through it the right matcher
    — deterministically; the fragment itself never travels with the round.
    ``census`` maps census-split patterns to their x-components (see
    :class:`repro.identification.census.CensusMatcher`): workers verify the
    ball-local x-component, the coordinator applies the global half at
    assembly time, so free-pattern verdicts never depend on the partitioning.
    """

    solver_cls: type
    config: EIPConfig
    rules: tuple[GPAR, ...]
    max_radius: int
    predicate: object
    census: tuple = ()  # ((pattern, x_part), ...)


def verify_worker(context: WorkerContext, payload: VerifyPayload) -> "_FragmentReport":
    """BSP worker function: verify one fragment's owned candidates."""
    solver = payload.solver_cls(payload.config)
    matcher = context.cached(
        ("eip-matcher", payload.solver_cls, payload.config, payload.max_radius),
        lambda: solver._make_matcher(payload.max_radius),
    )
    if payload.census:
        matcher = CensusMatcher(matcher, dict(payload.census))
    return solver._verify_fragment(
        context.fragment, payload.rules, matcher, payload.predicate
    )


@dataclass
class _FragmentReport:
    """Per-fragment counts and witness sets returned to the coordinator.

    Beyond the counts the assembling step sums, the report carries the
    per-centre *sets* behind them (``positives``/``negatives`` from the LCWA
    classification and ``antecedent_sets`` per rule): the streaming
    subsystem (:mod:`repro.stream`) merges partial re-verifications into a
    maintained report, which requires replacing individual centres'
    contributions rather than adjusting opaque sums.
    """

    fragment_index: int
    supp_q: int = 0
    supp_q_bar: int = 0
    candidates_examined: int = 0
    prefix_pool_hits: int = 0
    rule_matches: dict[GPAR, set] = field(default_factory=dict)
    antecedent_counts: dict[GPAR, int] = field(default_factory=dict)
    qbar_counts: dict[GPAR, int] = field(default_factory=dict)
    positives: set = field(default_factory=set)
    negatives: set = field(default_factory=set)
    antecedent_sets: dict[GPAR, set] = field(default_factory=dict)
    #: Trace records captured inside the worker (see
    #: :mod:`repro.obs.tracing`); shipped back so the coordinator can adopt
    #: them under its own span tree.  Empty unless the payload asked for
    #: tracing.
    spans: list = field(default_factory=list)


class MatchC:
    """Parallel EIP solver without the Section 5.2 optimisations."""

    #: Whether this solver's matcher probes the fragments' *resident* index.
    #: MatchC searches exclusively inside extracted d-balls, where
    #: :class:`LocalityMatcher` suspends index use, so building the
    #: per-fragment indexes would be pure overhead; Match and DisVF2 run
    #: directly on the fragment graphs and override this to ``True``.
    _consumes_resident_index = False
    #: Likewise for the resident columnar views: only ``Match`` routes its
    #: profile filtering and ``match_set`` pools through them (MatchC probes
    #: anchored existence only; disVF2's unfiltered matcher never prunes).
    _consumes_columnar = False

    def __init__(self, config: EIPConfig) -> None:
        self.config = config

    # -- hooks overridden by Match / DisVF2 --------------------------------
    def _make_matcher(self, max_radius: int) -> Matcher:
        """Anchored matcher used per fragment (plain VF2 inside the d-ball)."""
        return LocalityMatcher(
            VF2Matcher(use_index=self.config.use_index), radius=max_radius
        )

    def _verify_fragment(
        self,
        fragment: Fragment,
        rules: Sequence[GPAR],
        matcher: Matcher,
        predicate,
    ) -> _FragmentReport:
        """Verify every owned candidate of *fragment* against every rule."""
        graph = fragment.graph
        stats = predicate_stats_over(graph, predicate, fragment.owned_centers)
        owned = set(stats.positives) | set(stats.negatives) | set(stats.unknown)
        report = _FragmentReport(fragment_index=fragment.index)
        local_positives = set(stats.positives)
        local_negatives = set(stats.negatives)
        report.positives = local_positives
        report.negatives = local_negatives
        report.supp_q = len(local_positives)
        report.supp_q_bar = len(local_negatives)

        for rule in rules:
            rule_matches: set[NodeId] = set()
            antecedent_matches: set[NodeId] = set()
            qbar_count = 0
            for candidate in owned:
                report.candidates_examined += 1
                in_antecedent = matcher.exists_match_at(graph, rule.antecedent, candidate)
                if not in_antecedent:
                    continue
                antecedent_matches.add(candidate)
                if candidate in local_negatives:
                    qbar_count += 1
                if candidate in local_positives and matcher.exists_match_at(
                    graph, rule.pr_pattern(), candidate
                ):
                    rule_matches.add(candidate)
            report.rule_matches[rule] = rule_matches
            report.antecedent_sets[rule] = antecedent_matches
            report.antecedent_counts[rule] = len(antecedent_matches)
            report.qbar_counts[rule] = qbar_count
        return report

    # ----------------------------------------------------------------------
    def identify(self, graph: Graph, rules: Sequence[GPAR]) -> EIPResult:
        """Compute ``Σ(x, G, η)`` on *graph*."""
        representative = _shared_predicate(rules)
        predicate = representative.q_pattern()
        # Disconnected rules split: workers verify the connected x-component
        # inside its ball, the coordinator resolves the free part globally
        # (apply_census below) so the answer matches whole-graph semantics
        # regardless of how G was fragmented.
        census_plan = plan_census(rules)
        # Fragments must preserve a ball large enough to verify both PR and
        # the antecedent Q at every owned candidate.
        max_radius = max_verification_radius(rules, census_plan)
        centers = graph.nodes_with_label(representative.x_label)

        with span(
            "eip.partition", workers=self.config.num_workers, centers=len(centers)
        ):
            fragments = partition_graph(
                graph,
                self.config.num_workers,
                centers=centers,
                d=max_radius,
                seed=self.config.seed,
            )
        executor = make_executor(
            self.config.backend,
            self.config.executor_workers,
            build_indexes=self.config.use_index and self._consumes_resident_index,
            build_columnar=self.config.use_columnar and self._consumes_columnar,
        )
        runtime = BSPRuntime(fragments, executor)
        runtime.start_run()

        payload = VerifyPayload(
            solver_cls=type(self),
            config=self.config,
            rules=tuple(rules),
            max_radius=max_radius,
            predicate=predicate,
            census=census_plan.substitutions,
        )
        try:
            with span("eip.verify", rules=len(rules), backend=self.config.backend):
                reports = runtime.run_round(
                    verify_worker, [payload] * len(fragments)
                )
            with span("eip.assemble"):
                reports = apply_census(graph, rules, reports, census_plan)
                # Assemble inside the timed window so wall_time keeps covering
                # the coordinator's assembling phase, as it always has.
                result = self._assemble(rules, reports)
        finally:
            timings = runtime.finish_run()
        result.timings = timings
        return result

    def _assemble(self, rules: Sequence[GPAR], reports: Sequence[_FragmentReport]) -> EIPResult:
        supp_q = sum(report.supp_q for report in reports)
        supp_q_bar = sum(report.supp_q_bar for report in reports)
        result = EIPResult()
        result.candidates_examined = sum(report.candidates_examined for report in reports)
        result.prefix_pool_hits = sum(report.prefix_pool_hits for report in reports)
        for rule in rules:
            supp_r = sum(len(report.rule_matches.get(rule, ())) for report in reports)
            supp_q_qbar = sum(report.qbar_counts.get(rule, 0) for report in reports)
            matches = frozenset().union(
                *(report.rule_matches.get(rule, set()) for report in reports)
            )
            confidence = bayes_factor_confidence(supp_r, supp_q_bar, supp_q_qbar, supp_q)
            result.rule_confidences[rule] = confidence
            result.rule_matches[rule] = matches
            if confidence >= self.config.eta and supp_r > 0:
                result.accepted_rules.append(rule)
                result.identified.update(matches)
        return result
