"""Sequential reference implementation of EIP (test oracle).

Evaluates each rule globally with :func:`repro.metrics.evaluate_rule` and
applies the confidence bound — no partitioning, no parallel runtime.  The
parallel algorithms must agree with this on every input.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.graph import Graph
from repro.matching.base import Matcher
from repro.matching.vf2 import VF2Matcher
from repro.metrics.confidence import evaluate_rule
from repro.metrics.lcwa import predicate_stats
from repro.identification.eip import EIPResult, _shared_predicate
from repro.pattern.gpar import GPAR


def identify_sequential(
    graph: Graph,
    rules: Sequence[GPAR],
    eta: float = 1.0,
    matcher: Matcher | None = None,
) -> EIPResult:
    """Compute ``Σ(x, G, η)`` with a plain sequential evaluation."""
    representative = _shared_predicate(rules)
    engine = matcher if matcher is not None else VF2Matcher()
    stats = predicate_stats(graph, representative.q_pattern())

    result = EIPResult()
    for rule in rules:
        evaluation = evaluate_rule(graph, rule, matcher=engine, stats=stats)
        result.rule_confidences[rule] = evaluation.confidence
        result.rule_matches[rule] = evaluation.rule_matches
        result.candidates_examined += evaluation.supp_antecedent
        if evaluation.confidence >= eta and evaluation.supp_r > 0:
            result.accepted_rules.append(rule)
            result.identified.update(evaluation.rule_matches)
    return result
