"""``disVF2``: the brute-force parallel baseline of Exp-3.

The paper contrasts Match against a straightforward parallelisation of VF2:
for every rule, *all* isomorphic matches of the rule pattern PR and of the
antecedent are enumerated in each fragment (no early termination, no degree
or sketch filtering), and supports are derived from the enumerations.  It is
exact but wasteful — exactly the cost profile the optimised algorithms avoid.
"""

from __future__ import annotations

from typing import Sequence

from repro.matching.base import Matcher
from repro.matching.vf2 import VF2Matcher
from repro.metrics.lcwa import predicate_stats_over
from repro.identification.matchc import MatchC, _FragmentReport
from repro.partition.fragment import Fragment
from repro.pattern.gpar import GPAR


class DisVF2(MatchC):
    """Distributed full-enumeration VF2 baseline."""

    # Full enumeration runs directly on the fragment graphs, so the resident
    # index (label buckets, frozen adjacency views) is consumed.
    _consumes_resident_index = True

    def _make_matcher(self, max_radius: int) -> Matcher:
        # No locality wrapper and no degree filtering: the whole fragment is
        # searched for every candidate, as a naive port of VF2 would.
        return VF2Matcher(use_degree_filter=False, use_index=self.config.use_index)

    def _verify_fragment(
        self,
        fragment: Fragment,
        rules: Sequence[GPAR],
        matcher: Matcher,
        predicate,
    ) -> _FragmentReport:
        graph = fragment.graph
        stats = predicate_stats_over(graph, predicate, fragment.owned_centers)
        owned = set(stats.positives) | set(stats.negatives) | set(stats.unknown)
        report = _FragmentReport(fragment_index=fragment.index)
        local_positives = set(stats.positives)
        local_negatives = set(stats.negatives)
        report.positives = local_positives
        report.negatives = local_negatives
        report.supp_q = len(local_positives)
        report.supp_q_bar = len(local_negatives)

        for rule in rules:
            # Two *full* enumerations per rule — every match of the
            # antecedent and every match of PR in the fragment — exactly the
            # wasted work the paper attributes to disVF2; the candidate
            # match sets are then read off the enumerated mappings.
            report.candidates_examined += len(owned)
            antecedent_matches = {
                mapping[rule.antecedent.x]
                for mapping in matcher.find_all(graph, rule.antecedent)
            } & owned
            pr_matches = {
                mapping[rule.x]
                for mapping in matcher.find_all(graph, rule.pr_pattern())
            } & owned
            rule_matches = pr_matches & local_positives
            report.rule_matches[rule] = rule_matches
            report.antecedent_sets[rule] = antecedent_matches
            report.antecedent_counts[rule] = len(antecedent_matches)
            report.qbar_counts[rule] = len(antecedent_matches & local_negatives)
        return report
