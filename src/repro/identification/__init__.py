"""Entity identification with GPARs (EIP, paper Section 5).

Given a set Σ of GPARs pertaining to the same predicate ``q(x, y)``, a graph
G and a confidence bound η, EIP computes

    Σ(x, G, η) = { vx | vx ∈ Q(x, G), Q ⇒ q ∈ Σ, conf(R, G) ≥ η }

Algorithms
----------
:class:`MatchC`
    The parallel-scalable baseline of Theorem 6: partition G so every
    candidate's d-ball is local, verify candidates per fragment with plain
    subgraph isomorphism, assemble confidences at the coordinator.
:class:`Match`
    ``MatchC`` plus the optimisations of Section 5.2: early termination,
    sketch-guided search and shared per-candidate adjacency profiles across
    the rules of Σ.
:class:`DisVF2`
    The ``disVF2`` baseline: per rule, enumerate *all* matches of PR and of
    Qq̄ in each fragment with an unfiltered VF2 — the cost the paper's
    optimisations avoid.
:func:`identify_sequential`
    Single-machine reference implementation used as the test oracle.
"""

from repro.identification.eip import (
    AnswerEntry,
    AnswerPage,
    EIPConfig,
    EIPResult,
    identify_entities,
)
from repro.identification.matchc import MatchC
from repro.identification.match import Match
from repro.identification.disvf2 import DisVF2
from repro.identification.sequential import identify_sequential

__all__ = [
    "AnswerEntry",
    "AnswerPage",
    "EIPConfig",
    "EIPResult",
    "identify_entities",
    "MatchC",
    "Match",
    "DisVF2",
    "identify_sequential",
]
