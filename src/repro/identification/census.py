"""Global census semantics for disconnected ("free") pattern parts.

DMine grows antecedents edge-by-edge from the consequent's endpoints, so a
mined antecedent routinely contains nodes with no path to ``x`` — most often
a lone isolated ``y``, occasionally a whole component carrying edges.  A
worker that resolves those free parts against its *fragment* makes the
verdict depend on the partitioning; the correct reading (the one whole-graph
matching gives) is global.  This module centralises that global half so the
batch solvers (:mod:`repro.identification.matchc`) and the streaming
identifier (:mod:`repro.stream.identifier`) share one implementation and
therefore agree on every Σ by construction:

* :func:`split_pattern_components` separates a pattern into the connected
  x-component (verified ball-locally by workers, via
  :class:`CensusMatcher` substitution) and its free components;
* :func:`plan_census` derives, per disconnected rule, either a **label
  census** (every free node isolated — feasibility is a per-label counting
  condition, exact for injective label-equality matching) or a **component
  census** (some free component carries edges — the coordinator enumerates
  each component shape's embeddings on the authoritative graph and decides
  per-centre, with a disjoint-packing shortcut that usually avoids any
  per-centre probe);
* :func:`apply_census` rewrites the workers' fragment reports from x-part
  verdicts to whole-graph verdicts.

Exactness of the component route: a centre ``c`` whose x-part matches has a
full match iff an injective completion over the free components exists.  If
every shape ``C_i`` has a pairwise-disjoint embedding family of size at
least ``|P| - |C_i| + 1`` (``P`` the whole expanded pattern), a completion
always exists — each node blocked by the x-part image or by previously
placed components kills at most one member of a disjoint family, and at most
``|P| - |C_i|`` nodes are blocked.  When the shortcut cannot certify that,
an anchored whole-graph probe of the *full* pattern decides the centre
exactly; when some shape has no embedding at all, the rule matches nowhere.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Hashable, Iterable, Mapping, Sequence

from repro.exceptions import PatternError
from repro.graph.graph import Graph
from repro.graph.neighborhood import eccentricity
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern
from repro.pattern.radius import pattern_radius

__all__ = [
    "CensusMatcher",
    "CensusPlan",
    "RuleCensus",
    "apply_census",
    "census_feasible",
    "component_census",
    "plan_census",
    "split_free_pattern",
    "split_pattern_components",
]

NodeId = Hashable

#: Per-shape embedding enumeration cap.  The cap never affects correctness:
#: a disjoint family found inside the truncated census is still a real
#: disjoint family (sufficiency holds), and emptiness is decided before the
#: cap can bite; a truncated census that fails to pack merely falls back to
#: exact per-centre probes.
CENSUS_ENUMERATION_LIMIT = 4096


def _x_component(expanded: Pattern) -> set:
    """Nodes of *expanded* reachable (undirected) from its designated x."""
    component: set = {expanded.x}
    frontier = [expanded.x]
    while frontier:
        current = frontier.pop()
        for neighbor in expanded.neighbors(current):
            if neighbor not in component:
                component.add(neighbor)
                frontier.append(neighbor)
    return component


def split_pattern_components(pattern: Pattern):
    """Split *pattern* into its x-component and free-component shapes.

    Returns ``(x_part, components)`` where ``x_part`` is the connected
    component of ``x`` (with ``y`` kept only if it lies inside) and
    ``components`` the remaining connected components, each as a standalone
    pattern anchored at its smallest node (by string order — the anchor
    choice is arbitrary for shape matching, fixed for determinism) and
    ordered by that anchor.  Returns ``None`` when the pattern is connected.
    """
    expanded = pattern.expanded()
    component = _x_component(expanded)
    free = set(expanded.nodes()) - component
    if not free:
        return None
    x_part = Pattern(
        nodes={node: expanded.label(node) for node in component},
        edges=[edge for edge in expanded.edges() if edge.source in component],
        x=expanded.x,
        y=expanded.y if expanded.y in component else None,
    )
    shapes: list[Pattern] = []
    remaining = set(free)
    while remaining:
        seed = min(remaining, key=str)
        members = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for neighbor in expanded.neighbors(current):
                if neighbor in remaining and neighbor not in members:
                    members.add(neighbor)
                    frontier.append(neighbor)
        remaining -= members
        shapes.append(
            Pattern(
                nodes={node: expanded.label(node) for node in members},
                edges=[edge for edge in expanded.edges() if edge.source in members],
                x=min(members, key=str),
            )
        )
    return x_part, tuple(shapes)


def split_free_pattern(pattern: Pattern):
    """Split *pattern* into its x-component and free-label requirements.

    Returns ``(x_part, requirements)`` when every node disconnected from
    ``x`` is *isolated* (carries no edges) — ``requirements`` are the sorted
    ``(label, needed)`` pairs such that the whole pattern matches at a
    centre iff the x-component matches there and every free label's global
    node count reaches ``needed``.  Exact for injective, label-equality
    matchers (VF2/guided): any x-component embedding uses exactly the
    component's label multiset, so an injective completion over the isolated
    free nodes exists iff each label's count covers the whole pattern's
    demand.

    Returns ``None`` when the disconnected part has edges (use the
    component census of :func:`plan_census` instead) or the pattern is
    connected (nothing to do).
    """
    split = split_pattern_components(pattern)
    if split is None:
        return None
    x_part, shapes = split
    if any(tuple(shape.edges()) for shape in shapes):
        return None
    expanded = pattern.expanded()
    free = set(expanded.nodes()) - _x_component(expanded)
    totals = Counter(expanded.label(node) for node in expanded.nodes())
    requirements = tuple(
        sorted((label, totals[label]) for label in {expanded.label(node) for node in free})
    )
    return x_part, requirements


def census_feasible(requirements, label_counts: Mapping) -> bool:
    """Whether the global label census covers the free-node requirements."""
    return all(label_counts.get(label, 0) >= needed for label, needed in requirements)


class CensusMatcher:
    """Substitute census-split patterns' x-components before matching.

    Workers never see the whole graph, so a free node matched against a
    *fragment's* label index would make the verdict partition-dependent.
    This wrapper reroutes every probe of a census-split pattern to its
    connected x-component (ball-local, hence exact on the fragment); the
    coordinator applies the global feasibility half at assembly time.
    Everything else — connected patterns, the predicate — passes through,
    including :meth:`match_set` so the prefix-trie path of
    :class:`repro.matching.MultiPatternMatcher` shares work under census
    rules too.
    """

    __slots__ = ("_inner", "_substitutions")

    def __init__(self, inner, substitutions: Mapping[Pattern, Pattern]) -> None:
        self._inner = inner
        self._substitutions = dict(substitutions)

    def exists_match_at(self, graph: Graph, pattern: Pattern, anchor_value) -> bool:
        resolved = self._substitutions.get(pattern, pattern)
        return self._inner.exists_match_at(graph, resolved, anchor_value)

    def find_match_at(self, graph: Graph, pattern: Pattern, anchor_value):
        resolved = self._substitutions.get(pattern, pattern)
        return self._inner.find_match_at(graph, resolved, anchor_value)

    def match_set(self, graph: Graph, pattern: Pattern, candidates=None):
        resolved = self._substitutions.get(pattern, pattern)
        return self._inner.match_set(graph, resolved, candidates=candidates)

    def find_all(self, graph: Graph, pattern: Pattern, limit: int | None = None):
        resolved = self._substitutions.get(pattern, pattern)
        return self._inner.find_all(graph, resolved, limit=limit)

    def iter_matches_at(self, graph: Graph, pattern: Pattern, anchor_value):
        resolved = self._substitutions.get(pattern, pattern)
        return self._inner.iter_matches_at(graph, resolved, anchor_value)

    def __getattr__(self, name):
        return getattr(self._inner, name)


# ----------------------------------------------------------------------
# per-Σ census plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuleCensus:
    """Census plan of one rule with a disconnected antecedent (or PR).

    ``requirements``/``pr_requirements`` carry the label census when every
    free component of the respective pattern is isolated; otherwise the
    pattern takes the component route and ``components``/``pr_components``
    hold the free shapes.  ``pr_part`` is ``None`` when PR is connected
    (the usual free-``y`` case — the consequent edge reattaches y) and the
    workers verify the full PR ball-locally.  ``depth`` replaces
    ``rule.verification_radius``, which needs a connected PR: the
    x-reachable depths of both x-components bound the ball that workers
    need.  ``size``/``pr_size`` are the expanded node counts used by the
    disjoint-packing shortcut.
    """

    rule: GPAR
    part: Pattern
    requirements: tuple = ()
    components: tuple = ()
    pr_part: Pattern | None = None
    pr_requirements: tuple = ()
    pr_components: tuple = ()
    depth: int = 0
    size: int = 0
    pr_size: int = 0


@dataclass(frozen=True)
class CensusPlan:
    """Census plans for the disconnected rules of one Σ (empty when none)."""

    entries: tuple[RuleCensus, ...] = ()

    @property
    def substitutions(self) -> tuple:
        """``((pattern, x_part), ...)`` pairs for :class:`CensusMatcher`."""
        pairs = []
        for entry in self.entries:
            pairs.append((entry.rule.antecedent, entry.part))
            if entry.pr_part is not None:
                pairs.append((entry.rule.pr_pattern(), entry.pr_part))
        return tuple(pairs)

    @property
    def rules(self) -> frozenset:
        return frozenset(entry.rule for entry in self.entries)


def _route(pattern: Pattern):
    """(x_part, label requirements, component shapes) of a disconnected pattern."""
    x_part, shapes = split_pattern_components(pattern)
    if any(tuple(shape.edges()) for shape in shapes):
        return x_part, (), shapes
    expanded = pattern.expanded()
    free = set(expanded.nodes()) - _x_component(expanded)
    totals = Counter(expanded.label(node) for node in expanded.nodes())
    requirements = tuple(
        sorted((label, totals[label]) for label in {expanded.label(node) for node in free})
    )
    return x_part, requirements, ()


def plan_census(rules: Sequence[GPAR]) -> CensusPlan:
    """Derive the census plan of Σ: one :class:`RuleCensus` per disconnected rule."""
    entries: list[RuleCensus] = []
    for rule in rules:
        try:
            pattern_radius(rule.antecedent, rule.antecedent.x)
            continue
        except PatternError:
            pass
        part, requirements, components = _route(rule.antecedent)
        pr_pattern = rule.pr_pattern()
        pr_split = split_pattern_components(pr_pattern)
        if pr_split is None:
            pr_part, pr_requirements, pr_components = None, (), ()
            pr_depth = pattern_radius(pr_pattern, rule.x)
            pr_size = 0
        else:
            pr_part, pr_requirements, pr_components = _route(pr_pattern)
            pr_depth = eccentricity(pr_part.to_graph(), rule.x)
            pr_size = len(tuple(pr_pattern.expanded().nodes()))
        entries.append(
            RuleCensus(
                rule=rule,
                part=part,
                requirements=requirements,
                components=components,
                pr_part=pr_part,
                pr_requirements=pr_requirements,
                pr_components=pr_components,
                depth=max(pr_depth, eccentricity(part.to_graph(), rule.x)),
                size=len(tuple(rule.antecedent.expanded().nodes())),
                pr_size=pr_size,
            )
        )
    return CensusPlan(tuple(entries))


def max_verification_radius(rules: Sequence[GPAR], plan: CensusPlan) -> int:
    """Largest ball radius any rule of Σ needs, census plans included."""
    census_rules = plan.rules
    radii = [rule.verification_radius for rule in rules if rule not in census_rules]
    radii.extend(entry.depth for entry in plan.entries)
    return max(radii)


# ----------------------------------------------------------------------
# the coordinator-held component census
# ----------------------------------------------------------------------
def component_census(
    graph: Graph, shape: Pattern, matcher, limit: int | None = CENSUS_ENUMERATION_LIMIT
) -> frozenset:
    """Embedding node-sets of *shape* on the (whole, authoritative) graph.

    Single-node shapes are answered from the label bucket; shapes with edges
    enumerate anchored matches at every anchor-label candidate.  Distinct
    embeddings with equal node sets (automorphic images) collapse — node
    sets are all the packing shortcut and emptiness test consume.
    """
    expanded = shape.expanded()
    nodes = tuple(expanded.nodes())
    if len(nodes) == 1 and not tuple(expanded.edges()):
        label = expanded.label(nodes[0])
        return frozenset(frozenset((node,)) for node in graph.nodes_with_label(label))
    mappings = matcher.find_all(graph, expanded, limit=limit)
    return frozenset(frozenset(mapping.values()) for mapping in mappings)


def _packs(census: frozenset, threshold: int) -> bool:
    """Whether *census* contains a pairwise-disjoint family of *threshold* sets."""
    if threshold <= 0:
        return True
    chosen: set = set()
    found = 0
    for members in sorted(census, key=lambda s: sorted(map(str, s))):
        if members & chosen:
            continue
        chosen |= members
        found += 1
        if found >= threshold:
            return True
    return False


def _component_failures(
    graph: Graph,
    pattern: Pattern,
    shapes: tuple,
    censuses: Mapping[Pattern, frozenset],
    size: int,
    centers: Iterable[NodeId],
    matcher,
):
    """Centres of *centers* (x-part matches) lacking a full *pattern* match.

    ``None`` means *every* centre fails (some shape has no embedding at
    all); an empty set means every centre passes.
    """
    if any(not censuses[shape] for shape in shapes):
        return None
    if all(
        _packs(censuses[shape], size - len(tuple(shape.nodes())) + 1) for shape in shapes
    ):
        return set()
    return {
        center
        for center in centers
        if not matcher.exists_match_at(graph, pattern, center)
    }


def apply_census(graph: Graph, rules: Sequence[GPAR], reports, plan: CensusPlan, matcher=None):
    """Rewrite fragment *reports* from x-part verdicts to whole-graph verdicts.

    Label-census rules whose free labels the current counts cannot cover get
    their antecedent-side numbers (and, for an uncoverable PR, their match
    set) zeroed; component-census rules get per-centre verdicts decided
    against the authoritative graph.  Reports are copied, never mutated —
    the streaming identifier keeps the originals as its maintained x-part
    state, under which the census may become satisfiable again later.
    """
    if not plan.entries:
        return list(reports)
    counts = graph.node_label_counts()
    infeasible = [
        entry.rule
        for entry in plan.entries
        if entry.requirements and not census_feasible(entry.requirements, counts)
    ]
    pr_infeasible = [
        entry.rule
        for entry in plan.entries
        if entry.pr_requirements and not census_feasible(entry.pr_requirements, counts)
    ]

    component_entries = [
        entry for entry in plan.entries if entry.components or entry.pr_components
    ]
    removals: dict[GPAR, set | None] = {}
    pr_removals: dict[GPAR, set | None] = {}
    if component_entries:
        if matcher is None:
            from repro.matching.vf2 import VF2Matcher

            matcher = VF2Matcher(use_index=False)
        censuses: dict[Pattern, frozenset] = {}
        for entry in component_entries:
            for shape in entry.components + entry.pr_components:
                if shape not in censuses:
                    censuses[shape] = component_census(graph, shape, matcher)
        for entry in component_entries:
            rule = entry.rule
            if entry.components:
                centers = set().union(
                    *(report.antecedent_sets.get(rule, set()) for report in reports)
                )
                removals[rule] = _component_failures(
                    graph, rule.antecedent, entry.components, censuses,
                    entry.size, centers, matcher,
                )
            if entry.pr_components:
                centers = set().union(
                    *(report.rule_matches.get(rule, set()) for report in reports)
                )
                if removals.get(rule) is not None:
                    centers -= removals[rule] or set()
                pr_removals[rule] = _component_failures(
                    graph, rule.pr_pattern(), entry.pr_components, censuses,
                    entry.pr_size, centers, matcher,
                )

    if not (infeasible or pr_infeasible or removals or pr_removals):
        return list(reports)
    adjusted = []
    for stored in reports:
        qbar = dict(stored.qbar_counts)
        antecedent_counts = dict(stored.antecedent_counts)
        antecedent_sets = dict(stored.antecedent_sets)
        rule_matches = dict(stored.rule_matches)
        for rule in infeasible:
            qbar[rule] = 0
            antecedent_counts[rule] = 0
            antecedent_sets[rule] = set()
        for rule in pr_infeasible:
            rule_matches[rule] = set()
        for rule, failed in removals.items():
            kept = set() if failed is None else antecedent_sets.get(rule, set()) - failed
            antecedent_sets[rule] = kept
            antecedent_counts[rule] = len(kept)
            qbar[rule] = len(kept & stored.negatives)
            # A full-antecedent failure implies a full-PR failure (PR embeds
            # the antecedent), so the rule's match set shrinks with it.
            rule_matches[rule] = (
                set() if failed is None else rule_matches.get(rule, set()) - failed
            )
        for rule, failed in pr_removals.items():
            rule_matches[rule] = (
                set() if failed is None else rule_matches.get(rule, set()) - failed
            )
        adjusted.append(
            replace(
                stored,
                qbar_counts=qbar,
                antecedent_counts=antecedent_counts,
                antecedent_sets=antecedent_sets,
                rule_matches=rule_matches,
            )
        )
    return adjusted
