"""Command-line interface for the GPAR reproduction library.

Three subcommands cover the common workflows end to end:

``generate``
    Produce a graph (synthetic, Pokec-like or Google+-like) and write it as a
    JSON document that the other commands can load.
``mine``
    Run DMine on a graph for a predicate given as ``X_LABEL:EDGE:Y_LABEL``
    and print the diversified top-k rules.
``identify``
    Sample a GPAR workload for a predicate and report the potential
    customers identified with confidence ≥ η (EIP).
``stream``
    Maintain the EIP answer across random update batches with the
    streaming subsystem (:mod:`repro.stream`), measuring repaired
    maintenance against a from-scratch recompute per batch.
``serve``
    Run the EIP HTTP service (:mod:`repro.serve`): resident sessions with
    paginated answers, update ticks and delta subscriptions.

Every subcommand is a thin client of the :mod:`repro.api` facade — the
same layer the HTTP service is built on.

Example
-------
::

    python -m repro.cli generate --kind pokec --users 200 --out graph.json
    python -m repro.cli mine graph.json --predicate "user:like_book:personal development" -k 3
    python -m repro.cli identify graph.json --predicate "user:like_book:personal development" --rules 6
    python -m repro.cli stream graph.json --predicate "user:like_book:personal development" --updates 5
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import api
from repro.datasets import generate_gpars, googleplus_like, pokec_like, synthetic_graph
from repro.graph.io import load_graph_json, save_graph_json
from repro.identification import EIPConfig
from repro.mining import DMineConfig
from repro.parallel.executor import BACKENDS
from repro.pattern.pattern import Pattern


def _parse_predicate(text: str) -> Pattern:
    """Parse ``X_LABEL:EDGE_LABEL:Y_LABEL`` into a single-edge predicate."""
    try:
        return api.parse_predicate(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "pokec":
        graph = pokec_like(num_users=args.users, seed=args.seed)
    elif args.kind == "googleplus":
        graph = googleplus_like(num_users=args.users, seed=args.seed)
    else:
        graph = synthetic_graph(args.users, args.users * 3, seed=args.seed)
    save_graph_json(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    graph = load_graph_json(args.graph)
    config = DMineConfig(
        k=args.k,
        d=args.d,
        sigma=args.sigma,
        lam=args.diversification,
        num_workers=args.workers,
        max_edges=args.max_edges,
        backend=args.backend,
        executor_workers=args.pool_size,
        use_index=not args.no_index,
        use_columnar=not args.no_columnar,
        use_incremental=not args.no_incremental,
    )
    result = api.mine(graph, args.predicate, config)
    print(
        f"mined {result.num_rules_discovered} rules "
        f"({result.candidates_generated} candidates) in "
        f"{result.rounds_executed} rounds; F(Lk) = {result.objective_value:.3f} "
        f"[backend={config.backend} wall={result.timings.wall_time:.3f}s "
        f"sim={result.timings.simulated_parallel_time:.3f}s]"
    )
    for mined in result.top_k:
        print()
        print(mined.as_row())
        print(mined.rule.describe())
    return 0


def _eip_config_from_args(args: argparse.Namespace, seed: int = 0) -> EIPConfig:
    """Build the explicit EIP config the :mod:`repro.api` layer consumes."""
    return EIPConfig(
        eta=args.eta,
        num_workers=args.workers,
        seed=seed,
        backend=args.backend,
        executor_workers=args.pool_size,
        use_index=not args.no_index,
        use_columnar=not args.no_columnar,
        use_incremental=not args.no_incremental,
    )


def _cmd_identify(args: argparse.Namespace) -> int:
    graph = load_graph_json(args.graph)
    rules = generate_gpars(
        graph,
        args.predicate,
        count=args.rules,
        max_pattern_edges=args.max_edges,
        d=args.d,
        seed=args.seed,
    )
    config = _eip_config_from_args(args)
    result = api.identify(graph, rules, config, algorithm=args.algorithm)
    print(result.summary())
    preview = sorted(map(str, result.identified))[: args.show]
    print(f"first identified entities: {preview}")
    return 0


def _stream_config_from_args(args: argparse.Namespace):
    """Build a :class:`StreamConfig` from the stream subcommand's flags.

    CLI values beat environment variables beat defaults; the chosen values
    are also exported back into the environment so worker processes (which
    build fragment indexes with process-wide defaults) agree with the
    coordinator.
    """
    from repro.stream import StreamConfig

    overrides = {}
    if args.delta_log_size is not None:
        overrides["delta_log_size"] = args.delta_log_size
    if args.rebuild_fraction is not None:
        overrides["delta_rebuild_fraction"] = args.rebuild_fraction
    if args.checkpoint_log_fraction is not None:
        overrides["checkpoint_log_fraction"] = args.checkpoint_log_fraction
    if args.rebalance_skew is not None:
        overrides["rebalance_skew"] = args.rebalance_skew
    if args.state_dir is not None:
        overrides["state_dir"] = args.state_dir
    config = StreamConfig(**overrides)
    config.export_env()
    return config


def _cmd_stream(args: argparse.Namespace) -> int:
    import time

    from repro.stream import random_update_batch

    graph = load_graph_json(args.graph)
    rules = generate_gpars(
        graph,
        args.predicate,
        count=args.rules,
        max_pattern_edges=args.max_edges,
        d=args.d,
        seed=args.seed,
    )
    stream_config = _stream_config_from_args(args)
    repair_wall = 0.0
    recompute_wall = 0.0
    with api.open_session(
        graph,
        rules,
        config=_eip_config_from_args(args, seed=args.seed),
        algorithm=args.algorithm,
        stream_config=stream_config,
    ) as session:
        print(
            f"streaming {args.algorithm} over {graph.num_nodes} nodes / "
            f"{graph.num_edges} edges, |Σ|={len(rules)}, d={session.max_radius} "
            f"[backend={args.backend}]"
        )
        print(f"initial: {session.result.summary().splitlines()[0]}")
        for position in range(args.updates):
            batch = random_update_batch(
                graph,
                size=args.batch_size,
                seed=args.seed * 1000 + position,
                deletion_bias=args.deletion_bias,
            )
            update_report, _delta = session.apply(batch)
            repair_wall += update_report.wall_time
            line = f"batch {position + 1}: {batch.describe()} -> {update_report.as_row()}"
            if args.verify:
                started = time.perf_counter()
                fresh = session.recompute()
                recompute_wall += time.perf_counter() - started
                agree = (
                    fresh.identified == session.result.identified
                    and fresh.rule_confidences == session.result.rule_confidences
                )
                if not agree:
                    print(line)
                    print("DIVERGED from recompute — this is a bug")
                    return 1
                line += f" [recompute {recompute_wall:.3f}s cumulative, identical]"
            print(line)
        if args.save_state is not None:
            saved = session.save_state(args.save_state)
            print(f"saved stream state to {saved}")
        result = session.result
    print(result.summary())
    print(f"repair wall over {args.updates} batches: {repair_wall:.3f}s")
    if args.verify and repair_wall:
        print(
            f"recompute wall: {recompute_wall:.3f}s "
            f"(repair speedup {recompute_wall / repair_wall:.2f}x)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_foreground

    if args.access_log:
        import logging

        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        access = logging.getLogger("repro.serve.access")
        access.addHandler(handler)
        access.setLevel(logging.INFO)
    return run_foreground(args.host, args.port, executor_workers=args.executor_workers)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, trace_breakdown

    print(trace_breakdown(load_trace(args.trace)), end="")
    return 0


def _fetch_json(url: str) -> dict:
    import json
    from urllib.request import urlopen

    with urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def _cmd_top(args: argparse.Namespace) -> int:
    from urllib.request import urlopen

    from repro.obs import top_report

    base = args.url.rstrip("/")
    healthz = _fetch_json(f"{base}/healthz")
    sessions = _fetch_json(f"{base}/sessions")
    with urlopen(f"{base}/metrics", timeout=10) as response:
        metrics_text = response.read().decode("utf-8")
    print(top_report(base, healthz, sessions, metrics_text), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-gpar",
        description="Graph-pattern association rules: mining (DMP) and entity identification (EIP).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a graph and save it as JSON")
    generate.add_argument("--kind", choices=["pokec", "googleplus", "synthetic"], default="pokec")
    generate.add_argument("--users", type=int, default=200, help="number of users / nodes")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=Path, required=True, help="output JSON path")
    generate.set_defaults(handler=_cmd_generate)

    mine = subparsers.add_parser(
        "mine", aliases=["dmine"], help="mine diversified top-k GPARs (DMine)"
    )
    mine.add_argument("graph", type=Path, help="graph JSON produced by 'generate'")
    mine.add_argument("--predicate", type=_parse_predicate, required=True,
                      help="predicate as x_label:edge_label:y_label")
    mine.add_argument("-k", type=int, default=3, help="size of the diversified top-k set")
    mine.add_argument("-d", type=int, default=2, help="maximum rule radius")
    mine.add_argument("--sigma", type=int, default=5, help="minimum support")
    mine.add_argument("--diversification", type=float, default=0.5, help="lambda in [0, 1]")
    mine.add_argument("--workers", type=int, default=4,
                      help="number of fragments / BSP workers n")
    mine.add_argument("--max-edges", type=int, default=3, dest="max_edges")
    _add_backend_arguments(mine)
    mine.set_defaults(handler=_cmd_mine)

    identify = subparsers.add_parser(
        "identify", aliases=["match"], help="identify potential customers (EIP)"
    )
    identify.add_argument("graph", type=Path)
    identify.add_argument("--predicate", type=_parse_predicate, required=True)
    identify.add_argument("--rules", type=int, default=6, help="size of the sampled rule set Σ")
    identify.add_argument("--eta", type=float, default=1.0, help="confidence bound")
    identify.add_argument("--algorithm", choices=["match", "matchc", "disvf2"], default="match")
    identify.add_argument("--workers", type=int, default=4,
                          help="number of fragments / BSP workers n")
    identify.add_argument("-d", type=int, default=2)
    identify.add_argument("--max-edges", type=int, default=4, dest="max_edges")
    identify.add_argument("--seed", type=int, default=0)
    identify.add_argument("--show", type=int, default=10, help="how many identified entities to list")
    _add_backend_arguments(identify)
    identify.set_defaults(handler=_cmd_identify)

    stream = subparsers.add_parser(
        "stream",
        help="maintain the EIP answer across random update batches (repro.stream)",
    )
    stream.add_argument("graph", type=Path)
    stream.add_argument("--predicate", type=_parse_predicate, required=True)
    stream.add_argument("--rules", type=int, default=6, help="size of the sampled rule set Σ")
    stream.add_argument("--eta", type=float, default=1.0, help="confidence bound")
    stream.add_argument("--algorithm", choices=["match", "matchc"], default="match")
    stream.add_argument("--workers", type=int, default=4,
                        help="number of fragments / BSP workers n")
    stream.add_argument("-d", type=int, default=2)
    stream.add_argument("--max-edges", type=int, default=4, dest="max_edges")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--updates", type=int, default=5,
                        help="number of random update batches to apply")
    stream.add_argument("--batch-size", type=int, default=8, dest="batch_size",
                        help="operations per update batch")
    stream.add_argument(
        "--verify",
        action="store_true",
        help="after every batch, recompute from scratch and check the "
        "maintained answer is identical (reports the repair speedup)",
    )
    stream.add_argument(
        "--deletion-bias",
        type=float,
        default=0.0,
        dest="deletion_bias",
        help="probability that a sampled operation is forced to be a "
        "removal (deletion-heavy churn; see docs/lifecycle.md)",
    )
    stream.add_argument(
        "--delta-log-size",
        type=int,
        default=None,
        dest="delta_log_size",
        help="bounded GraphDelta log capacity per managed graph "
        "(default: REPRO_DELTA_LOG_SIZE or 32)",
    )
    stream.add_argument(
        "--rebuild-fraction",
        type=float,
        default=None,
        dest="rebuild_fraction",
        help="FragmentIndex rebuilds instead of delta-patching above this "
        "touched fraction (default: REPRO_DELTA_REBUILD_FRACTION or 0.25)",
    )
    stream.add_argument(
        "--checkpoint-log-fraction",
        type=float,
        default=None,
        dest="checkpoint_log_fraction",
        help="compact a fragment's update log once it outweighs this "
        "fraction of the fragment (default: REPRO_CHECKPOINT_LOG_FRACTION "
        "or 0.5)",
    )
    stream.add_argument(
        "--rebalance-skew",
        type=float,
        default=None,
        dest="rebalance_skew",
        help="migrate centre ownership once the fragment load skew exceeds "
        "this bound; 1.0 disables (default: REPRO_REBALANCE_SKEW or 0.6)",
    )
    stream.add_argument(
        "--state-dir",
        type=Path,
        default=None,
        dest="state_dir",
        help="directory for on-disk fragment checkpoints (leases then ship "
        "paths instead of inline snapshots; default: REPRO_STATE_DIR)",
    )
    stream.add_argument(
        "--save-state",
        type=Path,
        default=None,
        dest="save_state",
        help="after the last batch, write a durable stream-state pickle "
        "that StreamingIdentifier.restore() can resume from",
    )
    _add_backend_arguments(stream)
    stream.set_defaults(handler=_cmd_stream)

    serve = subparsers.add_parser(
        "serve",
        help="run the EIP HTTP service (sessions, paginated answers, "
        "update ticks, delta subscriptions — see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8337)
    serve.add_argument(
        "--executor-workers",
        type=int,
        default=8,
        dest="executor_workers",
        help="thread pool size for blocking session work",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        dest="access_log",
        help="emit one JSON access-log line per request on stderr "
        "(logger 'repro.serve.access')",
    )
    serve.set_defaults(handler=_cmd_serve)

    trace = subparsers.add_parser(
        "trace",
        help="render a --trace-out JSON-lines span trace as a per-phase "
        "time breakdown (see docs/observability.md)",
    )
    trace.add_argument("trace", type=Path, help="JSON-lines file written by --trace-out")
    trace.set_defaults(handler=_cmd_trace)

    top = subparsers.add_parser(
        "top",
        help="one-shot status report over a running 'repro serve' "
        "(/healthz + /sessions + /metrics)",
    )
    top.add_argument("url", help="base URL of the service, e.g. http://127.0.0.1:8337")
    top.set_defaults(handler=_cmd_top)
    return parser


def _add_backend_arguments(subparser: argparse.ArgumentParser) -> None:
    """Execution-backend flags shared by the mine and identify subcommands."""
    subparser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="sequential",
        help="execution backend: 'processes' uses a persistent multi-core pool",
    )
    subparser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        dest="pool_size",
        help="thread/process pool size (default: min(workers, cpu count))",
    )
    subparser.add_argument(
        "--no-index",
        action="store_true",
        dest="no_index",
        help="disable the resident fragment index (unindexed baseline; "
        "identical results, more per-probe work — see docs/indexing.md)",
    )
    subparser.add_argument(
        "--no-columnar",
        action="store_true",
        dest="no_columnar",
        help="disable the resident columnar fragment kernel (dict-path "
        "baseline; identical results, slower label/profile filtering — "
        "see docs/columnar.md)",
    )
    subparser.add_argument(
        "--no-incremental",
        action="store_true",
        dest="no_incremental",
        help="disable incremental match materialization (re-match every "
        "levelwise candidate from scratch / evaluate EIP rule-at-a-time; "
        "identical results, more matching work — see docs/incremental.md)",
    )
    subparser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        dest="trace_out",
        help="record a span trace of the run and write it as JSON lines "
        "(render with 'repro trace FILE'; see docs/observability.md)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    if trace_out is None:
        return args.handler(args)
    from repro.obs.tracing import Tracer, install, uninstall

    tracer = Tracer()
    install(tracer)
    try:
        return args.handler(args)
    finally:
        uninstall()
        tracer.dump_jsonl(trace_out)
        print(f"wrote {len(tracer.records())} trace spans to {trace_out}")


if __name__ == "__main__":
    sys.exit(main())
