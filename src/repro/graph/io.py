"""Serialisation of graphs to/from JSON documents and edge-list files."""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

from repro.graph.graph import Graph


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Convert *graph* to a JSON-serialisable dict.

    Nodes and edges are emitted in sorted order so equal graphs produce
    identical documents no matter how (or in which process) they were
    built — edge iteration follows adjacency-*set* order, which varies
    with the hash seed, and the serve/wire layer relies on document
    identity (same graph document + seed ⇒ same generated Σ).
    """
    return {
        "name": graph.name,
        "nodes": [
            {"id": node, "label": label, "attrs": graph.node_attrs(node) or None}
            for node, label in sorted(graph.node_items(), key=lambda item: str(item[0]))
        ],
        "edges": [
            {"source": edge.source, "target": edge.target, "label": edge.label}
            for edge in sorted(
                graph.edges(), key=lambda e: (str(e.source), e.label, str(e.target))
            )
        ],
    }


def graph_from_dict(document: dict[str, Any]) -> Graph:
    """Reconstruct a graph from :func:`graph_to_dict` output."""
    graph = Graph(name=document.get("name", "graph"))
    # Intern labels once at load time: every parsed label string collapses to
    # one shared object, so dict-path comparisons afterwards are pointer
    # checks and the columnar LabelTable is warm before the first compile.
    for node in document["nodes"]:
        graph.add_node(node["id"], sys.intern(node["label"]), node.get("attrs") or None)
    for edge in document["edges"]:
        graph.add_edge(edge["source"], edge["target"], sys.intern(edge["label"]))
    graph.label_table
    return graph


def save_graph_json(graph: Graph, path: str | Path) -> None:
    """Write *graph* to *path* as a JSON document."""
    payload = graph_to_dict(graph)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)


def load_graph_json(path: str | Path) -> Graph:
    """Load a graph previously written by :func:`save_graph_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return graph_from_dict(document)


def save_edge_list(graph: Graph, path: str | Path, separator: str = "\t") -> None:
    """Write a labelled edge list: ``src src_label dst dst_label edge_label``."""
    with open(path, "w", encoding="utf-8") as handle:
        for edge in graph.edges():
            row = separator.join(
                str(field)
                for field in (
                    edge.source,
                    graph.node_label(edge.source),
                    edge.target,
                    graph.node_label(edge.target),
                    edge.label,
                )
            )
            handle.write(row + "\n")


def load_edge_list(path: str | Path, separator: str = "\t", name: str | None = None) -> Graph:
    """Load a graph from :func:`save_edge_list` output.

    Node ids are read back as strings; isolated nodes are not representable
    in this format (use the JSON format when they matter).
    """
    graph = Graph(name=name or Path(path).stem)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split(separator)
            if len(parts) != 5:
                raise ValueError(
                    f"{path}:{line_number}: expected 5 fields, got {len(parts)}"
                )
            source, source_label, target, target_label, edge_label = parts
            graph.add_node(source, sys.intern(source_label))
            graph.add_node(target, sys.intern(target_label))
            graph.add_edge(source, target, sys.intern(edge_label))
    graph.label_table
    return graph
