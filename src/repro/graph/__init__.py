"""Property-graph substrate.

The paper operates on directed graphs ``G = (V, E, L)`` whose nodes and edges
both carry labels (Section 2.1).  :class:`repro.graph.Graph` implements that
model with the indexes the mining and matching algorithms need:

* a label index (``nodes_with_label``) used to seed candidate sets,
* per-label adjacency (``out_neighbors(v, label)``) used by the matchers,
* bounded BFS for ``Gd(vx)`` d-neighbourhood extraction (:mod:`neighborhood`),
* k-hop label-frequency sketches used by guided search (:mod:`sketch`),
* the fragment-resident :class:`FragmentIndex` bundling label buckets,
  adjacency profiles and a sketch cache for the matching hot path
  (:mod:`index`),
* the frozen columnar kernel — CSR adjacency over interned label ids plus a
  precomputed profile matrix, vectorized when numpy is available — that the
  matchers' pool filtering and dual simulation run on (:mod:`columnar`).
"""

from repro.graph.graph import DELTA_LOG_SIZE, Edge, Graph, GraphBatch, GraphDelta
from repro.graph.builder import GraphBuilder
from repro.graph.columnar import (
    ColumnarFragment,
    ColumnarStatistics,
    LabelTable,
    columnar_view,
    discard_columnar,
    numpy_active,
    registered_columnar,
)
from repro.graph.index import (
    FragmentIndex,
    IndexStatistics,
    discard_index,
    graph_index,
    registered_index,
)
from repro.graph.neighborhood import (
    ball,
    bfs_distances,
    d_neighborhood,
    eccentricity,
)
from repro.graph.sketch import (
    KHopSketch,
    build_sketch,
    empty_sketch,
    sketch_dominates,
    sketch_score,
)
from repro.graph.views import induced_subgraph, subgraph_from_edges
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph_json,
    save_graph_json,
    load_edge_list,
    save_edge_list,
)
from repro.graph.statistics import GraphSummary, summarize

__all__ = [
    "DELTA_LOG_SIZE",
    "Edge",
    "Graph",
    "GraphBatch",
    "GraphDelta",
    "GraphBuilder",
    "ball",
    "bfs_distances",
    "d_neighborhood",
    "eccentricity",
    "KHopSketch",
    "build_sketch",
    "empty_sketch",
    "sketch_dominates",
    "sketch_score",
    "FragmentIndex",
    "IndexStatistics",
    "graph_index",
    "discard_index",
    "registered_index",
    "ColumnarFragment",
    "ColumnarStatistics",
    "LabelTable",
    "columnar_view",
    "discard_columnar",
    "registered_columnar",
    "numpy_active",
    "induced_subgraph",
    "subgraph_from_edges",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph_json",
    "save_graph_json",
    "load_edge_list",
    "save_edge_list",
    "GraphSummary",
    "summarize",
]
