"""Fluent construction helpers for :class:`repro.graph.Graph`."""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from repro.graph.graph import Graph


class GraphBuilder:
    """Incrementally assemble a :class:`Graph`.

    Unlike :meth:`Graph.add_edge`, the builder creates endpoint nodes on the
    fly when a label is supplied, which keeps dataset definitions compact.

    Example
    -------
    >>> g = (
    ...     GraphBuilder("toy")
    ...     .node("alice", "cust")
    ...     .node("cafe", "restaurant")
    ...     .edge("alice", "cafe", "visit")
    ...     .build()
    ... )
    >>> g.num_edges
    1
    """

    def __init__(self, name: str = "graph") -> None:
        self._graph = Graph(name=name)

    def node(
        self,
        node_id: Hashable,
        label: str,
        attrs: dict[str, Any] | None = None,
    ) -> "GraphBuilder":
        """Add a node; idempotent for identical labels."""
        self._graph.add_node(node_id, label, attrs)
        return self

    def nodes(self, items: Iterable[tuple[Hashable, str]]) -> "GraphBuilder":
        """Add many ``(node_id, label)`` pairs."""
        for node_id, label in items:
            self._graph.add_node(node_id, label)
        return self

    def edge(
        self,
        source: Hashable,
        target: Hashable,
        label: str,
        source_label: str | None = None,
        target_label: str | None = None,
    ) -> "GraphBuilder":
        """Add an edge, optionally creating the endpoints with given labels."""
        if source_label is not None:
            self._graph.add_node(source, source_label)
        if target_label is not None:
            self._graph.add_node(target, target_label)
        self._graph.add_edge(source, target, label)
        return self

    def edges(self, items: Iterable[tuple[Hashable, Hashable, str]]) -> "GraphBuilder":
        """Add many ``(source, target, label)`` triples (endpoints must exist)."""
        for source, target, label in items:
            self._graph.add_edge(source, target, label)
        return self

    def undirected_edge(self, a: Hashable, b: Hashable, label: str) -> "GraphBuilder":
        """Add the pair of directed edges ``a->b`` and ``b->a`` with *label*.

        Social relations such as ``friend`` are symmetric in the paper's
        examples; this helper keeps dataset code readable.
        """
        self._graph.add_edge(a, b, label)
        self._graph.add_edge(b, a, label)
        return self

    def build(self) -> Graph:
        """Return the constructed graph (the builder must not be reused).

        The shared :class:`repro.graph.columnar.LabelTable` is warmed here so
        every label present at build time gets its interned id assigned once,
        before any columnar view or dict-path probe needs it.
        """
        graph = self._graph
        self._graph = Graph(name=graph.name)
        graph.label_table
        return graph
