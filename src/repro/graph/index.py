"""Fragment-resident graph indexes for the matching hot path.

Every DMine expansion round and every EIP ``Match`` call needs the same three
derived structures over its (fragment) graph: label candidate sets, labelled
adjacency profiles, and k-hop neighbourhood sketches.  Recomputing them from
the raw :class:`~repro.graph.graph.Graph` makes each pattern probe pay
O(degree) or O(|ball|) again; a :class:`FragmentIndex` computes them once per
graph and answers every later probe with a dict lookup.

Layers
------
* **label → node inverted index** — an immutable snapshot of the graph's
  label buckets as frozensets.  ``Graph.nodes_with_label`` copies its bucket
  on every call (the bucket is mutable); the index hands out the same frozen
  snapshot every time.  Build O(|V|), probe O(1).
* **labelled adjacency profiles** — ``(direction, edge label, neighbour
  label) -> count`` per node, the necessary-condition filter of
  :func:`repro.matching.candidates.degree_consistent`.  Precomputed for all
  nodes in one O(|V| + |E|) pass; probe O(1) instead of O(degree).
* **frozen adjacency views** — per ``(node, direction, edge label)``
  neighbour sets as frozensets, memoised on first use.  The matchers
  intersect these millions of times; the view avoids the per-probe copy that
  ``Graph.out_neighbors`` must make.  Probe O(1) after the first.
* **k-hop sketch cache** — lazily-filled, memoised
  :class:`~repro.graph.sketch.KHopSketch` per ``(node, hops)``, with an
  explicit empty-neighbourhood fast path: an isolated node's sketch is
  materialised without a BFS round-trip.  First probe O(|ball|), later
  probes O(1).

Invalidation
------------
The index records ``graph.version`` (a monotonic mutation counter) at build
time and compares it on **every** probe.  On a mismatch the index either
brings itself up to date (``mode="refresh"``, the default) or raises
:class:`~repro.exceptions.StaleIndexError` (``mode="raise"``); a stale read
is impossible in both modes.  A probe made while a
``Graph.batch_update`` block is still open is treated as stale too —
``"raise"`` mode raises and ``"refresh"`` mode refuses to rebuild from a
half-applied batch.

Delta maintenance
-----------------
``refresh()`` no longer rebuilds eagerly: when the graph's bounded delta log
(:meth:`repro.graph.graph.Graph.deltas_since`) still reaches back to the
version the index was built at, :meth:`FragmentIndex.apply_delta` patches
the index **in place** — label buckets and adjacency profiles of the
touched region are recomputed, memoised adjacency views of touched nodes
are dropped, and cached k-hop sketches are invalidated only inside the
k-hop balls of the touched nodes (computed on the post-update graph; see
``docs/streaming.md`` for why that is exact).  A full rebuild remains the
fallback when the log has been outrun or the touched region covers most of
the graph.

Residency
---------
:func:`graph_index` memoises one index per graph object in a per-process
weak registry, so the index lives exactly as long as its graph and never
crosses a pickle boundary.  The process execution backend builds the indexes
of its fragments inside the worker-pool initializer
(:func:`repro.parallel.worker.init_worker`), so every worker process holds a
warm index next to each fragment for the lifetime of the pool.
"""

from __future__ import annotations

import threading
import weakref
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.exceptions import GraphError, NodeNotFoundError, StaleIndexError
from repro.graph.graph import Graph, GraphDelta
from repro.graph.sketch import KHopSketch, build_sketch, empty_sketch
from repro.obs.stats import StatisticsBase
from repro.obs.tracing import span

NodeId = Hashable
Label = str

#: Invalidation behaviours accepted by :class:`FragmentIndex`.
INDEX_MODES = ("refresh", "raise")

#: Default number of hops summarised by cached sketches (the paper uses 2).
DEFAULT_SKETCH_HOPS = 2

#: When the touched nodes of a pending delta chain exceed this fraction of
#: the graph, ``refresh()`` prefers one full O(|V| + |E|) rebuild over
#: patching most of the index anyway.  Per-index override: the
#: ``rebuild_fraction`` constructor argument; process-wide override: the
#: ``REPRO_DELTA_REBUILD_FRACTION`` environment variable (also the default
#: of :class:`repro.stream.StreamConfig`, and inherited by forked worker
#: processes).
DELTA_REBUILD_FRACTION = 0.25


def default_rebuild_fraction() -> float:
    """Effective rebuild fraction: ``REPRO_DELTA_REBUILD_FRACTION`` or the constant."""
    import os

    raw = os.environ.get("REPRO_DELTA_REBUILD_FRACTION")
    if raw is None:
        return DELTA_REBUILD_FRACTION
    fraction = float(raw)
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(
            f"REPRO_DELTA_REBUILD_FRACTION must be in [0, 1], got {fraction}"
        )
    return fraction

_EMPTY_FROZEN: frozenset = frozenset()


@dataclass
class IndexStatistics(StatisticsBase):
    """Build/probe counters of one :class:`FragmentIndex` (used by tests).

    Snapshot/merge via :class:`repro.obs.stats.StatisticsBase`; collected as
    ``repro_index_*_total`` when ``REPRO_OBS`` is on.
    """

    _metric_kind = "index"

    builds: int = 0
    refreshes: int = 0
    delta_applies: int = 0
    sketches_built: int = 0
    sketch_fast_paths: int = 0
    sketches_invalidated: int = 0
    stale_probes: int = 0


class FragmentIndex:
    """Resident per-graph index bundle (see the module docstring).

    Parameters
    ----------
    graph:
        The graph (typically one fragment's local graph) to index.
    mode:
        ``"refresh"`` rebuilds the index transparently when the graph has
        mutated since the last build; ``"raise"`` raises
        :class:`~repro.exceptions.StaleIndexError` instead.
    default_hops:
        Sketch depth used when :meth:`sketch` is called without *hops*.
    """

    __slots__ = (
        "_graph_ref",
        "mode",
        "default_hops",
        "rebuild_fraction",
        "statistics",
        "_built_version",
        "_labels",
        "_nodes_by_label",
        "_profiles",
        "_out_frozen",
        "_in_frozen",
        "_neighbors_frozen",
        "_sketches",
        "__weakref__",
    )

    def __init__(
        self,
        graph: Graph,
        mode: str = "refresh",
        default_hops: int = DEFAULT_SKETCH_HOPS,
        rebuild_fraction: float | None = None,
    ) -> None:
        if mode not in INDEX_MODES:
            raise ValueError(f"mode must be one of {INDEX_MODES}, got {mode!r}")
        if default_hops < 1:
            raise ValueError(f"default_hops must be >= 1, got {default_hops}")
        if rebuild_fraction is not None and not 0.0 <= rebuild_fraction <= 1.0:
            raise ValueError(
                f"rebuild_fraction must be in [0, 1], got {rebuild_fraction}"
            )
        self.rebuild_fraction = (
            rebuild_fraction if rebuild_fraction is not None else default_rebuild_fraction()
        )
        # Weak reference only: the process-wide registry maps graph -> index
        # with weak keys, so a strong graph reference here would keep every
        # indexed graph (e.g. per-run fragment graphs) alive forever.  The
        # index lives exactly as long as its graph, never the other way
        # around; callers always hold the graph while probing.
        self._graph_ref = weakref.ref(graph)
        self.mode = mode
        self.default_hops = default_hops
        self.statistics = IndexStatistics()
        self._build()

    @property
    def graph(self) -> Graph:
        """The indexed graph; raises if it has been garbage collected."""
        graph = self._graph_ref()
        if graph is None:
            raise GraphError("the graph of this FragmentIndex no longer exists")
        return graph

    # ------------------------------------------------------------------
    # build / invalidation
    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        # Layer (a): frozen label buckets.
        self._labels: dict[NodeId, Label] = dict(graph._labels)
        self._nodes_by_label: dict[Label, frozenset] = {
            label: frozenset(nodes) for label, nodes in graph._nodes_by_label.items()
        }
        # Layer (b): labelled adjacency profiles, one pass over the edges.
        profiles: dict[NodeId, Counter] = {node: Counter() for node in self._labels}
        labels = self._labels
        for source, by_label in graph._out.items():
            source_profile = profiles[source]
            for edge_label, targets in by_label.items():
                for target in targets:
                    source_profile[("out", edge_label, labels[target])] += 1
                    profiles[target][("in", edge_label, labels[source])] += 1
        self._profiles: dict[NodeId, dict] = {
            node: dict(counter) for node, counter in profiles.items()
        }
        # Layer (c): memoised frozen adjacency views, filled on demand.
        self._out_frozen: dict[tuple[NodeId, Label], frozenset] = {}
        self._in_frozen: dict[tuple[NodeId, Label], frozenset] = {}
        # Memoised frozen undirected neighbourhoods (Graph.neighbors builds
        # a fresh set per call; BFS-heavy consumers probe this instead).
        self._neighbors_frozen: dict[NodeId, frozenset] = {}
        # Layer (d): memoised k-hop sketches, filled on demand.
        self._sketches: dict[tuple[NodeId, int], KHopSketch] = {}
        self._built_version = graph.version
        self.statistics.builds += 1

    @property
    def built_version(self) -> int:
        """Graph version the current contents were built from."""
        return self._built_version

    @property
    def is_stale(self) -> bool:
        """Whether the graph has mutated since the index was (re)built."""
        return self.graph.version != self._built_version

    def refresh(self) -> None:
        """Bring all layers up to date with the graph's current state.

        Prefers in-place delta patching: when the graph's recorded delta log
        still reaches back to :attr:`built_version` (and the touched region
        is small relative to the graph), every pending
        :class:`~repro.graph.graph.GraphDelta` is applied via
        :meth:`apply_delta`; otherwise the index rebuilds from scratch.
        """
        graph = self.graph
        if graph.in_batch:
            raise GraphError(
                f"cannot refresh the index of graph {graph.name!r} while a "
                "batch_update is open: the graph is in a half-applied state"
            )
        with span("index.refresh", graph=str(graph.name)) as trace:
            deltas = graph.deltas_since(self._built_version)
            if deltas is not None:
                touched_total = sum(len(delta.touched) for delta in deltas)
                if touched_total <= self.rebuild_fraction * max(1, graph.num_nodes):
                    for delta in deltas:
                        if not self.apply_delta(delta):  # pragma: no cover - chain guard
                            deltas = None
                            break
                    if deltas is not None:
                        self.statistics.refreshes += 1
                        trace.set(decision="patch", touched=touched_total)
                        return
                else:
                    deltas = None
            trace.set(decision="rebuild")
            self._build()
            self.statistics.refreshes += 1

    def apply_delta(self, delta: GraphDelta) -> bool:
        """Patch the index in place with one recorded graph delta.

        Requires ``delta.base_version`` to equal :attr:`built_version`
        (returns ``False``, leaving the index untouched, otherwise).  Label
        buckets, node labels and adjacency profiles are recomputed for the
        touched region only; memoised adjacency views of touched nodes are
        dropped; cached sketches are invalidated only within the k-hop balls
        of the touched nodes.  After a successful patch the index is
        indistinguishable from a fresh build at ``delta.result_version``.
        """
        if delta.base_version != self._built_version:
            return False
        graph = self.graph
        if graph.in_batch:
            raise GraphError(
                f"cannot patch the index of graph {graph.name!r} while a "
                "batch_update is open: the graph is in a half-applied state"
            )
        if not delta.net_empty:
            self._patch(delta.touched)
        self._built_version = delta.result_version
        self.statistics.delta_applies += 1
        return True

    def _patch(self, touched: frozenset) -> None:
        """Recompute the touched region of every layer from the current graph.

        Later deltas of a chain may already be reflected in the graph; that
        is fine — patching reads the *current* state, so applying a chain in
        order converges on exactly the fresh-build contents (each layer's
        entries are pure functions of the current graph restricted to the
        patched region).
        """
        graph = self.graph
        labels = graph._labels
        # Layer (a): labels + label buckets of the touched nodes.
        for node in touched:
            old_label = self._labels.get(node)
            new_label = labels.get(node)
            if old_label == new_label:
                continue
            if old_label is not None:
                bucket = self._nodes_by_label.get(old_label, _EMPTY_FROZEN) - {node}
                if bucket:
                    self._nodes_by_label[old_label] = bucket
                else:
                    self._nodes_by_label.pop(old_label, None)
            if new_label is None:
                del self._labels[node]
            else:
                self._labels[node] = new_label
                self._nodes_by_label[new_label] = self._nodes_by_label.get(
                    new_label, _EMPTY_FROZEN
                ) | {node}
        # Layer (b): adjacency profiles of the touched nodes and their
        # current neighbours (a relabelled node changes the profiles of
        # everything adjacent to it; removed endpoints are touched already).
        recompute: set = set()
        for node in touched:
            if node in labels:
                recompute.add(node)
                recompute.update(graph.neighbors(node))
            else:
                self._profiles.pop(node, None)
        for node in recompute:
            profile = Counter()
            for edge_label, targets in graph._out[node].items():
                for target in targets:
                    profile[("out", edge_label, labels[target])] += 1
            for edge_label, sources in graph._in[node].items():
                for source in sources:
                    profile[("in", edge_label, labels[source])] += 1
            self._profiles[node] = dict(profile)
        # Layer (c): memoised adjacency views of touched nodes only — an
        # untouched node's neighbour sets are unchanged by definition.
        for frozen in (self._out_frozen, self._in_frozen):
            stale_keys = [key for key in frozen if key[0] in touched]
            for key in stale_keys:
                del frozen[key]
        # Frozen undirected neighbourhoods: every edge change touches both
        # endpoints, so dropping the touched keys is exact (a relabel does
        # not change any neighbour *set*).
        for node in touched:
            self._neighbors_frozen.pop(node, None)
        # Layer (d): sketches within the k-hop balls of the touched nodes,
        # computed on the *post-update* graph (exact; docs/streaming.md).
        if self._sketches:
            from repro.graph.neighborhood import multi_source_distances

            max_hops = max(hops for _node, hops in self._sketches)
            distances = multi_source_distances(graph, touched, max_hops)
            stale_sketches = [
                key
                for key in self._sketches
                if key[0] in touched or distances.get(key[0], max_hops + 1) <= key[1]
            ]
            for key in stale_sketches:
                del self._sketches[key]
            self.statistics.sketches_invalidated += len(stale_sketches)

    def _check(self) -> None:
        """Probe guard: refresh or raise if the graph has mutated."""
        graph = self._graph_ref()  # inlined self.graph: this runs per probe
        if graph is None:
            raise GraphError("the graph of this FragmentIndex no longer exists")
        if graph._version == self._built_version:
            recorder = graph._recorder
            if recorder is None or not recorder.dirty:
                return
        self.statistics.stale_probes += 1
        if self.mode == "raise":
            raise StaleIndexError(graph.name, self._built_version, graph.version)
        self.refresh()

    # ------------------------------------------------------------------
    # layer (a): label index
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: Label) -> frozenset:
        """Frozen set of nodes carrying *label* (no per-call copy)."""
        self._check()
        return self._nodes_by_label.get(label, _EMPTY_FROZEN)

    def count_nodes_with_label(self, label: Label) -> int:
        """Number of nodes carrying *label*."""
        self._check()
        return len(self._nodes_by_label.get(label, _EMPTY_FROZEN))

    def node_label(self, node: NodeId) -> Label:
        """Label of *node* (same contract as ``Graph.node_label``)."""
        self._check()
        try:
            return self._labels[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    # ------------------------------------------------------------------
    # layer (b): adjacency profiles
    # ------------------------------------------------------------------
    def profile(self, node: NodeId) -> Mapping:
        """Labelled adjacency profile of *node* (precomputed, do not mutate)."""
        self._check()
        try:
            return self._profiles[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    # ------------------------------------------------------------------
    # layer (c): frozen adjacency views
    # ------------------------------------------------------------------
    def out_neighbors(self, node: NodeId, label: Label) -> frozenset:
        """Frozen ``{target : node --label--> target}`` view, memoised."""
        self._check()
        key = (node, label)
        view = self._out_frozen.get(key)
        if view is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            view = frozenset(self.graph._out[node].get(label, ()))
            self._out_frozen[key] = view
        return view

    def in_neighbors(self, node: NodeId, label: Label) -> frozenset:
        """Frozen ``{source : source --label--> node}`` view, memoised."""
        self._check()
        key = (node, label)
        view = self._in_frozen.get(key)
        if view is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            view = frozenset(self.graph._in[node].get(label, ()))
            self._in_frozen[key] = view
        return view

    def neighbors(self, node: NodeId) -> frozenset:
        """Frozen undirected neighbourhood of *node*, memoised.

        ``Graph.neighbors`` allocates a fresh set (out ∪ in) on every call;
        ball extraction and the multi-source BFS helpers probe the same nodes
        over and over, so this view answers repeats with one dict read.
        Version-pinned like every other layer: a mutation drops exactly the
        touched entries (:meth:`_patch`) or the whole cache (rebuild).
        """
        self._check()
        view = self._neighbors_frozen.get(node)
        if view is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            view = frozenset(self.graph.neighbors(node))
            self._neighbors_frozen[node] = view
        return view

    # ------------------------------------------------------------------
    # layer (d): k-hop sketch cache
    # ------------------------------------------------------------------
    def sketch(self, node: NodeId, hops: int | None = None) -> KHopSketch:
        """Memoised k-hop sketch of *node*.

        Isolated nodes take the explicit empty-neighbourhood fast path: their
        sketch is materialised directly (all-empty hop histograms) without a
        BFS round-trip.
        """
        self._check()
        k = hops if hops is not None else self.default_hops
        key = (node, k)
        sketch = self._sketches.get(key)
        if sketch is None:
            if node not in self._labels:
                raise NodeNotFoundError(node)
            if not self._profiles[node]:
                # Empty profile == no incident edges: skip the BFS entirely.
                sketch = empty_sketch(node, k)
                self.statistics.sketch_fast_paths += 1
            else:
                sketch = build_sketch(self.graph, node, k)
                self.statistics.sketches_built += 1
            self._sketches[key] = sketch
        return sketch

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        graph = self._graph_ref()
        name = graph.name if graph is not None else "<collected>"
        return (
            f"FragmentIndex(graph={name!r}, mode={self.mode!r}, "
            f"version={self._built_version}, labels={len(self._nodes_by_label)}, "
            f"sketches={len(self._sketches)})"
        )


# ----------------------------------------------------------------------
# per-process registry
# ----------------------------------------------------------------------
# One index per graph object; weak keys keep transient graphs (extracted
# d-balls, test fixtures) collectable.  The lock only guards get-or-create:
# probes on a built index are plain dict reads under the GIL.
_REGISTRY: "weakref.WeakKeyDictionary[Graph, FragmentIndex]" = weakref.WeakKeyDictionary()
_REGISTRY_LOCK = threading.Lock()


def graph_index(
    graph: Graph,
    mode: str = "refresh",
    default_hops: int = DEFAULT_SKETCH_HOPS,
    rebuild_fraction: float | None = None,
) -> FragmentIndex:
    """The process-wide resident :class:`FragmentIndex` for *graph*.

    Builds the index on first use and memoises it against the graph object;
    every layer of the matching stack that probes the same graph shares one
    index.  *mode*/*default_hops*/*rebuild_fraction* only apply to the first
    (building) call.
    """
    index = _REGISTRY.get(graph)
    if index is None:
        with _REGISTRY_LOCK:
            index = _REGISTRY.get(graph)
            if index is None:
                index = FragmentIndex(
                    graph,
                    mode=mode,
                    default_hops=default_hops,
                    rebuild_fraction=rebuild_fraction,
                )
                _REGISTRY[graph] = index
    return index


def discard_index(graph: Graph) -> bool:
    """Drop the registered index of *graph*, if any; returns whether one existed."""
    with _REGISTRY_LOCK:
        return _REGISTRY.pop(graph, None) is not None


def registered_index(graph: Graph) -> FragmentIndex | None:
    """The registered index of *graph* without building one (None if absent)."""
    return _REGISTRY.get(graph)
