"""Descriptive statistics over graphs, used in reports and benchmarks."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.graph import Graph


@dataclass(frozen=True)
class GraphSummary:
    """A compact structural summary of a graph."""

    name: str
    num_nodes: int
    num_edges: int
    num_node_labels: int
    num_edge_labels: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int

    def as_row(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}: |V|={self.num_nodes} |E|={self.num_edges} "
            f"node labels={self.num_node_labels} edge labels={self.num_edge_labels} "
            f"avg out-degree={self.avg_out_degree:.2f}"
        )


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for *graph*."""
    max_out = 0
    max_in = 0
    for node in graph.nodes():
        max_out = max(max_out, graph.out_degree(node))
        max_in = max(max_in, graph.in_degree(node))
    avg_out = graph.num_edges / graph.num_nodes if graph.num_nodes else 0.0
    return GraphSummary(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_node_labels=len(graph.node_labels()),
        num_edge_labels=len(graph.edge_labels()),
        avg_out_degree=avg_out,
        max_out_degree=max_out,
        max_in_degree=max_in,
    )


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Histogram of total degree -> number of nodes with that degree."""
    counter: Counter = Counter()
    for node in graph.nodes():
        counter[graph.degree(node)] += 1
    return dict(counter)


def most_frequent_edge_patterns(graph: Graph, top: int = 20) -> list[tuple[str, str, str, int]]:
    """The *top* most frequent single-edge patterns.

    Returns tuples ``(source_label, edge_label, target_label, count)`` sorted
    by decreasing count.  DMine's default seeding uses the most frequent
    single-edge patterns of the data graph (paper Section 6, Exp-1).
    """
    counter: Counter = Counter()
    for edge in graph.edges():
        key = (
            graph.node_label(edge.source),
            edge.label,
            graph.node_label(edge.target),
        )
        counter[key] += 1
    # Ties break on the label triple, not Counter insertion order, so the
    # ranking depends only on graph content (edge iteration order follows
    # adjacency-set hash order, which varies across processes).
    ranked = sorted(counter.items(), key=lambda item: (-item[1], item[0]))[:top]
    return [
        (source_label, edge_label, target_label, count)
        for (source_label, edge_label, target_label), count in ranked
    ]
