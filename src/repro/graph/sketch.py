"""k-hop neighbourhood sketches for guided search (paper Section 5.2).

For each node ``v`` the sketch ``K(v)`` is a list ``[(1, D1), ..., (k, Dk)]``
where ``Di`` is the frequency distribution of node labels at exactly hop ``i``
from ``v`` (undirected).  The optimised ``Match`` algorithm uses sketches in
two ways:

* **pruning** — a graph node ``v`` cannot match a pattern node ``u`` if for
  some hop the pattern requires more nodes of a label than ``v`` has
  (:func:`sketch_dominates` is False);
* **ordering** — among surviving candidates, the one with the largest label
  surplus (:func:`sketch_score`) is tried first.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable

from repro.graph.graph import Graph
from repro.graph.neighborhood import bfs_distances

NodeId = Hashable


@dataclass(frozen=True)
class KHopSketch:
    """Per-hop node-label histograms around a node."""

    node: NodeId
    hops: int
    distributions: tuple[dict[str, int], ...] = field(default_factory=tuple)

    def distribution_at(self, hop: int) -> dict[str, int]:
        """Label histogram at exactly *hop* (1-based); empty dict if beyond."""
        if hop < 1:
            raise ValueError(f"hop must be >= 1, got {hop}")
        if hop > len(self.distributions):
            return {}
        return self.distributions[hop - 1]

    def total_count(self) -> int:
        """Total number of (node, hop) occurrences summarised by the sketch."""
        return sum(sum(dist.values()) for dist in self.distributions)


def empty_sketch(node: NodeId, hops: int) -> KHopSketch:
    """The sketch of a node with no neighbours: all-empty hop histograms.

    Used by the :class:`repro.graph.index.FragmentIndex` sketch cache as a
    fast path for isolated nodes, skipping the BFS round-trip entirely.
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    return KHopSketch(node=node, hops=hops, distributions=tuple({} for _ in range(hops)))


def build_sketch(graph: Graph, node: NodeId, hops: int) -> KHopSketch:
    """Compute the k-hop sketch of *node* in *graph*."""
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    distances = bfs_distances(graph, node, radius=hops, directed=False)
    per_hop: list[Counter] = [Counter() for _ in range(hops)]
    for other, distance in distances.items():
        if distance == 0:
            continue
        per_hop[distance - 1][graph.node_label(other)] += 1
    return KHopSketch(
        node=node,
        hops=hops,
        distributions=tuple(dict(counter) for counter in per_hop),
    )


def build_sketch_index(graph: Graph, hops: int, nodes=None) -> dict[NodeId, KHopSketch]:
    """Pre-compute sketches for *nodes* (default: all nodes) of *graph*."""
    targets = graph.nodes() if nodes is None else nodes
    return {node: build_sketch(graph, node, hops) for node in targets}


def sketch_dominates(candidate: KHopSketch, required: KHopSketch) -> bool:
    """Whether *candidate* has at least the label counts *required* demands.

    Cumulative comparison: a pattern node's neighbour at hop ``i`` may sit at
    any hop ``<= i`` around the graph candidate (shorter paths through denser
    graph regions), so we compare prefix sums rather than exact hop slices.
    Exact per-hop comparison would wrongly reject valid matches.
    """
    hops = max(candidate.hops, required.hops)
    candidate_cumulative: Counter = Counter()
    required_cumulative: Counter = Counter()
    for hop in range(1, hops + 1):
        candidate_cumulative.update(candidate.distribution_at(hop))
        required_cumulative.update(required.distribution_at(hop))
        for label, needed in required_cumulative.items():
            if candidate_cumulative.get(label, 0) < needed:
                return False
    return True


def sketch_score(candidate: KHopSketch, required: KHopSketch) -> int:
    """Total label-frequency surplus of *candidate* over *required*.

    The paper's ``f(u', v') = Σ_i (Di - D'i)``: larger means the candidate has
    more spare neighbourhood structure and is more likely to extend to a full
    match, so guided search visits high-score candidates first.
    """
    hops = max(candidate.hops, required.hops)
    score = 0
    for hop in range(1, hops + 1):
        candidate_dist = candidate.distribution_at(hop)
        required_dist = required.distribution_at(hop)
        labels = set(candidate_dist) | set(required_dist)
        for label in labels:
            score += candidate_dist.get(label, 0) - required_dist.get(label, 0)
    return score
