"""Subgraph extraction helpers (paper Section 2.1 notions of subgraph)."""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graph.graph import Edge, Graph

NodeId = Hashable


def induced_subgraph(graph: Graph, nodes: Iterable[NodeId], name: str | None = None) -> Graph:
    """Subgraph induced by *nodes*: all edges of *graph* between them."""
    return graph.induced_subgraph(nodes, name=name)


def subgraph_from_edges(
    graph: Graph,
    edges: Iterable[Edge | tuple],
    name: str | None = None,
) -> Graph:
    """Subgraph containing exactly *edges* (and their endpoints).

    Each edge may be an :class:`Edge` or a ``(source, target, label)`` tuple;
    every edge must exist in *graph* with matching label.
    """
    sub = Graph(name=name or f"{graph.name}|edges")
    for item in edges:
        if isinstance(item, Edge):
            source, target, label = item.source, item.target, item.label
        else:
            source, target, label = item
        if not graph.has_edge(source, target, label):
            raise ValueError(
                f"edge {source!r} -> {target!r} ({label!r}) is not in {graph.name}"
            )
        sub.add_node(source, graph.node_label(source))
        sub.add_node(target, graph.node_label(target))
        sub.add_edge(source, target, label)
    return sub


def is_subgraph(small: Graph, big: Graph) -> bool:
    """Whether *small* ⊆ *big* in the paper's sense (same ids, labels, edges)."""
    for node, label in small.node_items():
        if not big.has_node(node) or big.node_label(node) != label:
            return False
    for edge in small.edges():
        if not big.has_edge(edge.source, edge.target, edge.label):
            return False
    return True
