"""Columnar (array-backed) fragment views for the matching hot path.

The authoritative :class:`~repro.graph.graph.Graph` is a dict-of-dict-of-set
structure: perfect for mutation, wasteful to *probe* — every adjacency read
hashes strings and every ``neighbors`` call allocates a set.  This module
compiles a graph down to a frozen columnar view:

* **interned labels** — every node/edge label becomes a small integer through
  a shared, append-only :class:`LabelTable` (exposed as ``Graph.label_table``),
  so hot-path comparisons are int equality instead of string hashing;
* **CSR adjacency** — one compressed-sparse-row block per edge label and
  direction (``indptr``/``indices`` over dense node positions), built on
  stdlib ``array('q')`` buffers with an optional ``numpy`` fast path behind a
  feature probe (the core stays dependency-free; set ``REPRO_NO_NUMPY=1`` to
  force the stdlib path even when numpy is importable);
* **profile matrix** — the labelled adjacency profiles of
  :func:`repro.matching.candidates.adjacency_profile`, laid out as one
  ``|V| x |columns|`` count matrix whose columns are the observed
  ``(direction, edge label, neighbour label)`` triples.  Candidate filtering
  becomes a row (or, with numpy, whole-pool) comparison.

Invalidation mirrors :class:`repro.graph.index.FragmentIndex`: the view pins
``Graph.version`` at compile time, every probe goes through a ``_check`` that
refreshes on mismatch, and ``refresh()`` prefers delta-driven patching
(:meth:`ColumnarFragment.apply_delta`) over a full recompile while the
touched region stays under ``rebuild_fraction``.  A patch does not rewrite
the frozen arrays; touched nodes (and the profile rows of their neighbours)
move into small dict *overlays* that every probe consults first.  Fully
vectorized operations (the whole-pool candidate mask and the CSR simulation
fixpoint) require a pristine view — consumers fall back to the dict path
while overlays are present and regain the fast path at the next compile
boundary (fragment lease install, checkpoint capture, index build/refresh).
"""

from __future__ import annotations

import os
import sys
import threading
import weakref
from array import array
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.exceptions import GraphError
from repro.graph.graph import Graph, GraphDelta
from repro.graph.index import default_rebuild_fraction
from repro.obs.stats import StatisticsBase
from repro.obs.tracing import span

NodeId = Hashable
Label = str

#: Direction codes used in id-space profile triples.
OUT, IN = 0, 1

_EMPTY_FROZEN: frozenset = frozenset()


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when absent or disabled.

    The probe honours the ``REPRO_NO_NUMPY`` environment variable (any
    non-empty value forces the stdlib ``array`` path) so both code paths are
    testable on a machine that has numpy installed.  Resolved at every view
    compile, not at import time.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on the environment
        return None
    return numpy


def numpy_active() -> bool:
    """Whether views compiled now would take the numpy fast path."""
    return numpy_or_none() is not None


class LabelTable:
    """Append-only bidirectional ``label <-> small int`` interning table.

    Shared per graph (``Graph.label_table``): ids are stable for the lifetime
    of the table, labels are ``sys.intern``-ed on entry, and a label that
    disappears from the graph keeps its id (the table never shrinks, so a
    patched columnar view never sees an id change meaning).
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self) -> None:
        self._ids: dict[Label, int] = {}
        self._labels: list[Label] = []

    def __len__(self) -> int:
        return len(self._labels)

    def intern(self, label: Label) -> int:
        """Id of *label*, assigning the next free id on first sight."""
        label_id = self._ids.get(label)
        if label_id is None:
            if type(label) is str:
                label = sys.intern(label)
            label_id = len(self._labels)
            self._ids[label] = label_id
            self._labels.append(label)
        return label_id

    def id_of(self, label: Label) -> int | None:
        """Id of *label* without assigning one (``None`` when unknown)."""
        return self._ids.get(label)

    def label_of(self, label_id: int) -> Label:
        """The label carrying *label_id*."""
        return self._labels[label_id]

    def __getstate__(self):
        return self._labels

    def __setstate__(self, labels) -> None:
        self._labels = [sys.intern(label) if type(label) is str else label for label in labels]
        self._ids = {label: i for i, label in enumerate(self._labels)}


@dataclass(frozen=True)
class CompiledRequirement:
    """A pattern node's anchor requirement compiled into id/column space.

    ``label_id`` is the required node label (``-1`` when the label is unknown
    to the table — then no data node can match).  ``cols``/``needs`` cover
    the needed triples that have a profile-matrix column; ``missing`` holds
    needed triples without one (no array-resident node can satisfy those,
    only overlay nodes possibly can).  ``triples`` is the full id-space
    required profile used for overlay (dict) checks.
    """

    label_id: int
    cols: tuple[int, ...]
    needs: tuple[int, ...]
    missing: tuple[tuple[int, int, int], ...]
    triples: tuple[tuple[tuple[int, int, int], int], ...]


@dataclass
class ColumnarStatistics(StatisticsBase):
    """Build/probe counters of one :class:`ColumnarFragment` (used by tests).

    Snapshot/merge via :class:`repro.obs.stats.StatisticsBase`; collected as
    ``repro_columnar_*_total`` when ``REPRO_OBS`` is on.
    """

    _metric_kind = "columnar"

    builds: int = 0
    refreshes: int = 0
    delta_applies: int = 0
    mask_filters: int = 0
    row_filters: int = 0
    simulations: int = 0
    fallbacks: int = 0


def _csr_from_pairs(num_nodes: int, sources, targets, np):
    """Counting-sort edge pairs into a ``(indptr, indices)`` CSR block."""
    if np is not None:
        src = np.asarray(sources, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
        order = np.argsort(src, kind="stable")
        return indptr, tgt[order]
    counts = [0] * num_nodes
    for source in sources:
        counts[source] += 1
    indptr = array("q", [0] * (num_nodes + 1))
    total = 0
    for position, count in enumerate(counts):
        total += count
        indptr[position + 1] = total
    cursor = list(indptr[:num_nodes])
    indices = array("q", [0] * len(sources))
    for source, target in zip(sources, targets):
        indices[cursor[source]] = target
        cursor[source] += 1
    return indptr, indices


class ColumnarFragment:
    """Frozen array-backed view of one graph (see the module docstring)."""

    __slots__ = (
        "_graph_ref",
        "rebuild_fraction",
        "statistics",
        "labels",
        "_np",
        "_built_version",
        "_node_ids",
        "_pos",
        "_label_ids",
        "_buckets",
        "_out_csr",
        "_in_csr",
        "_columns",
        "_num_columns",
        "_counts",
        "_positions_by_label",
        "_overlay_labels",
        "_overlay_profiles",
        "_overlay_out",
        "_overlay_in",
        "__weakref__",
    )

    def __init__(self, graph: Graph, rebuild_fraction: float | None = None) -> None:
        if rebuild_fraction is not None and not 0.0 <= rebuild_fraction <= 1.0:
            raise ValueError(
                f"rebuild_fraction must be in [0, 1], got {rebuild_fraction}"
            )
        self.rebuild_fraction = (
            rebuild_fraction if rebuild_fraction is not None else default_rebuild_fraction()
        )
        # Weak reference for the same reason as FragmentIndex: the registry
        # maps graph -> view with weak keys, and the view must never keep a
        # transient graph alive.
        self._graph_ref = weakref.ref(graph)
        self.statistics = ColumnarStatistics()
        self._build()

    @property
    def graph(self) -> Graph:
        """The compiled graph; raises if it has been garbage collected."""
        graph = self._graph_ref()
        if graph is None:
            raise GraphError("the graph of this ColumnarFragment no longer exists")
        return graph

    # ------------------------------------------------------------------
    # compile / invalidation
    # ------------------------------------------------------------------
    def _build(self) -> None:
        with span("columnar.compile", graph=str(self.graph.name)):
            self._compile()

    def _compile(self) -> None:
        graph = self.graph
        table = graph.label_table  # shared, append-only; tops itself up
        np = numpy_or_none()
        self._np = np
        node_ids = list(graph._labels)
        pos = {node: position for position, node in enumerate(node_ids)}
        num_nodes = len(node_ids)
        label_ids = array("q", (table.intern(graph._labels[node]) for node in node_ids))
        buckets: dict[int, frozenset] = {
            table.intern(label): frozenset(nodes)
            for label, nodes in graph._nodes_by_label.items()
        }
        # One (sources, targets) pair list per edge-label id; the in-CSR is
        # the same pairs with the roles swapped.
        pairs: dict[int, tuple[array, array]] = {}
        for source, by_label in graph._out.items():
            source_pos = pos[source]
            for edge_label, targets in by_label.items():
                edge_label_id = table.intern(edge_label)
                entry = pairs.get(edge_label_id)
                if entry is None:
                    entry = pairs[edge_label_id] = (array("q"), array("q"))
                sources_arr, targets_arr = entry
                for target in targets:
                    sources_arr.append(source_pos)
                    targets_arr.append(pos[target])
        self._out_csr = {
            edge_label_id: _csr_from_pairs(num_nodes, sources_arr, targets_arr, np)
            for edge_label_id, (sources_arr, targets_arr) in pairs.items()
        }
        self._in_csr = {
            edge_label_id: _csr_from_pairs(num_nodes, targets_arr, sources_arr, np)
            for edge_label_id, (sources_arr, targets_arr) in pairs.items()
        }
        # Profile matrix: collect id-space profiles, then lay out the
        # observed triples as columns (sorted for a deterministic order).
        profiles: list[dict[tuple[int, int, int], int]] = [{} for _ in range(num_nodes)]
        for edge_label_id, (sources_arr, targets_arr) in pairs.items():
            for source_pos, target_pos in zip(sources_arr, targets_arr):
                out_key = (OUT, edge_label_id, label_ids[target_pos])
                profile = profiles[source_pos]
                profile[out_key] = profile.get(out_key, 0) + 1
                in_key = (IN, edge_label_id, label_ids[source_pos])
                profile = profiles[target_pos]
                profile[in_key] = profile.get(in_key, 0) + 1
        observed: set[tuple[int, int, int]] = set()
        for profile in profiles:
            observed.update(profile)
        columns = {triple: column for column, triple in enumerate(sorted(observed))}
        num_columns = len(columns)
        if np is not None:
            counts = np.zeros((num_nodes, num_columns), dtype=np.int64)
            for position, profile in enumerate(profiles):
                row = counts[position]
                for triple, count in profile.items():
                    row[columns[triple]] = count
            label_array = np.asarray(label_ids, dtype=np.int64)
        else:
            counts = array("q", bytes(8 * num_nodes * num_columns))
            for position, profile in enumerate(profiles):
                base = position * num_columns
                for triple, count in profile.items():
                    counts[base + columns[triple]] = count
            label_array = label_ids
        self.labels = table
        self._node_ids = node_ids
        self._pos = pos
        self._label_ids = label_array
        self._buckets = buckets
        self._columns = columns
        self._num_columns = num_columns
        self._counts = counts
        self._positions_by_label: dict[int, object] = {}
        self._overlay_labels: dict[NodeId, int] = {}
        self._overlay_profiles: dict[NodeId, dict[tuple[int, int, int], int]] = {}
        self._overlay_out: dict[NodeId, dict[int, tuple[int, ...]]] = {}
        self._overlay_in: dict[NodeId, dict[int, tuple[int, ...]]] = {}
        self._built_version = graph.version
        self.statistics.builds += 1

    @property
    def built_version(self) -> int:
        """Graph version the current contents were compiled from."""
        return self._built_version

    @property
    def is_stale(self) -> bool:
        """Whether the graph has mutated since the view was (re)compiled."""
        return self.graph.version != self._built_version

    @property
    def pristine(self) -> bool:
        """Whether no patch overlays are present (fully vectorizable)."""
        return not (self._overlay_labels or self._overlay_profiles)

    def refresh(self) -> None:
        """Bring the view up to date: patch forward from deltas or recompile."""
        graph = self.graph
        if graph.in_batch:
            raise GraphError(
                f"cannot refresh the columnar view of graph {graph.name!r} while "
                "a batch_update is open: the graph is in a half-applied state"
            )
        with span("columnar.refresh", graph=str(graph.name)) as trace:
            deltas = graph.deltas_since(self._built_version)
            if deltas is not None:
                touched_total = sum(len(delta.touched) for delta in deltas)
                if touched_total <= self.rebuild_fraction * max(1, graph.num_nodes):
                    for delta in deltas:
                        if not self.apply_delta(delta):  # pragma: no cover - chain guard
                            deltas = None
                            break
                    if deltas is not None:
                        self.statistics.refreshes += 1
                        trace.set(decision="patch", touched=touched_total)
                        return
                else:
                    deltas = None
            trace.set(decision="recompile")
            self._build()
            self.statistics.refreshes += 1

    def apply_delta(self, delta: GraphDelta) -> bool:
        """Patch the view in place with one recorded graph delta.

        Requires ``delta.base_version`` to equal :attr:`built_version`
        (returns ``False``, leaving the view untouched, otherwise).  Label
        buckets are patched like ``FragmentIndex``; touched nodes — and the
        profile rows of their current neighbours — move into dict overlays
        that every probe consults before the frozen arrays.  After the patch
        every probe answers exactly as a fresh compile would; only the
        whole-array fast paths (:attr:`pristine`) are suspended until the
        next recompile.
        """
        if delta.base_version != self._built_version:
            return False
        graph = self.graph
        if graph.in_batch:
            raise GraphError(
                f"cannot patch the columnar view of graph {graph.name!r} while "
                "a batch_update is open: the graph is in a half-applied state"
            )
        if not delta.net_empty:
            self._patch(delta.touched)
        self._built_version = delta.result_version
        self.statistics.delta_applies += 1
        return True

    def _patch(self, touched: frozenset) -> None:
        graph = self.graph
        table = graph.label_table
        labels = graph._labels
        # Label buckets + label overlay for the touched nodes.
        for node in touched:
            old_id = self._label_id_of(node)
            new_label = labels.get(node)
            new_id = table.intern(new_label) if new_label is not None else -1
            if old_id != new_id:
                if old_id is not None and old_id >= 0:
                    bucket = self._buckets.get(old_id, _EMPTY_FROZEN) - {node}
                    if bucket:
                        self._buckets[old_id] = bucket
                    else:
                        self._buckets.pop(old_id, None)
                if new_id >= 0:
                    self._buckets[new_id] = self._buckets.get(new_id, _EMPTY_FROZEN) | {node}
            self._overlay_labels[node] = new_id
        # Profiles of the touched nodes and their current neighbours;
        # adjacency overlays for the touched nodes only (an untouched node's
        # neighbour sets are unchanged by definition).
        recompute: set = set()
        for node in touched:
            if node in labels:
                recompute.add(node)
                recompute.update(graph.neighbors(node))
            else:
                self._overlay_profiles.pop(node, None)
                self._overlay_out.pop(node, None)
                self._overlay_in.pop(node, None)
        for node in recompute:
            profile: dict[tuple[int, int, int], int] = {}
            for edge_label, targets in graph._out[node].items():
                edge_label_id = table.intern(edge_label)
                for target in targets:
                    key = (OUT, edge_label_id, table.intern(labels[target]))
                    profile[key] = profile.get(key, 0) + 1
            for edge_label, sources in graph._in[node].items():
                edge_label_id = table.intern(edge_label)
                for source in sources:
                    key = (IN, edge_label_id, table.intern(labels[source]))
                    profile[key] = profile.get(key, 0) + 1
            self._overlay_profiles[node] = profile
        for node in touched:
            if node not in labels:
                continue
            self._overlay_out[node] = {
                table.intern(edge_label): tuple(targets)
                for edge_label, targets in graph._out[node].items()
            }
            self._overlay_in[node] = {
                table.intern(edge_label): tuple(sources)
                for edge_label, sources in graph._in[node].items()
            }
        self._positions_by_label = {}

    def _check(self) -> None:
        """Probe guard: refresh if the graph has mutated since compile."""
        graph = self._graph_ref()
        if graph is None:
            raise GraphError("the graph of this ColumnarFragment no longer exists")
        if graph._version == self._built_version:
            recorder = graph._recorder
            if recorder is None or not recorder.dirty:
                return
        self.refresh()

    # ------------------------------------------------------------------
    # probes: labels and buckets
    # ------------------------------------------------------------------
    def _label_id_of(self, node: NodeId) -> int | None:
        """Current label id of *node* (-1 = removed, None = never seen)."""
        overlay = self._overlay_labels.get(node)
        if overlay is not None:
            return overlay
        position = self._pos.get(node)
        if position is None:
            return None
        return self._label_ids[position]

    def nodes_with_label(self, label: Label) -> frozenset:
        """Frozen set of node ids carrying *label* (interned bucket probe)."""
        self._check()
        label_id = self.labels.id_of(label)
        if label_id is None:
            return _EMPTY_FROZEN
        return self._buckets.get(label_id, _EMPTY_FROZEN)

    # ------------------------------------------------------------------
    # probes: profile matrix
    # ------------------------------------------------------------------
    def compile_requirement(self, pattern, pattern_node) -> CompiledRequirement:
        """Compile a pattern node's required profile into id/column space."""
        self._check()
        id_of = self.labels.id_of
        anchor_label_id = id_of(pattern.label(pattern_node))
        needed: dict[tuple[int, int, int], int] = {}
        unknown = False
        for edge in pattern.out_edges(pattern_node):
            edge_id = id_of(edge.label)
            target_id = id_of(pattern.label(edge.target))
            if edge_id is None or target_id is None:
                unknown = True
                continue
            key = (OUT, edge_id, target_id)
            needed[key] = needed.get(key, 0) + 1
        for edge in pattern.in_edges(pattern_node):
            edge_id = id_of(edge.label)
            source_id = id_of(pattern.label(edge.source))
            if edge_id is None or source_id is None:
                unknown = True
                continue
            key = (IN, edge_id, source_id)
            needed[key] = needed.get(key, 0) + 1
        if unknown or anchor_label_id is None:
            # Some required label never occurs in the graph's table, so no
            # data node (array or overlay) can satisfy the requirement.
            return CompiledRequirement(-1, (), (), (), ())
        cols: list[int] = []
        needs: list[int] = []
        missing: list[tuple[int, int, int]] = []
        for triple, count in needed.items():
            column = self._columns.get(triple)
            if column is None:
                missing.append(triple)
            else:
                cols.append(column)
                needs.append(count)
        return CompiledRequirement(
            anchor_label_id,
            tuple(cols),
            tuple(needs),
            tuple(missing),
            tuple(needed.items()),
        )

    def dominates(self, node: NodeId, requirement: CompiledRequirement) -> bool:
        """Whether *node*'s label + profile satisfy *requirement*."""
        self._check()
        return self._dominates_unchecked(node, requirement)

    def _dominates_unchecked(self, node: NodeId, requirement: CompiledRequirement) -> bool:
        if requirement.label_id < 0:
            return False
        label_id = self._label_id_of(node)
        if label_id != requirement.label_id:
            return False
        overlay = self._overlay_profiles.get(node)
        if overlay is not None:
            return all(overlay.get(triple, 0) >= count for triple, count in requirement.triples)
        position = self._pos.get(node)
        if position is None:
            return False
        if requirement.missing:
            return False
        counts = self._counts
        if self._np is not None:
            row = counts[position]
            return all(row[column] >= count for column, count in zip(requirement.cols, requirement.needs))
        base = position * self._num_columns
        return all(
            counts[base + column] >= count
            for column, count in zip(requirement.cols, requirement.needs)
        )

    def filter_candidates(
        self, pool: Iterable[NodeId], requirement: CompiledRequirement
    ) -> list[NodeId]:
        """Pool members whose label + profile satisfy *requirement*.

        A necessary-condition filter: every returned node may still fail the
        full search, but no dropped node could have matched.  With numpy and
        a pristine view the whole pool is masked in a few array operations;
        otherwise each member gets an int row comparison (still no string
        hashing).
        """
        self._check()
        if requirement.label_id < 0:
            return []
        np = self._np
        if np is not None and self.pristine and not requirement.missing:
            pool_list = list(pool)
            positions = np.fromiter(
                (self._pos.get(node, -1) for node in pool_list),
                dtype=np.int64,
                count=len(pool_list),
            )
            known = positions >= 0
            safe = np.where(known, positions, 0)
            keep = known & (self._label_ids[safe] == requirement.label_id)
            if requirement.cols:
                cols = np.asarray(requirement.cols, dtype=np.int64)
                needs = np.asarray(requirement.needs, dtype=np.int64)
                keep &= (self._counts[safe][:, cols] >= needs).all(axis=1)
            self.statistics.mask_filters += 1
            return [node for node, ok in zip(pool_list, keep) if ok]
        self.statistics.row_filters += 1
        return [node for node in pool if self._dominates_unchecked(node, requirement)]

    # ------------------------------------------------------------------
    # probes: CSR dual simulation
    # ------------------------------------------------------------------
    def _positions_with_label(self, label_id: int):
        entry = self._positions_by_label.get(label_id)
        if entry is None:
            np = self._np
            if np is not None:
                entry = np.flatnonzero(self._label_ids == label_id)
            else:
                entry = [
                    position
                    for position, current in enumerate(self._label_ids)
                    if current == label_id
                ]
            self._positions_by_label[label_id] = entry
        return entry

    def dual_simulation(self, pattern) -> dict | None:
        """Maximum dual simulation of *pattern* over the CSR arrays.

        Returns ``pattern node -> set of data node ids`` — exactly the
        fixpoint :func:`repro.matching.simulation.maximum_dual_simulation`
        computes on the dict graph — or ``None`` when the view carries patch
        overlays (the caller falls back to the dict path; the next compile
        boundary restores the fast path).  *pattern* must be copy-expanded.
        """
        self._check()
        if not self.pristine:
            self.statistics.fallbacks += 1
            return None
        self.statistics.simulations += 1
        if self._np is not None:
            return self._dual_simulation_numpy(pattern)
        return self._dual_simulation_array(pattern)

    def _empty_result(self, pattern) -> dict:
        return {node: set() for node in pattern.nodes()}

    def _dual_simulation_numpy(self, pattern) -> dict:
        np = self._np
        num_nodes = len(self._node_ids)
        label_ids = self._label_ids
        simulation: dict = {}
        for node in pattern.nodes():
            label_id = self.labels.id_of(pattern.label(node))
            if label_id is None:
                return self._empty_result(pattern)
            mask = label_ids == label_id
            if not mask.any():
                return self._empty_result(pattern)
            simulation[node] = mask
        pattern_nodes = list(pattern.nodes())
        changed = True
        while changed:
            changed = False
            for node in pattern_nodes:
                mask = simulation[node]
                for edge in pattern.out_edges(node):
                    mask = mask & self._csr_any(
                        self._out_csr.get(self.labels.id_of(edge.label)),
                        simulation[edge.target],
                        num_nodes,
                    )
                for edge in pattern.in_edges(node):
                    mask = mask & self._csr_any(
                        self._in_csr.get(self.labels.id_of(edge.label)),
                        simulation[edge.source],
                        num_nodes,
                    )
                if not np.array_equal(mask, simulation[node]):
                    simulation[node] = mask
                    changed = True
            if any(not simulation[node].any() for node in pattern_nodes):
                return self._empty_result(pattern)
        node_ids = self._node_ids
        return {
            node: {node_ids[position] for position in np.flatnonzero(mask)}
            for node, mask in simulation.items()
        }

    def _csr_any(self, csr, target_mask, num_nodes: int):
        """Boolean array: position has >= 1 CSR neighbour inside *target_mask*."""
        np = self._np
        if csr is None:
            return np.zeros(num_nodes, dtype=bool)
        indptr, indices = csr
        hits = target_mask[indices]
        cumulative = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(hits, out=cumulative[1:])
        return (cumulative[indptr[1:]] - cumulative[indptr[:-1]]) > 0

    def _dual_simulation_array(self, pattern) -> dict:
        simulation: dict = {}
        for node in pattern.nodes():
            label_id = self.labels.id_of(pattern.label(node))
            if label_id is None:
                return self._empty_result(pattern)
            positions = self._positions_with_label(label_id)
            if not len(positions):
                return self._empty_result(pattern)
            simulation[node] = set(positions)
        pattern_nodes = list(pattern.nodes())
        changed = True
        while changed:
            changed = False
            for node in pattern_nodes:
                survivors = set()
                for position in simulation[node]:
                    if self._position_consistent(pattern, node, position, simulation):
                        survivors.add(position)
                if survivors != simulation[node]:
                    simulation[node] = survivors
                    changed = True
            if any(not simulation[node] for node in pattern_nodes):
                return self._empty_result(pattern)
        node_ids = self._node_ids
        return {
            node: {node_ids[position] for position in positions}
            for node, positions in simulation.items()
        }

    def _position_consistent(self, pattern, node, position: int, simulation) -> bool:
        for edge in pattern.out_edges(node):
            if not self._csr_row_hits(
                self._out_csr.get(self.labels.id_of(edge.label)),
                position,
                simulation[edge.target],
            ):
                return False
        for edge in pattern.in_edges(node):
            if not self._csr_row_hits(
                self._in_csr.get(self.labels.id_of(edge.label)),
                position,
                simulation[edge.source],
            ):
                return False
        return True

    @staticmethod
    def _csr_row_hits(csr, position: int, targets: set) -> bool:
        if csr is None:
            return False
        indptr, indices = csr
        for offset in range(indptr[position], indptr[position + 1]):
            if indices[offset] in targets:
                return True
        return False

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        graph = self._graph_ref()
        name = graph.name if graph is not None else "<collected>"
        backend = "numpy" if self._np is not None else "array"
        return (
            f"ColumnarFragment(graph={name!r}, backend={backend}, "
            f"version={self._built_version}, nodes={len(self._node_ids)}, "
            f"columns={self._num_columns}, pristine={self.pristine})"
        )


# ----------------------------------------------------------------------
# per-process registry (mirrors repro.graph.index.graph_index)
# ----------------------------------------------------------------------
_REGISTRY: "weakref.WeakKeyDictionary[Graph, ColumnarFragment]" = weakref.WeakKeyDictionary()
_REGISTRY_LOCK = threading.Lock()


def columnar_view(graph: Graph, rebuild_fraction: float | None = None) -> ColumnarFragment:
    """The process-wide resident :class:`ColumnarFragment` for *graph*.

    Compiles the view on first use and memoises it against the graph object;
    *rebuild_fraction* only applies to the first (compiling) call.
    """
    view = _REGISTRY.get(graph)
    if view is None:
        with _REGISTRY_LOCK:
            view = _REGISTRY.get(graph)
            if view is None:
                view = ColumnarFragment(graph, rebuild_fraction=rebuild_fraction)
                _REGISTRY[graph] = view
    return view


def discard_columnar(graph: Graph) -> bool:
    """Drop the registered view of *graph*, if any; returns whether one existed."""
    with _REGISTRY_LOCK:
        return _REGISTRY.pop(graph, None) is not None


def registered_columnar(graph: Graph) -> ColumnarFragment | None:
    """The registered view of *graph* without compiling one (None if absent)."""
    return _REGISTRY.get(graph)
