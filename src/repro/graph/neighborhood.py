"""Bounded breadth-first search utilities.

The paper's algorithms rely on *data locality* of subgraph isomorphism: a node
``vx`` matches the designated node ``x`` of a pattern of radius ``d`` iff it
matches inside the d-neighbourhood ``Gd(vx)`` — the subgraph induced by all
nodes within (undirected) distance ``d`` of ``vx`` (Sections 4.2 and 5.1).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.exceptions import NodeNotFoundError
from repro.graph.graph import Graph

NodeId = Hashable


def bfs_distances(
    graph: Graph,
    source: NodeId,
    radius: int | None = None,
    directed: bool = False,
    index=None,
) -> dict[NodeId, int]:
    """Map each node within *radius* of *source* to its hop distance.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Start node (distance 0).
    radius:
        Maximum distance to explore; ``None`` explores the whole component.
    directed:
        If ``True`` follow out-edges only; otherwise treat edges as
        undirected (the paper's notion of radius and ``Nr(vx)``).
    index:
        Optional resident :class:`repro.graph.index.FragmentIndex` of
        *graph*; undirected frontiers are then served from its memoised
        frozen neighbourhood view instead of a fresh set per visited node.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: dict[NodeId, int] = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        current = queue.popleft()
        current_distance = distances[current]
        if radius is not None and current_distance >= radius:
            continue
        if directed:
            frontier = graph.out_neighbors(current)
        elif index is not None:
            frontier = index.neighbors(current)
        else:
            frontier = graph.neighbors(current)
        for neighbor in frontier:
            if neighbor not in distances:
                distances[neighbor] = current_distance + 1
                queue.append(neighbor)
    return distances


def multi_source_distances(
    graph: Graph,
    sources,
    radius: int,
    index=None,
) -> dict[NodeId, int]:
    """Hop distance to the nearest of *sources*, for nodes within *radius*.

    Sources absent from the graph are skipped (streaming deltas legitimately
    name removed nodes).  Edges are treated as undirected, matching the
    paper's ball notion — and the ball-scoped invalidation lemma of
    ``docs/streaming.md``, whose consumers (`FragmentIndex.apply_delta`,
    `MatchStore.repair`, `StreamingIdentifier`) all derive their affected
    regions through this one helper.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    distances: dict[NodeId, int] = {
        source: 0 for source in sources if graph.has_node(source)
    }
    frontier = list(distances)
    neighbors = graph.neighbors if index is None else index.neighbors
    for hop in range(1, radius + 1):
        next_frontier: list[NodeId] = []
        for node in frontier:
            for neighbor in neighbors(node):
                if neighbor not in distances:
                    distances[neighbor] = hop
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return distances


def multi_source_ball(graph: Graph, sources, radius: int, index=None) -> set[NodeId]:
    """Nodes within *radius* hops of any of *sources* (undirected)."""
    return set(multi_source_distances(graph, sources, radius, index=index))


def ball(graph: Graph, center: NodeId, radius: int, index=None) -> set[NodeId]:
    """``Nr(vx)``: the set of nodes within *radius* hops of *center*.

    Includes *center* itself (distance 0).
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    return set(bfs_distances(graph, center, radius=radius, index=index))


def d_neighborhood(
    graph: Graph, center: NodeId, d: int, name: str | None = None, index=None
) -> Graph:
    """``Gd(vx)``: the subgraph induced by ``Nd(vx)``.

    This is the unit of work shipped to a worker in both DMine and Match.
    """
    nodes = ball(graph, center, d, index=index)
    return graph.induced_subgraph(nodes, name=name or f"{graph.name}|G{d}({center})")


def eccentricity(graph: Graph, source: NodeId) -> int:
    """Longest undirected shortest-path distance from *source*.

    Only the component containing *source* is considered; for the connected
    patterns the paper allows this equals the radius ``r(Q, x)``.
    """
    distances = bfs_distances(graph, source, radius=None, directed=False)
    return max(distances.values()) if distances else 0
