"""Directed, node- and edge-labelled property graph.

This is the substrate every other subsystem builds on.  It is deliberately a
plain-Python adjacency structure (dict-of-dict-of-set) rather than a wrapper
around networkx: the mining loops probe ``has_edge`` and ``out_neighbors``
millions of times and the indirection of a general-purpose library is the
bottleneck the reproduction hint warns about.

Model (paper Section 2.1)
-------------------------
* ``G = (V, E, L)`` with a finite node set, directed edges, and a label on
  every node and every edge.
* Parallel edges with *different* labels between the same pair of nodes are
  allowed (e.g. both ``like`` and ``visit`` from a customer to a restaurant);
  parallel edges with the same label are not (they would be indistinguishable
  to the matcher and to the support metrics).
* ``|G| = |V| + |E|`` (the paper's size measure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError

NodeId = Hashable
Label = str


@dataclass(frozen=True)
class Edge:
    """A directed labelled edge ``source --label--> target``."""

    source: NodeId
    target: NodeId
    label: Label

    def reversed(self) -> "Edge":
        """Return the edge with source and target swapped (same label)."""
        return Edge(self.target, self.source, self.label)


class Graph:
    """A directed graph with labelled nodes and labelled edges.

    Parameters
    ----------
    name:
        Optional human-readable name used in ``repr`` and benchmark reports.

    Example
    -------
    >>> g = Graph(name="toy")
    >>> g.add_node("alice", "cust")
    >>> g.add_node("cafe", "restaurant")
    >>> g.add_edge("alice", "cafe", "visit")
    >>> g.has_edge("alice", "cafe", "visit")
    True
    >>> sorted(g.nodes_with_label("cust"))
    ['alice']
    """

    __slots__ = (
        "name",
        "_labels",
        "_attrs",
        "_out",
        "_in",
        "_nodes_by_label",
        "_num_edges",
        "_edge_label_counts",
        "_version",
        "__weakref__",
    )

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        # node id -> node label
        self._labels: dict[NodeId, Label] = {}
        # node id -> optional attribute dict (created lazily)
        self._attrs: dict[NodeId, dict[str, Any]] = {}
        # source -> edge label -> set of targets
        self._out: dict[NodeId, dict[Label, set[NodeId]]] = {}
        # target -> edge label -> set of sources
        self._in: dict[NodeId, dict[Label, set[NodeId]]] = {}
        # node label -> set of node ids
        self._nodes_by_label: dict[Label, set[NodeId]] = {}
        self._num_edges = 0
        # edge label -> count
        self._edge_label_counts: dict[Label, int] = {}
        # Mutation counter: bumped by every structural change, so derived
        # structures (e.g. repro.graph.index.FragmentIndex) can detect
        # staleness with a single integer comparison.
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: NodeId,
        label: Label,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        """Add a node with *label*; re-adding with a different label fails."""
        existing = self._labels.get(node_id)
        if existing is not None:
            if existing != label:
                raise GraphError(
                    f"node {node_id!r} already exists with label {existing!r}; "
                    f"cannot re-add it with label {label!r}"
                )
            if attrs:
                self._attrs.setdefault(node_id, {}).update(attrs)
            return
        self._labels[node_id] = label
        self._out[node_id] = {}
        self._in[node_id] = {}
        self._nodes_by_label.setdefault(label, set()).add(node_id)
        if attrs:
            self._attrs[node_id] = dict(attrs)
        self._version += 1

    def add_edge(self, source: NodeId, target: NodeId, label: Label) -> bool:
        """Add edge ``source --label--> target``.

        Both endpoints must already exist.  Returns ``True`` if the edge was
        new, ``False`` if an identical edge was already present (the graph is
        left unchanged in that case).
        """
        if source not in self._labels:
            raise NodeNotFoundError(source)
        if target not in self._labels:
            raise NodeNotFoundError(target)
        targets = self._out[source].setdefault(label, set())
        if target in targets:
            return False
        targets.add(target)
        self._in[target].setdefault(label, set()).add(source)
        self._num_edges += 1
        self._edge_label_counts[label] = self._edge_label_counts.get(label, 0) + 1
        self._version += 1
        return True

    def remove_edge(self, source: NodeId, target: NodeId, label: Label) -> None:
        """Remove an edge; raises :class:`EdgeNotFoundError` if absent."""
        targets = self._out.get(source, {}).get(label)
        if not targets or target not in targets:
            raise EdgeNotFoundError(source, target, label)
        targets.discard(target)
        if not targets:
            del self._out[source][label]
        sources = self._in[target][label]
        sources.discard(source)
        if not sources:
            del self._in[target][label]
        self._num_edges -= 1
        remaining = self._edge_label_counts[label] - 1
        if remaining:
            self._edge_label_counts[label] = remaining
        else:
            del self._edge_label_counts[label]
        self._version += 1

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node and all incident edges."""
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        for label, targets in list(self._out[node_id].items()):
            for target in list(targets):
                self.remove_edge(node_id, target, label)
        for label, sources in list(self._in[node_id].items()):
            for source in list(sources):
                self.remove_edge(source, node_id, label)
        label = self._labels.pop(node_id)
        self._nodes_by_label[label].discard(node_id)
        if not self._nodes_by_label[label]:
            del self._nodes_by_label[label]
        del self._out[node_id]
        del self._in[node_id]
        self._attrs.pop(node_id, None)
        self._version += 1

    def relabel_node(self, node_id: NodeId, label: Label) -> None:
        """Change the label of an existing node (no-op if unchanged)."""
        existing = self._labels.get(node_id)
        if existing is None:
            raise NodeNotFoundError(node_id)
        if existing == label:
            return
        self._labels[node_id] = label
        old_bucket = self._nodes_by_label[existing]
        old_bucket.discard(node_id)
        if not old_bucket:
            del self._nodes_by_label[existing]
        self._nodes_by_label.setdefault(label, set()).add(node_id)
        self._version += 1

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._num_edges

    @property
    def size(self) -> int:
        """The paper's size measure ``|G| = |V| + |E|``."""
        return self.num_nodes + self._num_edges

    @property
    def version(self) -> int:
        """Monotonic mutation counter (see :mod:`repro.graph.index`)."""
        return self._version

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._labels

    def has_node(self, node_id: NodeId) -> bool:
        """Whether *node_id* is a node of the graph."""
        return node_id in self._labels

    def node_label(self, node_id: NodeId) -> Label:
        """Return the label of *node_id*."""
        try:
            return self._labels[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def node_attrs(self, node_id: NodeId) -> dict[str, Any]:
        """Return the (possibly empty) attribute dict of *node_id*."""
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        return self._attrs.get(node_id, {})

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids."""
        return iter(self._labels)

    def node_items(self) -> Iterator[tuple[NodeId, Label]]:
        """Iterate over ``(node_id, label)`` pairs."""
        return iter(self._labels.items())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as :class:`Edge` instances."""
        for source, by_label in self._out.items():
            for label, targets in by_label.items():
                for target in targets:
                    yield Edge(source, target, label)

    def has_edge(self, source: NodeId, target: NodeId, label: Label | None = None) -> bool:
        """Whether an edge from *source* to *target* exists.

        If *label* is ``None`` any edge label counts; otherwise the label must
        match exactly.
        """
        by_label = self._out.get(source)
        if not by_label:
            return False
        if label is None:
            return any(target in targets for targets in by_label.values())
        targets = by_label.get(label)
        return bool(targets) and target in targets

    def edge_labels_between(self, source: NodeId, target: NodeId) -> set[Label]:
        """Set of labels of edges from *source* to *target*."""
        by_label = self._out.get(source, {})
        return {label for label, targets in by_label.items() if target in targets}

    # ------------------------------------------------------------------
    # label index
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: Label) -> set[NodeId]:
        """Return (a copy of) the set of nodes carrying *label*."""
        return set(self._nodes_by_label.get(label, ()))

    def count_nodes_with_label(self, label: Label) -> int:
        """Number of nodes carrying *label* (no copy)."""
        return len(self._nodes_by_label.get(label, ()))

    def node_labels(self) -> set[Label]:
        """The set of distinct node labels present in the graph."""
        return set(self._nodes_by_label)

    def edge_labels(self) -> set[Label]:
        """The set of distinct edge labels present in the graph."""
        return set(self._edge_label_counts)

    def node_label_counts(self) -> dict[Label, int]:
        """Histogram of node labels."""
        return {label: len(nodes) for label, nodes in self._nodes_by_label.items()}

    def edge_label_counts(self) -> dict[Label, int]:
        """Histogram of edge labels."""
        return dict(self._edge_label_counts)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, node_id: NodeId, label: Label | None = None) -> set[NodeId]:
        """Targets of out-edges of *node_id*, optionally restricted by label."""
        by_label = self._out.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        if label is not None:
            return set(by_label.get(label, ()))
        result: set[NodeId] = set()
        for targets in by_label.values():
            result.update(targets)
        return result

    def in_neighbors(self, node_id: NodeId, label: Label | None = None) -> set[NodeId]:
        """Sources of in-edges of *node_id*, optionally restricted by label."""
        by_label = self._in.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        if label is not None:
            return set(by_label.get(label, ()))
        result: set[NodeId] = set()
        for sources in by_label.values():
            result.update(sources)
        return result

    def neighbors(self, node_id: NodeId) -> set[NodeId]:
        """Undirected neighbourhood (union of in- and out-neighbours)."""
        return self.out_neighbors(node_id) | self.in_neighbors(node_id)

    def out_edges(self, node_id: NodeId) -> Iterator[Edge]:
        """Iterate over out-edges of *node_id*."""
        by_label = self._out.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        for label, targets in by_label.items():
            for target in targets:
                yield Edge(node_id, target, label)

    def in_edges(self, node_id: NodeId) -> Iterator[Edge]:
        """Iterate over in-edges of *node_id*."""
        by_label = self._in.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        for label, sources in by_label.items():
            for source in sources:
                yield Edge(source, node_id, label)

    def out_degree(self, node_id: NodeId, label: Label | None = None) -> int:
        """Number of out-edges of *node_id* (optionally of a given label)."""
        by_label = self._out.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        if label is not None:
            return len(by_label.get(label, ()))
        return sum(len(targets) for targets in by_label.values())

    def in_degree(self, node_id: NodeId, label: Label | None = None) -> int:
        """Number of in-edges of *node_id* (optionally of a given label)."""
        by_label = self._in.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        if label is not None:
            return len(by_label.get(label, ()))
        return sum(len(sources) for sources in by_label.values())

    def degree(self, node_id: NodeId) -> int:
        """Total degree (in + out) of *node_id*."""
        return self.out_degree(node_id) + self.in_degree(node_id)

    def has_out_edge_labeled(self, node_id: NodeId, label: Label) -> bool:
        """Whether *node_id* has at least one out-edge with *label*.

        Used by the LCWA statistics: a node is a "negative" example for a
        predicate ``q`` only if it has *some* edge of type ``q``.
        """
        by_label = self._out.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        return bool(by_label.get(label))

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Graph":
        """Return a deep structural copy of the graph."""
        clone = Graph(name=name or self.name)
        for node_id, label in self._labels.items():
            clone.add_node(node_id, label, self._attrs.get(node_id))
        for edge in self.edges():
            clone.add_edge(edge.source, edge.target, edge.label)
        return clone

    def induced_subgraph(self, node_ids: Iterable[NodeId], name: str | None = None) -> "Graph":
        """Subgraph induced by *node_ids*: keeps all edges between them."""
        keep = set(node_ids)
        missing = [node for node in keep if node not in self._labels]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = Graph(name=name or f"{self.name}|induced")
        for node_id in keep:
            sub.add_node(node_id, self._labels[node_id], self._attrs.get(node_id))
        for node_id in keep:
            for label, targets in self._out[node_id].items():
                for target in targets:
                    if target in keep:
                        sub.add_edge(node_id, target, label)
        return sub

    def descendants(self, node_id: NodeId) -> set[NodeId]:
        """All nodes reachable from *node_id* via directed paths (excluding it)."""
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        seen: set[NodeId] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for target in self.out_neighbors(current):
                if target not in seen and target != node_id:
                    seen.add(target)
                    frontier.append(target)
        return seen

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def structure_equal(self, other: "Graph") -> bool:
        """Exact structural equality: same node ids, labels and edges.

        This is *not* isomorphism — node identity matters.  Used by tests and
        by the fragment/partition round-trip checks.
        """
        if not isinstance(other, Graph):
            return False
        if self._labels != other._labels:
            return False
        if self._num_edges != other._num_edges:
            return False
        for source, by_label in self._out.items():
            other_by_label = other._out.get(source, {})
            for label, targets in by_label.items():
                if targets != other_by_label.get(label, set()):
                    return False
        return True
