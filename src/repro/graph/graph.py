"""Directed, node- and edge-labelled property graph.

This is the substrate every other subsystem builds on.  It is deliberately a
plain-Python adjacency structure (dict-of-dict-of-set) rather than a wrapper
around networkx: the mining loops probe ``has_edge`` and ``out_neighbors``
millions of times and the indirection of a general-purpose library is the
bottleneck the reproduction hint warns about.

Model (paper Section 2.1)
-------------------------
* ``G = (V, E, L)`` with a finite node set, directed edges, and a label on
  every node and every edge.
* Parallel edges with *different* labels between the same pair of nodes are
  allowed (e.g. both ``like`` and ``visit`` from a customer to a restaurant);
  parallel edges with the same label are not (they would be indistinguishable
  to the matcher and to the support metrics).
* ``|G| = |V| + |E|`` (the paper's size measure).
"""

from __future__ import annotations

import os
import sys
from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError

NodeId = Hashable
Label = str

#: How many finished :class:`GraphDelta` records a graph retains.  Derived
#: structures (``FragmentIndex``, ``MatchStore``) repair themselves from this
#: log; once a consumer falls further behind than the log reaches, it rebuilds
#: from scratch instead.  Per-graph override: the ``delta_log_size``
#: constructor argument / :meth:`Graph.configure_delta_log`; process-wide
#: override: the ``REPRO_DELTA_LOG_SIZE`` environment variable (also the
#: default of :class:`repro.stream.StreamConfig`).
DELTA_LOG_SIZE = 32


def default_delta_log_size() -> int:
    """The effective delta-log size: ``REPRO_DELTA_LOG_SIZE`` or the constant.

    Resolved at every graph construction (not import time) so tests and the
    CLI can override it per run.
    """
    raw = os.environ.get("REPRO_DELTA_LOG_SIZE")
    if raw is None:
        return DELTA_LOG_SIZE
    size = int(raw)
    if size < 1:
        raise GraphError(f"REPRO_DELTA_LOG_SIZE must be >= 1, got {size}")
    return size


@dataclass(frozen=True)
class Edge:
    """A directed labelled edge ``source --label--> target``."""

    source: NodeId
    target: NodeId
    label: Label

    def reversed(self) -> "Edge":
        """Return the edge with source and target swapped (same label)."""
        return Edge(self.target, self.source, self.label)


@dataclass(frozen=True)
class GraphDelta:
    """The *net* effect of one version tick (a single mutation or a batch).

    ``touched`` is the set of nodes whose incident structure changed: the
    endpoints of every net-added/removed edge plus every net-added, removed
    or relabelled node (a removed node's former neighbours are touched via
    its removed incident edges).  Operations that cancel out inside one batch
    (an edge removed then re-added) appear in no set — the version still
    ticks, but the delta is net-empty.

    The central locality fact consumers rely on (proved in
    ``docs/streaming.md``): for any node ``c``, if the r-hop neighbourhood of
    ``c`` changed between ``base_version`` and ``result_version``, then some
    touched node lies within ``r`` hops of ``c`` **in the post-update
    graph**.  Ball-scoped invalidation from ``touched`` on the new graph is
    therefore exact — no pre-update snapshot is needed.
    """

    base_version: int
    result_version: int
    touched: frozenset
    added_nodes: frozenset
    removed_nodes: frozenset
    relabeled_nodes: frozenset
    added_edges: frozenset
    removed_edges: frozenset

    @property
    def net_empty(self) -> bool:
        """Whether the delta changed nothing (every operation cancelled out)."""
        return not self.touched


class _DeltaRecorder:
    """Captures pre-mutation state so a net :class:`GraphDelta` can be diffed.

    One recorder is open per version tick: either for the span of a
    ``batch_update`` context or transiently inside a single mutator call.
    First-touch wins: ``node_initial``/``edge_initial`` keep the state from
    *before* the tick, whatever later operations do to the same key.
    """

    __slots__ = ("base_version", "node_initial", "edge_initial", "dirty")

    def __init__(self, base_version: int) -> None:
        self.base_version = base_version
        # node id -> (was present, label at open time or None)
        self.node_initial: dict[NodeId, tuple[bool, Label | None]] = {}
        # (source, target, label) -> was present
        self.edge_initial: dict[tuple, bool] = {}
        self.dirty = False

    def finalize(self, graph: "Graph") -> GraphDelta:
        """Diff the recorded initial states against the graph's current state."""
        added_nodes: list[NodeId] = []
        removed_nodes: list[NodeId] = []
        relabeled: list[NodeId] = []
        touched: set[NodeId] = set()
        labels = graph._labels
        for node, (was_present, old_label) in self.node_initial.items():
            now = labels.get(node)
            if was_present:
                if now is None:
                    removed_nodes.append(node)
                    touched.add(node)
                elif now != old_label:
                    relabeled.append(node)
                    touched.add(node)
            elif now is not None:
                added_nodes.append(node)
                touched.add(node)
        added_edges: list[tuple] = []
        removed_edges: list[tuple] = []
        for key, was_present in self.edge_initial.items():
            source, target, label = key
            now = graph.has_edge(source, target, label)
            if now == was_present:
                continue
            (added_edges if now else removed_edges).append(key)
            touched.add(source)
            touched.add(target)
        return GraphDelta(
            base_version=self.base_version,
            result_version=graph._version,
            touched=frozenset(touched),
            added_nodes=frozenset(added_nodes),
            removed_nodes=frozenset(removed_nodes),
            relabeled_nodes=frozenset(relabeled),
            added_edges=frozenset(added_edges),
            removed_edges=frozenset(removed_edges),
        )


class GraphBatch:
    """Context manager applying several mutations as **one** version tick.

    Returned by :meth:`Graph.batch_update`.  Mutations made inside the
    ``with`` block — through the proxy methods below or directly on the
    graph — are folded into a single version bump and one recorded
    :class:`GraphDelta`; ``touched``/``delta`` expose the net effect after
    the block exits.  Nested batches join the outermost one (one tick in
    total).

    Derived structures must not be probed *inside* the block: the
    :class:`~repro.graph.index.FragmentIndex` treats an open batch as stale
    (``"raise"`` mode raises :class:`~repro.exceptions.StaleIndexError`,
    ``"refresh"`` mode refuses to rebuild from a half-applied state).
    """

    __slots__ = ("_graph", "_owns", "_delta")

    def __init__(self, graph: "Graph") -> None:
        self._graph = graph
        self._owns = False
        self._delta: GraphDelta | None = None

    def __enter__(self) -> "GraphBatch":
        if self._graph._recorder is None:
            self._graph._open_recorder()
            self._owns = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._owns:
            self._delta = self._graph._close_recorder()
        return False

    # -- proxy mutators (equivalent to calling the graph directly) ---------
    def add_node(self, node_id: NodeId, label: Label, attrs: dict | None = None) -> None:
        self._graph.add_node(node_id, label, attrs)

    def add_edge(self, source: NodeId, target: NodeId, label: Label) -> bool:
        return self._graph.add_edge(source, target, label)

    def remove_edge(self, source: NodeId, target: NodeId, label: Label) -> None:
        self._graph.remove_edge(source, target, label)

    def remove_node(self, node_id: NodeId) -> None:
        self._graph.remove_node(node_id)

    def relabel_node(self, node_id: NodeId, label: Label) -> None:
        self._graph.relabel_node(node_id, label)

    # -- outcome -----------------------------------------------------------
    @property
    def delta(self) -> GraphDelta:
        """The batch's net :class:`GraphDelta`; only available after exit."""
        if self._delta is None:
            raise GraphError(
                "the batch is still open (or joined an enclosing batch); "
                "its delta is available only after the outermost block exits"
            )
        return self._delta

    @property
    def touched(self) -> frozenset:
        """Net touched-node set of the batch (see :class:`GraphDelta`)."""
        return self.delta.touched


class Graph:
    """A directed graph with labelled nodes and labelled edges.

    Parameters
    ----------
    name:
        Optional human-readable name used in ``repr`` and benchmark reports.

    Example
    -------
    >>> g = Graph(name="toy")
    >>> g.add_node("alice", "cust")
    >>> g.add_node("cafe", "restaurant")
    >>> g.add_edge("alice", "cafe", "visit")
    >>> g.has_edge("alice", "cafe", "visit")
    True
    >>> sorted(g.nodes_with_label("cust"))
    ['alice']
    """

    __slots__ = (
        "name",
        "_labels",
        "_attrs",
        "_out",
        "_in",
        "_nodes_by_label",
        "_num_edges",
        "_edge_label_counts",
        "_version",
        "_recorder",
        "_delta_log",
        "_label_table",
        "__weakref__",
    )

    def __init__(self, name: str = "graph", delta_log_size: int | None = None) -> None:
        self.name = name
        # node id -> node label
        self._labels: dict[NodeId, Label] = {}
        # node id -> optional attribute dict (created lazily)
        self._attrs: dict[NodeId, dict[str, Any]] = {}
        # source -> edge label -> set of targets
        self._out: dict[NodeId, dict[Label, set[NodeId]]] = {}
        # target -> edge label -> set of sources
        self._in: dict[NodeId, dict[Label, set[NodeId]]] = {}
        # node label -> set of node ids
        self._nodes_by_label: dict[Label, set[NodeId]] = {}
        self._num_edges = 0
        # edge label -> count
        self._edge_label_counts: dict[Label, int] = {}
        # Mutation counter: bumped by every version tick — one per single
        # mutator call *or* per whole batch_update() block — so derived
        # structures (e.g. repro.graph.index.FragmentIndex) can detect
        # staleness with a single integer comparison.
        self._version = 0
        # Open _DeltaRecorder while a tick is in progress, else None.
        self._recorder: _DeltaRecorder | None = None
        # Ring buffer of finished GraphDeltas (newest last); consumers patch
        # themselves forward from it via deltas_since().
        if delta_log_size is not None and delta_log_size < 1:
            raise GraphError(f"delta_log_size must be >= 1, got {delta_log_size}")
        self._delta_log: deque = deque(
            maxlen=delta_log_size if delta_log_size is not None else default_delta_log_size()
        )
        # Shared label-interning table (repro.graph.columnar.LabelTable),
        # created lazily by the label_table property.
        self._label_table = None

    # ------------------------------------------------------------------
    # version ticks and delta recording
    # ------------------------------------------------------------------
    def _open_recorder(self) -> tuple[_DeltaRecorder, bool]:
        """The open recorder (joining an outer batch) or a fresh owned one."""
        recorder = self._recorder
        if recorder is not None:
            return recorder, False
        recorder = self._recorder = _DeltaRecorder(self._version)
        return recorder, True

    def _close_recorder(self) -> GraphDelta:
        """Finish the tick: bump the version once (if dirty) and log the delta."""
        recorder = self._recorder
        self._recorder = None
        if recorder.dirty:
            self._version += 1
        delta = recorder.finalize(self)
        if recorder.dirty:
            # Net-empty-but-dirty deltas are logged too: they keep the
            # (base_version -> result_version) chain contiguous.
            self._delta_log.append(delta)
        return delta

    @property
    def in_batch(self) -> bool:
        """Whether a version tick (batch or single mutation) is in progress."""
        return self._recorder is not None

    def batch_update(self) -> GraphBatch:
        """Open a :class:`GraphBatch`: many mutations, one version bump.

        Example
        -------
        >>> g = Graph()
        >>> g.add_node("a", "x"); g.add_node("b", "x")
        >>> before = g.version
        >>> with g.batch_update() as tx:
        ...     _ = tx.add_edge("a", "b", "e")
        ...     tx.relabel_node("b", "y")
        >>> g.version - before
        1
        >>> sorted(tx.touched)
        ['a', 'b']
        """
        return GraphBatch(self)

    @property
    def delta_log_size(self) -> int:
        """Capacity of the bounded delta log (see :data:`DELTA_LOG_SIZE`)."""
        return self._delta_log.maxlen

    def configure_delta_log(self, size: int) -> None:
        """Resize the bounded delta log, keeping the newest recorded deltas.

        Streaming consumers (:class:`repro.stream.StreamConfig`) use this to
        tune how far behind a derived structure may fall before it must
        rebuild instead of patching forward.
        """
        if size < 1:
            raise GraphError(f"delta log size must be >= 1, got {size}")
        if size == self._delta_log.maxlen:
            return
        self._delta_log = deque(self._delta_log, maxlen=size)

    def deltas_since(self, version: int) -> list[GraphDelta] | None:
        """Recorded deltas forming a contiguous chain from *version* to now.

        Returns ``[]`` when *version* is current, or ``None`` when the log no
        longer reaches back that far (the caller must rebuild from scratch).
        """
        if version == self._version:
            return []
        chain: list[GraphDelta] = []
        for delta in reversed(self._delta_log):
            chain.append(delta)
            if delta.base_version == version:
                chain.reverse()
                return chain
            if delta.base_version < version:
                return None
        return None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: NodeId,
        label: Label,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        """Add a node with *label*; re-adding with a different label fails."""
        if type(label) is str:
            label = sys.intern(label)
        existing = self._labels.get(node_id)
        if existing is not None:
            if existing != label:
                raise GraphError(
                    f"node {node_id!r} already exists with label {existing!r}; "
                    f"cannot re-add it with label {label!r}"
                )
            if attrs:
                self._attrs.setdefault(node_id, {}).update(attrs)
            return
        recorder, owns = self._open_recorder()
        try:
            recorder.node_initial.setdefault(node_id, (False, None))
            self._labels[node_id] = label
            self._out[node_id] = {}
            self._in[node_id] = {}
            self._nodes_by_label.setdefault(label, set()).add(node_id)
            if attrs:
                self._attrs[node_id] = dict(attrs)
            recorder.dirty = True
        finally:
            if owns:
                self._close_recorder()

    def add_edge(self, source: NodeId, target: NodeId, label: Label) -> bool:
        """Add edge ``source --label--> target``.

        Both endpoints must already exist.  Returns ``True`` if the edge was
        new, ``False`` if an identical edge was already present (the graph is
        left unchanged in that case).
        """
        if type(label) is str:
            label = sys.intern(label)
        if source not in self._labels:
            raise NodeNotFoundError(source)
        if target not in self._labels:
            raise NodeNotFoundError(target)
        targets = self._out[source].setdefault(label, set())
        if target in targets:
            return False
        recorder, owns = self._open_recorder()
        try:
            recorder.edge_initial.setdefault((source, target, label), False)
            targets.add(target)
            self._in[target].setdefault(label, set()).add(source)
            self._num_edges += 1
            self._edge_label_counts[label] = self._edge_label_counts.get(label, 0) + 1
            recorder.dirty = True
        finally:
            if owns:
                self._close_recorder()
        return True

    def remove_edge(self, source: NodeId, target: NodeId, label: Label) -> None:
        """Remove an edge; raises :class:`EdgeNotFoundError` if absent."""
        targets = self._out.get(source, {}).get(label)
        if not targets or target not in targets:
            raise EdgeNotFoundError(source, target, label)
        recorder, owns = self._open_recorder()
        try:
            recorder.edge_initial.setdefault((source, target, label), True)
            targets.discard(target)
            if not targets:
                del self._out[source][label]
            sources = self._in[target][label]
            sources.discard(source)
            if not sources:
                del self._in[target][label]
            self._num_edges -= 1
            remaining = self._edge_label_counts[label] - 1
            if remaining:
                self._edge_label_counts[label] = remaining
            else:
                del self._edge_label_counts[label]
            recorder.dirty = True
        finally:
            if owns:
                self._close_recorder()

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node and all incident edges (one version tick in total).

        The incident-edge removals are folded into the node removal's own
        recorder, so one logical operation is one version bump — and the
        recorded delta's ``touched`` set includes the former neighbours.
        """
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        recorder, owns = self._open_recorder()
        try:
            recorder.node_initial.setdefault(node_id, (True, self._labels[node_id]))
            for label, targets in list(self._out[node_id].items()):
                for target in list(targets):
                    self.remove_edge(node_id, target, label)
            for label, sources in list(self._in[node_id].items()):
                for source in list(sources):
                    self.remove_edge(source, node_id, label)
            label = self._labels.pop(node_id)
            self._nodes_by_label[label].discard(node_id)
            if not self._nodes_by_label[label]:
                del self._nodes_by_label[label]
            del self._out[node_id]
            del self._in[node_id]
            self._attrs.pop(node_id, None)
            recorder.dirty = True
        finally:
            if owns:
                self._close_recorder()

    def relabel_node(self, node_id: NodeId, label: Label) -> None:
        """Change the label of an existing node (no-op if unchanged)."""
        if type(label) is str:
            label = sys.intern(label)
        existing = self._labels.get(node_id)
        if existing is None:
            raise NodeNotFoundError(node_id)
        if existing == label:
            return
        recorder, owns = self._open_recorder()
        try:
            recorder.node_initial.setdefault(node_id, (True, existing))
            self._labels[node_id] = label
            old_bucket = self._nodes_by_label[existing]
            old_bucket.discard(node_id)
            if not old_bucket:
                del self._nodes_by_label[existing]
            self._nodes_by_label.setdefault(label, set()).add(node_id)
            recorder.dirty = True
        finally:
            if owns:
                self._close_recorder()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._num_edges

    @property
    def size(self) -> int:
        """The paper's size measure ``|G| = |V| + |E|``."""
        return self.num_nodes + self._num_edges

    @property
    def version(self) -> int:
        """Monotonic mutation counter (see :mod:`repro.graph.index`)."""
        return self._version

    @property
    def label_table(self):
        """The graph's shared :class:`repro.graph.columnar.LabelTable`.

        Created lazily and topped up with every label currently present on
        each access (interning an already-known label is a no-op, so the
        top-up is O(#distinct labels)).  Ids are append-only and therefore
        stable across mutations; a label that leaves the graph keeps its id.
        """
        table = self._label_table
        if table is None:
            from repro.graph.columnar import LabelTable

            table = self._label_table = LabelTable()
        for label in self._nodes_by_label:
            table.intern(label)
        for label in self._edge_label_counts:
            table.intern(label)
        return table

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._labels

    def has_node(self, node_id: NodeId) -> bool:
        """Whether *node_id* is a node of the graph."""
        return node_id in self._labels

    def node_label(self, node_id: NodeId) -> Label:
        """Return the label of *node_id*."""
        try:
            return self._labels[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def node_attrs(self, node_id: NodeId) -> dict[str, Any]:
        """Return the (possibly empty) attribute dict of *node_id*."""
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        return self._attrs.get(node_id, {})

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids."""
        return iter(self._labels)

    def node_items(self) -> Iterator[tuple[NodeId, Label]]:
        """Iterate over ``(node_id, label)`` pairs."""
        return iter(self._labels.items())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as :class:`Edge` instances."""
        for source, by_label in self._out.items():
            for label, targets in by_label.items():
                for target in targets:
                    yield Edge(source, target, label)

    def has_edge(self, source: NodeId, target: NodeId, label: Label | None = None) -> bool:
        """Whether an edge from *source* to *target* exists.

        If *label* is ``None`` any edge label counts; otherwise the label must
        match exactly.
        """
        by_label = self._out.get(source)
        if not by_label:
            return False
        if label is None:
            return any(target in targets for targets in by_label.values())
        targets = by_label.get(label)
        return bool(targets) and target in targets

    def edge_labels_between(self, source: NodeId, target: NodeId) -> set[Label]:
        """Set of labels of edges from *source* to *target*."""
        by_label = self._out.get(source, {})
        return {label for label, targets in by_label.items() if target in targets}

    # ------------------------------------------------------------------
    # label index
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: Label) -> set[NodeId]:
        """Return (a copy of) the set of nodes carrying *label*."""
        return set(self._nodes_by_label.get(label, ()))

    def count_nodes_with_label(self, label: Label) -> int:
        """Number of nodes carrying *label* (no copy)."""
        return len(self._nodes_by_label.get(label, ()))

    def node_labels(self) -> set[Label]:
        """The set of distinct node labels present in the graph."""
        return set(self._nodes_by_label)

    def edge_labels(self) -> set[Label]:
        """The set of distinct edge labels present in the graph."""
        return set(self._edge_label_counts)

    def node_label_counts(self) -> dict[Label, int]:
        """Histogram of node labels."""
        return {label: len(nodes) for label, nodes in self._nodes_by_label.items()}

    def edge_label_counts(self) -> dict[Label, int]:
        """Histogram of edge labels."""
        return dict(self._edge_label_counts)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, node_id: NodeId, label: Label | None = None) -> set[NodeId]:
        """Targets of out-edges of *node_id*, optionally restricted by label."""
        by_label = self._out.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        if label is not None:
            return set(by_label.get(label, ()))
        result: set[NodeId] = set()
        for targets in by_label.values():
            result.update(targets)
        return result

    def in_neighbors(self, node_id: NodeId, label: Label | None = None) -> set[NodeId]:
        """Sources of in-edges of *node_id*, optionally restricted by label."""
        by_label = self._in.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        if label is not None:
            return set(by_label.get(label, ()))
        result: set[NodeId] = set()
        for sources in by_label.values():
            result.update(sources)
        return result

    def neighbors(self, node_id: NodeId) -> set[NodeId]:
        """Undirected neighbourhood (union of in- and out-neighbours)."""
        return self.out_neighbors(node_id) | self.in_neighbors(node_id)

    def out_edges(self, node_id: NodeId) -> Iterator[Edge]:
        """Iterate over out-edges of *node_id*."""
        by_label = self._out.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        for label, targets in by_label.items():
            for target in targets:
                yield Edge(node_id, target, label)

    def in_edges(self, node_id: NodeId) -> Iterator[Edge]:
        """Iterate over in-edges of *node_id*."""
        by_label = self._in.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        for label, sources in by_label.items():
            for source in sources:
                yield Edge(source, node_id, label)

    def out_degree(self, node_id: NodeId, label: Label | None = None) -> int:
        """Number of out-edges of *node_id* (optionally of a given label)."""
        by_label = self._out.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        if label is not None:
            return len(by_label.get(label, ()))
        return sum(len(targets) for targets in by_label.values())

    def in_degree(self, node_id: NodeId, label: Label | None = None) -> int:
        """Number of in-edges of *node_id* (optionally of a given label)."""
        by_label = self._in.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        if label is not None:
            return len(by_label.get(label, ()))
        return sum(len(sources) for sources in by_label.values())

    def degree(self, node_id: NodeId) -> int:
        """Total degree (in + out) of *node_id*."""
        return self.out_degree(node_id) + self.in_degree(node_id)

    def has_out_edge_labeled(self, node_id: NodeId, label: Label) -> bool:
        """Whether *node_id* has at least one out-edge with *label*.

        Used by the LCWA statistics: a node is a "negative" example for a
        predicate ``q`` only if it has *some* edge of type ``q``.
        """
        by_label = self._out.get(node_id)
        if by_label is None:
            raise NodeNotFoundError(node_id)
        return bool(by_label.get(label))

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Graph":
        """Return a deep structural copy of the graph (same delta-log size)."""
        clone = Graph(name=name or self.name, delta_log_size=self._delta_log.maxlen)
        with clone.batch_update():
            for node_id, label in self._labels.items():
                clone.add_node(node_id, label, self._attrs.get(node_id))
            for edge in self.edges():
                clone.add_edge(edge.source, edge.target, edge.label)
        # Construction is not an update: nothing existed before it that a
        # derived structure could patch forward from.
        clone._delta_log.clear()
        return clone

    def induced_subgraph(self, node_ids: Iterable[NodeId], name: str | None = None) -> "Graph":
        """Subgraph induced by *node_ids*: keeps all edges between them."""
        keep = set(node_ids)
        missing = [node for node in keep if node not in self._labels]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = Graph(
            name=name or f"{self.name}|induced",
            delta_log_size=self._delta_log.maxlen,
        )
        with sub.batch_update():
            for node_id in keep:
                sub.add_node(node_id, self._labels[node_id], self._attrs.get(node_id))
            for node_id in keep:
                for label, targets in self._out[node_id].items():
                    for target in targets:
                        if target in keep:
                            sub.add_edge(node_id, target, label)
        sub._delta_log.clear()
        return sub

    def descendants(self, node_id: NodeId) -> set[NodeId]:
        """All nodes reachable from *node_id* via directed paths (excluding it)."""
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        seen: set[NodeId] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for target in self.out_neighbors(current):
                if target not in seen and target != node_id:
                    seen.add(target)
                    frontier.append(target)
        return seen

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def structure_equal(self, other: "Graph") -> bool:
        """Exact structural equality: same node ids, labels and edges.

        This is *not* isomorphism — node identity matters.  Used by tests and
        by the fragment/partition round-trip checks.
        """
        if not isinstance(other, Graph):
            return False
        if self._labels != other._labels:
            return False
        if self._num_edges != other._num_edges:
            return False
        for source, by_label in self._out.items():
            other_by_label = other._out.get(source, {})
            for label, targets in by_label.items():
                if targets != other_by_label.get(label, set()):
                    return False
        return True
