"""Process-wide metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` (usually the process-global one returned by
:func:`registry`) holds named metric *families*; a family fans out into
*series* keyed by label values, exactly like the Prometheus data model the
:meth:`MetricsRegistry.render` exposition follows.  Three kinds exist:

* **counter** — monotonically increasing totals (``*_total`` by convention);
* **gauge** — point-in-time values, overwritten at will;
* **histogram** — observation counts over *fixed* bucket boundaries chosen
  at family creation, plus a running sum and count.

Two operations make the registry composable across processes:
:meth:`MetricsRegistry.snapshot` produces a plain picklable dict and
:meth:`MetricsRegistry.merge` folds such a snapshot back in — additively for
counters and histograms (bucket-wise, which is what makes histogram merging
associative), last-write-wins for gauges.  Worker processes ship snapshots
(deltas, see :mod:`repro.obs.stats`) back inside round results and the
coordinator merges them, so a processes-backend run aggregates exactly like
a sequential one.

Everything is guarded by one registry-level lock; individual increments are
a dict lookup plus an integer add, cheap enough for per-round and
per-request call sites (per-candidate hot loops keep using the plain
``*Statistics`` dataclasses, which this registry absorbs only at collection
points).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "registry",
]

#: Default histogram bucket upper bounds (seconds), chosen for HTTP/round
#: latencies: sub-millisecond reads through multi-second verification ticks.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_KINDS = ("counter", "gauge", "histogram")


class _Histogram:
    """One histogram series: cumulative-free bucket counts + sum + count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        # counts[i] observations fell in bucket i; the trailing slot is +Inf.
        self.counts = [0] * (num_buckets + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, boundaries: tuple[float, ...], value: float) -> None:
        self.counts[bisect_left(boundaries, value)] += 1
        self.sum += value
        self.count += 1


class _Family:
    """One named metric family: kind, help, label names, series by values."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "series")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self.series: dict[tuple, object] = {}


def _label_values(family: _Family, labels: Mapping[str, object]) -> tuple:
    if tuple(sorted(labels)) != tuple(sorted(family.labelnames)):
        raise ValueError(
            f"metric {family.name!r} expects labels {sorted(family.labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in family.labelnames)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class MetricsRegistry:
    """A named collection of counter/gauge/histogram families (see module)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # family declaration / lookup
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Iterable[str],
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(
                name, kind, help, tuple(labelnames), buckets
            )
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1, help: str = "", **labels) -> None:
        """Add *amount* to the counter series ``name{**labels}``."""
        with self._lock:
            family = self._family(name, "counter", help, sorted(labels))
            key = _label_values(family, labels)
            family.series[key] = family.series.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, help: str = "", **labels) -> None:
        """Set the gauge series ``name{**labels}`` to *value*."""
        with self._lock:
            family = self._family(name, "gauge", help, sorted(labels))
            family.series[_label_values(family, labels)] = value

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> None:
        """Record *value* into the histogram series ``name{**labels}``."""
        with self._lock:
            family = self._family(name, "histogram", help, sorted(labels), tuple(buckets))
            key = _label_values(family, labels)
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = _Histogram(len(family.buckets))
            series.observe(family.buckets, value)

    def counter_value(self, name: str, **labels) -> float:
        """Current value of a counter series (0 when absent)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0
            return family.series.get(tuple(str(labels[k]) for k in family.labelnames), 0)

    def counters(self, prefix: str = "") -> dict[str, float]:
        """Flat ``{name{label=...}: value}`` view of counters under *prefix*."""
        out: dict[str, float] = {}
        with self._lock:
            for family in self._families.values():
                if family.kind != "counter" or not family.name.startswith(prefix):
                    continue
                for key, value in family.series.items():
                    labels = ",".join(
                        f'{n}="{v}"' for n, v in zip(family.labelnames, key)
                    )
                    out[f"{family.name}{{{labels}}}" if labels else family.name] = value
        return out

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Picklable copy of every family: feed to :meth:`merge`."""
        with self._lock:
            out: dict = {}
            for family in self._families.values():
                series: dict = {}
                for key, value in family.series.items():
                    if family.kind == "histogram":
                        series[key] = {
                            "counts": list(value.counts),
                            "sum": value.sum,
                            "count": value.count,
                        }
                    else:
                        series[key] = value
                out[family.name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": family.labelnames,
                    "buckets": family.buckets,
                    "series": series,
                }
            return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` in: counters/histograms add, gauges overwrite."""
        with self._lock:
            for name, doc in snapshot.items():
                family = self._family(
                    name, doc["kind"], doc["help"], doc["labelnames"], doc["buckets"]
                )
                for key, value in doc["series"].items():
                    key = tuple(key)
                    if family.kind == "counter":
                        family.series[key] = family.series.get(key, 0) + value
                    elif family.kind == "gauge":
                        family.series[key] = value
                    else:
                        series = family.series.get(key)
                        if series is None:
                            series = family.series[key] = _Histogram(len(family.buckets))
                        for position, count in enumerate(value["counts"]):
                            series.counts[position] += count
                        series.sum += value["sum"]
                        series.count += value["count"]

    def reset(self) -> None:
        """Drop every family (tests and fresh benchmark phases)."""
        with self._lock:
            self._families.clear()

    def clear(self, name: str) -> None:
        """Drop every series of family *name* (stale labelled gauges).

        Gauge families whose label sets track live objects — per-session
        gauges on the serving path — are cleared and re-set on each scrape,
        so closed sessions do not linger as frozen series.
        """
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                family.series.clear()

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the whole registry."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    lines.append(f"# HELP {name} {family.help}")
                lines.append(f"# TYPE {name} {family.kind}")
                for key in sorted(family.series):
                    value = family.series[key]
                    pairs = [
                        f'{label}="{_escape(text)}"'
                        for label, text in zip(family.labelnames, key)
                    ]
                    if family.kind == "histogram":
                        cumulative = 0
                        bounds = list(family.buckets) + [float("inf")]
                        for bound, count in zip(bounds, value.counts):
                            cumulative += count
                            bucket_pairs = pairs + [f'le="{_format_value(bound)}"']
                            lines.append(
                                f"{name}_bucket{{{','.join(bucket_pairs)}}} {cumulative}"
                            )
                        suffix = f"{{{','.join(pairs)}}}" if pairs else ""
                        lines.append(f"{name}_sum{suffix} {_format_value(value.sum)}")
                        lines.append(f"{name}_count{suffix} {value.count}")
                    else:
                        suffix = f"{{{','.join(pairs)}}}" if pairs else ""
                        lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"


_GLOBAL = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every subsystem records into."""
    return _GLOBAL
