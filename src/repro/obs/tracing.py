"""Lightweight span tracing for the coordinator/worker pipeline.

A :class:`Tracer` records *spans* — named, timed, attributed intervals with
explicit parent ids — as plain dicts, one per completed span:

``{"span_id", "parent_id", "name", "start", "duration", "attrs"}``

Ids are deterministic per tracer (``s1``, ``s2``, … in completion order of
allocation — a counter, never wall clock or randomness), parents come from a
per-thread stack, and ``start`` is the offset in seconds from the tracer's
creation.  Worker processes build their own short-lived tracer, ship its
records back inside the round result, and the coordinator re-parents them
under the enclosing round span via :meth:`Tracer.adopt` with an id prefix —
so one trace file covers coordinator and worker phases with a consistent
tree.

The module-level :func:`span`/:func:`event` helpers are the no-op fast
path: with no tracer installed they cost one thread-local read and a
``None`` check, which is what keeps instrumentation off the hot path when
disabled (the ``obs`` bench family CI-gates the total overhead).
:func:`install` activates a tracer process-globally (the coordinator / CLI
``--trace-out`` case); :func:`override_tracer` routes one thread's spans
into a specific tracer (the worker case — safe under the threads backend,
where concurrent workers must not interleave into one global).

Traces dump as JSON-lines (:meth:`Tracer.dump_jsonl`, one span per line)
and load with :func:`load_trace`; ``repro trace`` renders the per-phase
time breakdown.  See ``docs/observability.md`` for the span taxonomy.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from pathlib import Path

from repro.utils.timing import Stopwatch

__all__ = [
    "Tracer",
    "active",
    "event",
    "install",
    "load_trace",
    "override_tracer",
    "span",
    "tracing_enabled",
    "uninstall",
]

_MISSING = object()


class _NoopSpan:
    """Stand-in handle yielded when no tracer is active."""

    __slots__ = ()
    span_id = ""
    elapsed = 0.0

    def set(self, **attrs) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class SpanHandle:
    """Live handle of an open span: attach attributes, peek elapsed time."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_watch")

    def __init__(self, name: str, span_id: str, parent_id: str | None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: dict = {}
        self._watch = Stopwatch().start()

    def set(self, **attrs) -> "SpanHandle":
        """Attach attributes (JSON-scalar values) to the span; returns self."""
        self.attrs.update(attrs)
        return self

    @property
    def elapsed(self) -> float:
        """Seconds since the span opened (non-destructive)."""
        return self._watch.peek()


class Tracer:
    """Collects span records; one per traced run (or per traced worker call)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._sequence = 0
        self._local = threading.local()
        self._epoch = Stopwatch().start()

    # ------------------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        with self._lock:
            self._sequence += 1
            return f"s{self._sequence}"

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of this thread's current span; yields its handle."""
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        handle = SpanHandle(name, self._next_id(), parent_id)
        handle.attrs.update(attrs)
        start = self._epoch.peek()
        stack.append(handle.span_id)
        try:
            yield handle
        finally:
            duration = handle._watch.stop()
            stack.pop()
            with self._lock:
                self._records.append(
                    {
                        "span_id": handle.span_id,
                        "parent_id": handle.parent_id,
                        "name": name,
                        "start": start,
                        "duration": duration,
                        "attrs": handle.attrs,
                    }
                )

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration span (checkpoint/migration style markers)."""
        stack = self._stack()
        with self._lock:
            self._sequence += 1
            self._records.append(
                {
                    "span_id": f"s{self._sequence}",
                    "parent_id": stack[-1] if stack else None,
                    "name": name,
                    "start": self._epoch.peek(),
                    "duration": 0.0,
                    "attrs": dict(attrs),
                }
            )

    def adopt(
        self, records: list[dict], parent_id: str | None = None, prefix: str = ""
    ) -> None:
        """Append shipped records, re-parenting their roots under *parent_id*.

        Every adopted id gains *prefix* (callers make it unique per worker
        and tick, e.g. ``"t3.w1."``), so one coordinator trace can absorb
        many workers' records without id collisions; non-root parents are
        rewritten with the same prefix to keep the subtree intact.
        """
        with self._lock:
            for record in records:
                adopted = dict(record)
                adopted["span_id"] = prefix + record["span_id"]
                original_parent = record.get("parent_id")
                adopted["parent_id"] = (
                    prefix + original_parent if original_parent else parent_id
                )
                self._records.append(adopted)

    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Copy of the completed span records (dicts, JSON-ready)."""
        with self._lock:
            return list(self._records)

    def dump_jsonl(self, path: Path | str) -> Path:
        """Write one JSON object per line; the ``--trace-out`` format."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        return path


def load_trace(path: Path | str) -> list[dict]:
    """Parse a ``--trace-out`` JSON-lines file back into span records."""
    records = []
    with open(Path(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# module-level no-op fallback (the disabled-by-default fast path)
# ----------------------------------------------------------------------
_ACTIVE: Tracer | None = None
_LOCAL = threading.local()


def active() -> Tracer | None:
    """This thread's tracer: the override if set, else the installed one."""
    override = getattr(_LOCAL, "tracer", _MISSING)
    if override is not _MISSING:
        return override
    return _ACTIVE


def tracing_enabled() -> bool:
    """Whether spans recorded on this thread go anywhere."""
    return active() is not None


def install(tracer: Tracer) -> Tracer:
    """Activate *tracer* process-globally; returns it for chaining."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def uninstall() -> Tracer | None:
    """Deactivate and return the installed tracer (``None`` when idle)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


@contextmanager
def override_tracer(tracer: Tracer | None):
    """Route this thread's module-level spans into *tracer* for the block.

    Used by traced worker functions: each concurrent worker records into its
    own tracer (shipped back with the round result) instead of interleaving
    into the coordinator's installed tracer.
    """
    previous = getattr(_LOCAL, "tracer", _MISSING)
    _LOCAL.tracer = tracer
    try:
        yield tracer
    finally:
        if previous is _MISSING:
            del _LOCAL.tracer
        else:
            _LOCAL.tracer = previous


@contextmanager
def span(name: str, **attrs):
    """Record a span on the active tracer, or no-op when none is installed."""
    tracer = active()
    if tracer is None:
        yield NOOP_SPAN
        return
    with tracer.span(name, **attrs) as handle:
        yield handle


def event(name: str, **attrs) -> None:
    """Record a zero-duration marker on the active tracer (no-op when idle)."""
    tracer = active()
    if tracer is not None:
        tracer.event(name, **attrs)
