"""Unified observability: metrics registry, span tracing, stats collection.

Three cooperating pieces (full model in ``docs/observability.md``):

* :mod:`repro.obs.registry` — process-wide counters/gauges/histograms with
  ``snapshot()``/``merge()`` composition and Prometheus text exposition;
* :mod:`repro.obs.tracing` — deterministic-id span tracer with a module
  level no-op fallback, JSON-lines dumps and worker-span adoption;
* :mod:`repro.obs.stats` — the snapshot/merge protocol of the four
  ``*Statistics`` dataclasses plus watermarked cross-process collection
  (``REPRO_OBS``), shipped per task and merged coordinator-side.

Instrumentation is off the hot path when disabled: no tracer installed
means :func:`span` costs a thread-local read; collection disabled means
statistics construction costs one environment lookup.  The ``obs`` bench
family CI-gates the enabled overhead at ≤5 %.
"""

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry, registry
from repro.obs.report import (
    parse_prometheus,
    quantile_from_buckets,
    top_report,
    trace_breakdown,
)
from repro.obs.stats import (
    StatisticsBase,
    collect_process_metrics,
    collection_enabled,
    disable_collection,
    enable_collection,
    merge_worker_metrics,
    register_collector,
    reset_collection,
)
from repro.obs.tracing import (
    Tracer,
    active,
    event,
    install,
    load_trace,
    override_tracer,
    span,
    tracing_enabled,
    uninstall,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "StatisticsBase",
    "Tracer",
    "active",
    "collect_process_metrics",
    "collection_enabled",
    "disable_collection",
    "enable_collection",
    "event",
    "install",
    "load_trace",
    "merge_worker_metrics",
    "override_tracer",
    "parse_prometheus",
    "quantile_from_buckets",
    "register_collector",
    "registry",
    "reset_collection",
    "span",
    "top_report",
    "trace_breakdown",
    "tracing_enabled",
    "uninstall",
]
