"""The ``snapshot()``/``merge()`` protocol and cross-process collection.

:class:`StatisticsBase` is the mixin behind every ``*Statistics`` dataclass
(:class:`~repro.matching.base.MatchStatistics`,
:class:`~repro.graph.index.IndexStatistics`,
:class:`~repro.graph.columnar.ColumnarStatistics`,
:class:`~repro.matching.incremental.StoreStatistics`): ``snapshot()`` is a
plain field dict, ``merge()`` adds one field-wise — replacing the ad-hoc
hand-written accumulation those classes and their consumers used to carry.

On top of the protocol sits *collection*: when enabled (the ``REPRO_OBS``
environment flag, inherited by pool processes at fork/spawn), every
statistics instance registers a weak reference at construction; at each
task boundary :func:`collect_process_metrics` sums the live instances'
snapshots per kind and returns the **delta since the previous collection**
(a per-field watermark under one lock, so concurrent thread-backend tasks
never double-count — every unit of work is counted exactly once
process-wide).  The executor ships that delta back with the task result and
the coordinator folds it into the global registry as
``repro_<kind>_<field>_total`` counters via :func:`merge_worker_metrics` —
which is what makes a processes-backend run report the same aggregate
counters as a sequential one.

When collection is disabled (the default) nothing registers and nothing is
walked: construction cost is one environment lookup.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import weakref
from typing import Iterable

from repro.obs.registry import MetricsRegistry

__all__ = [
    "StatisticsBase",
    "collect_process_metrics",
    "collection_enabled",
    "disable_collection",
    "enable_collection",
    "merge_worker_metrics",
    "register_collector",
    "reset_collection",
]

#: Environment flag gating statistics collection; exported (not just kept in
#: process memory) so worker pools inherit the setting at fork/spawn time.
ENV_FLAG = "REPRO_OBS"

_FALSEY = ("", "0", "off", "false", "no")

_lock = threading.Lock()
_collectors: list[tuple[str, weakref.ref]] = []
_watermarks: dict[tuple[str, str], float] = {}


def collection_enabled() -> bool:
    """Whether statistics instances register for cross-process collection."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in _FALSEY


def enable_collection() -> None:
    """Turn collection on for this process and any pool it starts later."""
    os.environ[ENV_FLAG] = "1"


def disable_collection() -> None:
    """Turn collection off (already-registered instances stop being walked
    only once garbage collected; their totals stop shipping immediately)."""
    os.environ[ENV_FLAG] = "0"


def reset_collection() -> None:
    """Forget every registered collector and watermark.

    Watermarks survive the collectors they tracked: a *new* run in the same
    process starts its totals from zero and would see its early increments
    swallowed by the previous run's high-water marks.  Tests and benchmark
    runners call this between runs so each one ships full counts.
    """
    with _lock:
        _collectors.clear()
        _watermarks.clear()


def register_collector(kind: str, stats: "StatisticsBase") -> None:
    """Track *stats* (weakly) under *kind* for process-total collection."""
    ref = weakref.ref(stats)
    with _lock:
        _collectors.append((kind, ref))
        # Amortized pruning keeps a long-lived process from accumulating
        # dead references across many runs.
        if len(_collectors) % 256 == 0:
            _collectors[:] = [entry for entry in _collectors if entry[1]() is not None]


def collect_process_metrics() -> dict[str, float] | None:
    """Delta of live-collector totals since the last call, or ``None``.

    Keys are ``"<kind>.<field>"``.  Totals are watermarked per field: the
    caller gets each increment exactly once, however many threads collect.
    A collector garbage-collected between calls takes its not-yet-collected
    tail with it (the watermark stays put until totals grow past it again) —
    deterministic and identical across backends, since task boundaries are
    collection points and task-live collectors are always reachable.
    """
    with _lock:
        totals: dict[tuple[str, str], float] = {}
        alive: list[tuple[str, weakref.ref]] = []
        for kind, ref in _collectors:
            stats = ref()
            if stats is None:
                continue
            alive.append((kind, ref))
            for name, value in stats.snapshot().items():
                key = (kind, name)
                totals[key] = totals.get(key, 0) + value
        _collectors[:] = alive
        delta: dict[str, float] = {}
        for key, value in totals.items():
            previous = _watermarks.get(key, 0)
            if value > previous:
                delta[f"{key[0]}.{key[1]}"] = value - previous
                _watermarks[key] = value
        return delta or None


def merge_worker_metrics(
    registry: MetricsRegistry, metrics: Iterable[dict | None]
) -> None:
    """Fold shipped per-task deltas into *registry* as ``repro_*_total``."""
    for delta in metrics:
        if not delta:
            continue
        for key, value in delta.items():
            kind, _, field = key.partition(".")
            registry.inc(
                f"repro_{kind}_{field}_total",
                value,
                help=f"total {field.replace('_', ' ')} across all {kind} statistics",
            )


class StatisticsBase:
    """Mixin giving a counter dataclass the snapshot/merge protocol.

    Subclasses set ``_metric_kind`` (the registry/collection namespace) and
    stay plain ``@dataclass``-es of integer counter fields; the generated
    ``__init__`` calls :meth:`__post_init__`, which registers the instance
    for collection when the ``REPRO_OBS`` flag is on.
    """

    _metric_kind = "stats"

    def __post_init__(self) -> None:
        if collection_enabled():
            register_collector(self._metric_kind, self)

    def snapshot(self) -> dict[str, float]:
        """Plain picklable ``{field: value}`` dict of every counter."""
        names = type(self).__dict__.get("_snapshot_fields")
        if names is None:
            # Cached per concrete class: snapshot() runs at every task
            # boundary while collection is on, and dataclass reflection is
            # too slow for that loop.
            names = tuple(field.name for field in dataclasses.fields(self))
            type(self)._snapshot_fields = names
        return {name: getattr(self, name) for name in names}

    def merge(self, other) -> None:
        """Accumulate counters from another instance (or a snapshot dict)."""
        values = other.snapshot() if hasattr(other, "snapshot") else other
        for name, value in values.items():
            setattr(self, name, getattr(self, name) + value)
