"""Text rendering over traces and metrics: ``repro trace`` / ``repro top``.

Pure functions over already-fetched data — the CLI owns I/O.  Includes a
small parser for the Prometheus text exposition produced by
:meth:`repro.obs.registry.MetricsRegistry.render` (and served at
``GET /metrics``), used both by ``repro top`` and by the ``obs`` bench
family's scrape round-trip assertion.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping

__all__ = [
    "parse_prometheus",
    "quantile_from_buckets",
    "top_report",
    "trace_breakdown",
]

_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")


def parse_prometheus(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse Prometheus text exposition into ``{name: [(labels, value)]}``.

    Histogram series appear under their ``_bucket``/``_sum``/``_count``
    sample names, exactly as exposed.  Raises ``ValueError`` on a line that
    is neither a comment nor a well-formed sample — the bench family uses
    that strictness as the scrape round-trip gate.
    """
    out: dict[str, list[tuple[dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        name, label_text, raw = match.groups()
        labels = {
            key: _unescape(value) for key, value in _LABEL.findall(label_text or "")
        }
        value = float("inf") if raw == "+Inf" else float(raw)
        out.setdefault(name, []).append((labels, value))
    return out


def quantile_from_buckets(
    samples: Iterable[tuple[Mapping[str, str], float]], q: float
) -> float | None:
    """Estimate quantile *q* from one series' ``_bucket`` samples.

    Returns the upper bound of the first bucket whose cumulative count
    reaches ``q * total`` (the usual Prometheus-side estimate), or ``None``
    when the series is empty.
    """
    buckets = sorted(
        ((float(labels["le"]) if labels["le"] != "+Inf" else float("inf")), count)
        for labels, count in samples
        if "le" in labels
    )
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    threshold = q * total
    for bound, cumulative in buckets:
        if cumulative >= threshold:
            return bound
    return buckets[-1][0]


# ----------------------------------------------------------------------
# repro trace
# ----------------------------------------------------------------------
def _span_paths(records: list[dict]) -> dict[tuple[str, ...], list[float]]:
    """Aggregate span durations by their root→leaf name path."""
    by_id = {record["span_id"]: record for record in records}
    durations: dict[tuple[str, ...], list[float]] = {}
    for record in records:
        names: list[str] = []
        seen: set[str] = set()
        cursor: dict | None = record
        while cursor is not None and cursor["span_id"] not in seen:
            names.append(cursor["name"])
            seen.add(cursor["span_id"])
            parent_id = cursor.get("parent_id")
            cursor = by_id.get(parent_id) if parent_id else None
        path = tuple(reversed(names))
        durations.setdefault(path, []).append(record["duration"])
    return durations


def trace_breakdown(records: list[dict]) -> str:
    """Render a per-phase time breakdown of a span trace as a text tree.

    Spans aggregate by their name path (all ``stream.tick → stream.verify``
    spans fold into one row); every row shows call count, total seconds,
    mean, and share of the trace's root time.
    """
    if not records:
        return "empty trace\n"
    durations = _span_paths(records)
    root_total = sum(
        sum(values) for path, values in durations.items() if len(path) == 1
    )
    lines = [
        f"{len(records)} spans, {len(durations)} distinct phases, "
        f"root time {root_total:.3f}s",
        f"{'phase':<48} {'count':>7} {'total_s':>9} {'mean_ms':>9} {'share':>7}",
    ]

    def render(prefix: tuple[str, ...], depth: int) -> None:
        children = sorted(
            (
                (path, values)
                for path, values in durations.items()
                if len(path) == depth + 1 and path[:depth] == prefix
            ),
            key=lambda item: -sum(item[1]),
        )
        for path, values in children:
            total = sum(values)
            share = (total / root_total) if root_total else 0.0
            label = "  " * depth + path[-1]
            lines.append(
                f"{label:<48} {len(values):>7} {total:>9.3f} "
                f"{1000 * total / len(values):>9.3f} {share:>6.1%}"
            )
            render(path, depth + 1)

    render((), 0)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
def top_report(url: str, healthz: dict, sessions: dict, metrics_text: str) -> str:
    """One-shot ``top``-style text report over a running ``repro serve``."""
    metrics = parse_prometheus(metrics_text)
    lines = [f"repro top — {url}"]
    lines.append(
        "health: {} sessions={} resident_nodes={} oldest_retained_version={}".format(
            "ok" if healthz.get("ok") else "DOWN",
            healthz.get("sessions", "?"),
            healthz.get("resident_nodes", "?"),
            healthz.get("oldest_retained_version", "-"),
        )
    )
    session_docs = sessions.get("sessions", [])
    if session_docs:
        lines.append("sessions:")
        for doc in session_docs:
            lines.append(
                "  {session:<6} graph={graph} algo={algorithm} version={graph_version} "
                "identified={identified} batches={batches_applied}".format(**doc)
            )
    requests = metrics.get("repro_http_requests_total", [])
    if requests:
        lines.append("http requests:")
        latency_buckets = metrics.get("repro_http_request_seconds_bucket", [])
        by_route: dict[tuple[str, str], float] = {}
        for labels, value in requests:
            key = (labels.get("method", "?"), labels.get("route", "?"))
            by_route[key] = by_route.get(key, 0) + value
        for (method, route), count in sorted(by_route.items(), key=lambda kv: -kv[1]):
            series = [
                (labels, value)
                for labels, value in latency_buckets
                if labels.get("method") == method and labels.get("route") == route
            ]
            p50 = quantile_from_buckets(series, 0.50)
            p99 = quantile_from_buckets(series, 0.99)
            quantiles = ""
            if p50 is not None:
                quantiles = f"  p50<={1000 * p50:g}ms p99<={1000 * p99:g}ms"
            lines.append(f"  {method:<6} {route:<32} {int(count):>7}{quantiles}")
    stream_counters = sorted(
        (name, samples)
        for name, samples in metrics.items()
        if name.startswith("repro_stream_")
    )
    if stream_counters:
        lines.append("stream:")
        for name, samples in stream_counters:
            total = sum(value for _labels, value in samples)
            lines.append(f"  {name:<44} {total:g}")
    tenant_counters = sorted(
        (name, samples)
        for name, samples in metrics.items()
        if name.startswith(("repro_tenant_", "repro_shared_cores"))
    )
    if tenant_counters:
        lines.append("tenants:")
        for name, samples in tenant_counters:
            total = sum(value for _labels, value in samples)
            lines.append(f"  {name:<44} {total:g}")
    return "\n".join(lines) + "\n"
