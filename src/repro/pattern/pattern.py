"""The pattern model ``Q = (Vp, Ep, f, C)`` with designated nodes.

Patterns are small (a handful of nodes) and immutable once built; mutation
helpers return new patterns, which keeps the levelwise expansion of DMine
free of aliasing bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from repro.exceptions import PatternError
from repro.graph.graph import Graph

PatternNodeId = Hashable


@dataclass(frozen=True)
class PatternEdge:
    """A directed labelled pattern edge."""

    source: PatternNodeId
    target: PatternNodeId
    label: str

    def sort_key(self) -> tuple[str, str, str]:
        """A total order usable even when node ids mix types (copy nodes)."""
        return (str(self.source), str(self.target), self.label)


class Pattern:
    """A connected search pattern with designated nodes ``x`` (and ``y``).

    Parameters
    ----------
    nodes:
        Mapping of pattern-node id to its label (search condition).
    edges:
        Iterable of ``(source, target, label)`` triples or
        :class:`PatternEdge` instances.
    x:
        The designated "potential customer" node; must be a key of *nodes*.
    y:
        The designated "item" node, or ``None`` for patterns that are not yet
        part of a GPAR (e.g. intermediate expansion states mine antecedents
        with both designated nodes, so in practice y is always given there).
    copies:
        Optional mapping of node id to a copy count ``C(u) >= 1``; ``k`` means
        the pattern stands for ``k`` sibling nodes with the same label and the
        same incident edges (the paper's succinct notation, e.g. "3 French
        restaurants").  Designated nodes must have count 1.

    Example
    -------
    >>> q = Pattern(
    ...     nodes={"x": "cust", "y": "restaurant"},
    ...     edges=[("x", "y", "like")],
    ...     x="x",
    ...     y="y",
    ... )
    >>> q.num_nodes, q.num_edges
    (2, 1)
    """

    __slots__ = ("_nodes", "_edges", "_copies", "x", "y", "_out", "_in", "_expanded_cache")

    def __init__(
        self,
        nodes: Mapping[PatternNodeId, str],
        edges: Iterable[PatternEdge | tuple],
        x: PatternNodeId,
        y: PatternNodeId | None = None,
        copies: Mapping[PatternNodeId, int] | None = None,
    ) -> None:
        if not nodes:
            raise PatternError("a pattern must have at least one node")
        self._nodes: dict[PatternNodeId, str] = dict(nodes)
        normalized: list[PatternEdge] = []
        for item in edges:
            edge = item if isinstance(item, PatternEdge) else PatternEdge(*item)
            if edge.source not in self._nodes:
                raise PatternError(f"edge source {edge.source!r} is not a pattern node")
            if edge.target not in self._nodes:
                raise PatternError(f"edge target {edge.target!r} is not a pattern node")
            normalized.append(edge)
        deduped = sorted(set(normalized), key=PatternEdge.sort_key)
        self._edges: tuple[PatternEdge, ...] = tuple(deduped)
        if x not in self._nodes:
            raise PatternError(f"designated node x={x!r} is not a pattern node")
        if y is not None and y not in self._nodes:
            raise PatternError(f"designated node y={y!r} is not a pattern node")
        self.x = x
        self.y = y
        self._copies: dict[PatternNodeId, int] = {}
        for node, count in (copies or {}).items():
            if node not in self._nodes:
                raise PatternError(f"copy count given for unknown node {node!r}")
            if count < 1:
                raise PatternError(f"copy count for {node!r} must be >= 1, got {count}")
            if count > 1 and node in (x, y):
                raise PatternError("designated nodes cannot carry a copy count > 1")
            if count > 1:
                self._copies[node] = count
        # adjacency caches (pattern-level, before copy expansion)
        out: dict[PatternNodeId, list[PatternEdge]] = {node: [] for node in self._nodes}
        inc: dict[PatternNodeId, list[PatternEdge]] = {node: [] for node in self._nodes}
        for edge in self._edges:
            out[edge.source].append(edge)
            inc[edge.target].append(edge)
        self._out = out
        self._in = inc
        self._expanded_cache: "Pattern | None" = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of pattern nodes (before copy expansion)."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of pattern edges (before copy expansion)."""
        return len(self._edges)

    @property
    def size(self) -> tuple[int, int]:
        """The paper's ``|R| = (|Vp|, |Ep|)`` size measure."""
        return (self.num_nodes, self.num_edges)

    def nodes(self) -> Iterator[PatternNodeId]:
        """Iterate over pattern node ids."""
        return iter(self._nodes)

    def node_items(self) -> Iterator[tuple[PatternNodeId, str]]:
        """Iterate over ``(node, label)`` pairs."""
        return iter(self._nodes.items())

    def edges(self) -> tuple[PatternEdge, ...]:
        """All pattern edges (sorted, deduplicated)."""
        return self._edges

    def label(self, node: PatternNodeId) -> str:
        """Label (search condition) of a pattern node."""
        try:
            return self._nodes[node]
        except KeyError:
            raise PatternError(f"{node!r} is not a pattern node") from None

    def has_node(self, node: PatternNodeId) -> bool:
        """Whether *node* is a pattern node."""
        return node in self._nodes

    def has_edge(self, source: PatternNodeId, target: PatternNodeId, label: str) -> bool:
        """Whether the pattern contains the given labelled edge."""
        return PatternEdge(source, target, label) in set(self._edges)

    def copy_count(self, node: PatternNodeId) -> int:
        """``C(u)``: number of copies of *node* (1 unless set otherwise)."""
        if node not in self._nodes:
            raise PatternError(f"{node!r} is not a pattern node")
        return self._copies.get(node, 1)

    def copy_counts(self) -> dict[PatternNodeId, int]:
        """All copy counts > 1."""
        return dict(self._copies)

    def out_edges(self, node: PatternNodeId) -> list[PatternEdge]:
        """Out-edges of *node* in the pattern."""
        return list(self._out[node])

    def in_edges(self, node: PatternNodeId) -> list[PatternEdge]:
        """In-edges of *node* in the pattern."""
        return list(self._in[node])

    def neighbors(self, node: PatternNodeId) -> set[PatternNodeId]:
        """Undirected pattern neighbours of *node*."""
        result = {edge.target for edge in self._out[node]}
        result.update(edge.source for edge in self._in[node])
        return result

    # ------------------------------------------------------------------
    # derived patterns
    # ------------------------------------------------------------------
    def with_edge(
        self,
        source: PatternNodeId,
        target: PatternNodeId,
        label: str,
        source_label: str | None = None,
        target_label: str | None = None,
    ) -> "Pattern":
        """Return a new pattern with one more edge (and nodes if labels given)."""
        nodes = dict(self._nodes)
        if source not in nodes:
            if source_label is None:
                raise PatternError(f"new node {source!r} needs a label")
            nodes[source] = source_label
        if target not in nodes:
            if target_label is None:
                raise PatternError(f"new node {target!r} needs a label")
            nodes[target] = target_label
        edges = list(self._edges) + [PatternEdge(source, target, label)]
        return Pattern(nodes, edges, x=self.x, y=self.y, copies=self._copies)

    def without_node(self, node: PatternNodeId) -> "Pattern":
        """Return a new pattern with *node* and its incident edges removed."""
        if node in (self.x, self.y):
            raise PatternError("cannot remove a designated node")
        nodes = {n: lbl for n, lbl in self._nodes.items() if n != node}
        edges = [e for e in self._edges if node not in (e.source, e.target)]
        copies = {n: c for n, c in self._copies.items() if n != node}
        return Pattern(nodes, edges, x=self.x, y=self.y, copies=copies)

    def expanded(self) -> "Pattern":
        """Materialise copy counts into explicit sibling nodes.

        A node ``u`` with ``C(u) = k`` becomes nodes ``u, (u, 2), ..., (u, k)``
        each carrying the same label and the same incident edges.  The result
        has all copy counts equal to 1 and is what the matchers operate on.
        The expanded pattern is computed once and cached.
        """
        if not self._copies:
            return self
        if self._expanded_cache is not None:
            return self._expanded_cache
        nodes = dict(self._nodes)
        edges = list(self._edges)
        for node, count in self._copies.items():
            label = self._nodes[node]
            for index in range(2, count + 1):
                clone = (node, index)
                if clone in nodes:
                    raise PatternError(f"copy node id collision for {clone!r}")
                nodes[clone] = label
                for edge in self._out[node]:
                    edges.append(PatternEdge(clone, edge.target, edge.label))
                for edge in self._in[node]:
                    edges.append(PatternEdge(edge.source, clone, edge.label))
        self._expanded_cache = Pattern(nodes, edges, x=self.x, y=self.y)
        return self._expanded_cache

    def to_graph(self, name: str = "pattern") -> Graph:
        """View the (copy-expanded) pattern as a :class:`Graph`.

        Pattern node labels become graph node labels, which lets the graph
        utilities (BFS, sketches, bisimulation) run on patterns unchanged.
        """
        expanded = self.expanded()
        graph = Graph(name=name)
        for node, label in expanded.node_items():
            graph.add_node(node, label)
        for edge in expanded.edges():
            graph.add_edge(edge.source, edge.target, edge.label)
        return graph

    # ------------------------------------------------------------------
    # equality / hashing
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (
            tuple(sorted((str(n), lbl) for n, lbl in self._nodes.items())),
            self._edges,
            tuple(sorted((str(n), c) for n, c in self._copies.items())),
            str(self.x),
            str(self.y) if self.y is not None else None,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"Pattern(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"x={self.x!r}, y={self.y!r})"
        )
