"""Graph patterns and graph-pattern association rules (GPARs).

A pattern ``Q = (Vp, Ep, f, C)`` is a small labelled graph whose node labels
are search conditions and whose optional copy counts ``C(u)`` denote ``k``
sibling nodes with the same label and links (paper Section 2.1).  A GPAR
``R(x, y): Q(x, y) ⇒ q(x, y)`` pairs a pattern antecedent with a single-edge
consequent between the two designated nodes (Section 2.2).
"""

from repro.pattern.pattern import Pattern, PatternEdge
from repro.pattern.builder import PatternBuilder
from repro.pattern.gpar import GPAR
from repro.pattern.radius import pattern_radius, is_connected
from repro.pattern.subsumption import subsumes
from repro.pattern.automorphism import are_isomorphic, group_automorphic
from repro.pattern.bisimulation import are_bisimilar
from repro.pattern.canonical import canonical_code

__all__ = [
    "Pattern",
    "PatternEdge",
    "PatternBuilder",
    "GPAR",
    "pattern_radius",
    "is_connected",
    "subsumes",
    "are_isomorphic",
    "group_automorphic",
    "are_bisimilar",
    "canonical_code",
]
