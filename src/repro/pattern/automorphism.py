"""Isomorphism between rule patterns and automorphic grouping.

DMine deduplicates GPARs generated independently by different workers; two
GPARs are "automorphic" when their rule patterns PR are isomorphic under a
mapping that preserves the designated nodes (paper Section 4.2).  The exact
check is exponential, so :func:`group_automorphic` first filters pairs with
the bisimulation necessary condition (Lemma 4) and the cheap canonical code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.pattern.bisimulation import are_bisimilar
from repro.pattern.canonical import canonical_code
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern


def are_isomorphic(first: Pattern, second: Pattern) -> bool:
    """Designated-node-preserving isomorphism between two patterns.

    Both patterns are copy-expanded first.  The mapping must send x to x and
    y to y (when present), preserve node labels, and induce a bijection
    between the edge sets with matching labels.
    """
    a = first.expanded()
    b = second.expanded()
    if a.num_nodes != b.num_nodes or a.num_edges != b.num_edges:
        return False
    if (a.y is None) != (b.y is None):
        return False

    b_nodes_by_label: dict[str, list] = {}
    for node, label in b.node_items():
        b_nodes_by_label.setdefault(label, []).append(node)
    a_nodes = sorted(a.nodes(), key=lambda n: (n != a.x, n != a.y, str(n)))
    b_edge_set = {(e.source, e.target, e.label) for e in b.edges()}
    a_edges = a.edges()

    def consistent(mapping: dict) -> bool:
        for edge in a_edges:
            if edge.source in mapping and edge.target in mapping:
                if (mapping[edge.source], mapping[edge.target], edge.label) not in b_edge_set:
                    return False
        return True

    def backtrack(index: int, mapping: dict, used: set) -> bool:
        if index == len(a_nodes):
            return True
        node = a_nodes[index]
        if node == a.x:
            candidates = [b.x]
        elif a.y is not None and node == a.y:
            candidates = [b.y]
        else:
            candidates = b_nodes_by_label.get(a.label(node), [])
        for candidate in candidates:
            if candidate in used:
                continue
            if b.label(candidate) != a.label(node):
                continue
            mapping[node] = candidate
            used.add(candidate)
            if consistent(mapping) and backtrack(index + 1, mapping, used):
                return True
            used.discard(candidate)
            del mapping[node]
        return False

    return backtrack(0, {}, set())


def gpars_automorphic(first: GPAR, second: GPAR) -> bool:
    """Whether two GPARs have the same consequent and isomorphic PR patterns."""
    if first.consequent_label != second.consequent_label:
        return False
    return are_isomorphic(first.pr_pattern(), second.pr_pattern())


def group_automorphic(
    rules: Sequence[GPAR],
    use_bisimulation_filter: bool = True,
) -> list[list[GPAR]]:
    """Partition *rules* into groups of pairwise-automorphic GPARs.

    The bisimulation filter (Lemma 4: not bisimilar ⇒ not automorphic) and the
    canonical-code filter cheaply reject most non-automorphic pairs before the
    exponential exact check runs.
    """
    groups: list[list[GPAR]] = []
    group_codes: list[str] = []
    for rule in rules:
        code = canonical_code(rule.pr_pattern())
        placed = False
        for index, group in enumerate(groups):
            representative = group[0]
            if rule.consequent_label != representative.consequent_label:
                continue
            if group_codes[index] != code:
                continue
            if use_bisimulation_filter and not are_bisimilar(
                rule.pr_pattern(), representative.pr_pattern()
            ):
                continue
            if gpars_automorphic(rule, representative):
                group.append(rule)
                placed = True
                break
        if not placed:
            groups.append([rule])
            group_codes.append(code)
    return groups


def deduplicate(rules: Iterable[GPAR]) -> list[GPAR]:
    """Keep one representative GPAR per automorphism class, preserving order."""
    return [group[0] for group in group_automorphic(list(rules))]
