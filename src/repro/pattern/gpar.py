"""Graph-pattern association rules (GPARs), paper Section 2.2.

A GPAR ``R(x, y): Q(x, y) ⇒ q(x, y)`` consists of

* an antecedent pattern ``Q`` with designated nodes ``x`` and ``y``;
* a consequent predicate ``q(x, y)`` — a single edge labelled ``q`` from
  ``x`` to ``y`` carrying the same search conditions as in ``Q``.

The rule is modelled as the pattern ``PR`` obtained by adding the consequent
edge to ``Q``.  A practical, nontrivial GPAR must satisfy:

1. ``PR`` is connected;
2. ``Q`` is non-empty (has at least one edge);
3. ``q(x, y)`` does not already appear in ``Q``.
"""

from __future__ import annotations

from functools import cached_property

from repro.exceptions import InvalidGPARError
from repro.pattern.pattern import Pattern, PatternEdge
from repro.pattern.radius import is_connected, pattern_radius


class GPAR:
    """A graph-pattern association rule ``Q(x, y) ⇒ q(x, y)``.

    Parameters
    ----------
    antecedent:
        The pattern ``Q`` — must designate both ``x`` and ``y``.
    consequent_label:
        The edge label ``q`` of the consequent predicate.
    name:
        Optional identifier used in reports (e.g. ``"R1"``).
    validate:
        When ``True`` (default) the nontriviality conditions above are
        enforced at construction time.

    Example
    -------
    >>> from repro.pattern import PatternBuilder
    >>> q = (
    ...     PatternBuilder()
    ...     .node("x", "cust").node("x2", "cust").node("y", "album")
    ...     .undirected_edge("x", "x2", "friend")
    ...     .edge("x2", "y", "like")
    ...     .designate(x="x", y="y")
    ...     .build()
    ... )
    >>> rule = GPAR(q, consequent_label="like", name="R")
    >>> rule.consequent_label
    'like'
    """

    __slots__ = ("antecedent", "consequent_label", "name", "__dict__")

    def __init__(
        self,
        antecedent: Pattern,
        consequent_label: str,
        name: str | None = None,
        validate: bool = True,
    ) -> None:
        if antecedent.y is None:
            raise InvalidGPARError("the antecedent must designate both x and y")
        self.antecedent = antecedent
        self.consequent_label = consequent_label
        self.name = name or f"GPAR[{consequent_label}]"
        if validate:
            self._validate()

    def _validate(self) -> None:
        if self.antecedent.num_edges == 0:
            raise InvalidGPARError("the antecedent Q must contain at least one edge")
        if self.antecedent.has_edge(self.antecedent.x, self.antecedent.y, self.consequent_label):
            raise InvalidGPARError(
                "the consequent edge q(x, y) must not appear in the antecedent Q"
            )
        if not is_connected(self.pr_pattern()):
            raise InvalidGPARError("the rule pattern PR must be connected")

    # ------------------------------------------------------------------
    # designated nodes and derived patterns
    # ------------------------------------------------------------------
    @property
    def x(self):
        """The designated potential-customer node of the rule."""
        return self.antecedent.x

    @property
    def y(self):
        """The designated item node of the rule."""
        return self.antecedent.y

    @property
    def x_label(self) -> str:
        """Search condition on x (e.g. ``cust``)."""
        return self.antecedent.label(self.antecedent.x)

    @property
    def y_label(self) -> str:
        """Search condition on y (possibly a value binding such as ``fake``)."""
        return self.antecedent.label(self.antecedent.y)

    @cached_property
    def _pr(self) -> Pattern:
        edges = list(self.antecedent.edges())
        edges.append(PatternEdge(self.antecedent.x, self.antecedent.y, self.consequent_label))
        return Pattern(
            nodes=dict(self.antecedent.node_items()),
            edges=edges,
            x=self.antecedent.x,
            y=self.antecedent.y,
            copies=self.antecedent.copy_counts(),
        )

    def pr_pattern(self) -> Pattern:
        """``PR``: the antecedent extended with the consequent edge."""
        return self._pr

    def q_pattern(self) -> Pattern:
        """``Pq``: the single-edge pattern ``x --q--> y``.

        Carries the same search conditions on x and y as the antecedent, so
        value bindings (e.g. ``y = fake``) are preserved.
        """
        return Pattern(
            nodes={self.x: self.x_label, self.y: self.y_label},
            edges=[PatternEdge(self.x, self.y, self.consequent_label)],
            x=self.x,
            y=self.y,
        )

    @cached_property
    def radius(self) -> int:
        """``r(PR, x)``: radius of the rule pattern at the designated node x."""
        return pattern_radius(self.pr_pattern(), self.x)

    @cached_property
    def verification_radius(self) -> int:
        """Ball radius needed to verify both PR *and* the antecedent Q at x.

        ``r(Q, x)`` can exceed ``r(PR, x)``: the consequent edge shortens the
        distance from x to y inside PR, but counting ``supp(Qq̄)`` requires
        matching the antecedent alone, whose x-reachable part may be deeper.
        Nodes of Q not reachable from x at all (a "free" y) do not constrain
        the radius — they are matched against the label index.
        """
        antecedent_graph = self.antecedent.to_graph()
        from repro.graph.neighborhood import eccentricity

        reachable_depth = eccentricity(antecedent_graph, self.antecedent.x)
        return max(self.radius, reachable_depth)

    @property
    def size(self) -> tuple[int, int]:
        """``|R| = (|Vp|, |Ep|)`` of the rule pattern PR."""
        return self.pr_pattern().size

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_antecedent(self, antecedent: Pattern, name: str | None = None) -> "GPAR":
        """Return a GPAR with the same consequent but a new antecedent."""
        return GPAR(
            antecedent,
            consequent_label=self.consequent_label,
            name=name or self.name,
            validate=False,
        )

    # ------------------------------------------------------------------
    # equality / hashing (structural, name-insensitive)
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (self.antecedent, self.consequent_label)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GPAR):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        nodes, edges = self.size
        return (
            f"GPAR(name={self.name!r}, consequent={self.consequent_label!r}, "
            f"|Vp|={nodes}, |Ep|={edges}, radius={self.radius})"
        )

    def describe(self) -> str:
        """Multi-line human-readable description used by examples and reports."""
        lines = [f"{self.name}: Q(x, y) => {self.consequent_label}(x, y)"]
        lines.append(f"  x: {self.x!r} ({self.x_label})   y: {self.y!r} ({self.y_label})")
        lines.append("  antecedent edges:")
        for edge in self.antecedent.edges():
            source_label = self.antecedent.label(edge.source)
            target_label = self.antecedent.label(edge.target)
            copies = self.antecedent.copy_count(edge.target)
            suffix = f" (x{copies})" if copies > 1 else ""
            lines.append(
                f"    {edge.source!r}[{source_label}] --{edge.label}--> "
                f"{edge.target!r}[{target_label}]{suffix}"
            )
        return "\n".join(lines)
