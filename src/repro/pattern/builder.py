"""Fluent construction of patterns."""

from __future__ import annotations

from typing import Hashable

from repro.pattern.pattern import Pattern, PatternEdge


class PatternBuilder:
    """Incrementally assemble a :class:`Pattern`.

    Example
    -------
    >>> q = (
    ...     PatternBuilder()
    ...     .node("x", "cust")
    ...     .node("y", "restaurant")
    ...     .edge("x", "y", "like")
    ...     .designate(x="x", y="y")
    ...     .build()
    ... )
    >>> q.num_edges
    1
    """

    def __init__(self) -> None:
        self._nodes: dict[Hashable, str] = {}
        self._edges: list[PatternEdge] = []
        self._copies: dict[Hashable, int] = {}
        self._x: Hashable | None = None
        self._y: Hashable | None = None

    def node(self, node_id: Hashable, label: str, copies: int = 1) -> "PatternBuilder":
        """Add a pattern node with optional copy count."""
        self._nodes[node_id] = label
        if copies > 1:
            self._copies[node_id] = copies
        return self

    def edge(self, source: Hashable, target: Hashable, label: str) -> "PatternBuilder":
        """Add a pattern edge (endpoints must have been declared)."""
        self._edges.append(PatternEdge(source, target, label))
        return self

    def undirected_edge(self, a: Hashable, b: Hashable, label: str) -> "PatternBuilder":
        """Add both directions of an edge (symmetric relations like friend)."""
        self._edges.append(PatternEdge(a, b, label))
        self._edges.append(PatternEdge(b, a, label))
        return self

    def designate(self, x: Hashable, y: Hashable | None = None) -> "PatternBuilder":
        """Declare the designated node(s)."""
        self._x = x
        self._y = y
        return self

    def build(self) -> Pattern:
        """Construct the pattern."""
        if self._x is None:
            raise ValueError("designate(x=...) must be called before build()")
        return Pattern(
            nodes=self._nodes,
            edges=self._edges,
            x=self._x,
            y=self._y,
            copies=self._copies,
        )
