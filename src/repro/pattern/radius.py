"""Pattern radius and connectivity (paper Section 2.1 notations)."""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.exceptions import PatternError
from repro.pattern.pattern import Pattern


def _undirected_distances(pattern: Pattern, source: Hashable) -> dict[Hashable, int]:
    distances = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in pattern.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def pattern_radius(pattern: Pattern, node: Hashable | None = None) -> int:
    """``r(Q, x)``: longest undirected distance from *node* to any pattern node.

    Defaults to the designated node ``x``.  Raises :class:`PatternError` if
    the pattern is not connected (the distance would be infinite).
    """
    anchor = pattern.x if node is None else node
    if not pattern.has_node(anchor):
        raise PatternError(f"{anchor!r} is not a pattern node")
    distances = _undirected_distances(pattern, anchor)
    if len(distances) != pattern.num_nodes:
        raise PatternError(
            "pattern radius is undefined for a disconnected pattern "
            f"({len(distances)} of {pattern.num_nodes} nodes reachable from {anchor!r})"
        )
    return max(distances.values())


def is_connected(pattern: Pattern) -> bool:
    """Whether the pattern is connected when treated as undirected."""
    start = next(iter(pattern.nodes()))
    distances = _undirected_distances(pattern, start)
    return len(distances) == pattern.num_nodes


def nodes_at_hop(pattern: Pattern, anchor: Hashable, hop: int) -> set[Hashable]:
    """Pattern nodes at exactly *hop* undirected steps from *anchor*."""
    distances = _undirected_distances(pattern, anchor)
    return {node for node, distance in distances.items() if distance == hop}
