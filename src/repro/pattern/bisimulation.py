"""Bisimulation between rule patterns (paper Section 4.2, Lemma 4).

Two patterns are bisimilar when there is a relation ``Ob`` matching every
node of one to a same-labelled node of the other such that every labelled
edge can be simulated in both directions of the relation.  Bisimilarity is a
*necessary* condition for automorphism, and — unlike isomorphism — it is
computable in low polynomial time by partition refinement, so DMine uses it
to filter candidate automorphic pairs cheaply.
"""

from __future__ import annotations

from typing import Hashable

from repro.pattern.pattern import Pattern


def _maximal_bisimulation_blocks(
    nodes: dict[Hashable, str],
    out_edges: dict[Hashable, list[tuple[str, Hashable]]],
) -> dict[Hashable, int]:
    """Partition-refinement computation of the maximal bisimulation.

    Nodes start in blocks keyed by label and are split until each block is
    stable under the signature ``{(edge label, target block)}``.  Returns a
    block id per node.
    """
    block_of: dict[Hashable, int] = {}
    labels = sorted(set(nodes.values()))
    label_index = {label: index for index, label in enumerate(labels)}
    for node, label in nodes.items():
        block_of[node] = label_index[label]

    changed = True
    while changed:
        changed = False
        signatures: dict[Hashable, tuple] = {}
        for node in nodes:
            signature = frozenset(
                (edge_label, block_of[target]) for edge_label, target in out_edges[node]
            )
            signatures[node] = (block_of[node], signature)
        # Re-number blocks from the signatures.
        new_ids: dict[tuple, int] = {}
        new_block_of: dict[Hashable, int] = {}
        for node in nodes:
            signature = signatures[node]
            if signature not in new_ids:
                new_ids[signature] = len(new_ids)
            new_block_of[node] = new_ids[signature]
        if new_block_of != block_of:
            block_of = new_block_of
            changed = True
    return block_of


def are_bisimilar(first: Pattern, second: Pattern) -> bool:
    """Whether *first* and *second* are bisimilar (paper's definition).

    The check runs partition refinement over the disjoint union of the two
    (copy-expanded) patterns and then verifies that every block containing a
    node of one pattern also contains a node of the other; in addition the
    designated nodes must fall in the same block.
    """
    a = first.expanded()
    b = second.expanded()

    nodes: dict[tuple, str] = {}
    out_edges: dict[tuple, list[tuple[str, tuple]]] = {}
    for tag, pattern in (("a", a), ("b", b)):
        for node, label in pattern.node_items():
            key = (tag, node)
            nodes[key] = label
            out_edges[key] = []
        for edge in pattern.edges():
            out_edges[(tag, edge.source)].append((edge.label, (tag, edge.target)))

    block_of = _maximal_bisimulation_blocks(nodes, out_edges)

    blocks_a = {block_of[("a", node)] for node in a.nodes()}
    blocks_b = {block_of[("b", node)] for node in b.nodes()}
    if blocks_a != blocks_b:
        return False
    if block_of[("a", a.x)] != block_of[("b", b.x)]:
        return False
    if (a.y is None) != (b.y is None):
        return False
    if a.y is not None and block_of[("a", a.y)] != block_of[("b", b.y)]:
        return False
    return True
