"""Pattern subsumption ``Q' ⊑ Q`` (paper Section 2.1).

``Q'`` is subsumed by ``Q`` when ``(V'p, E'p)`` is a subgraph of
``(Vp, Ep)`` and the labelling/copy functions of ``Q'`` are restrictions of
those of ``Q``.  With our identity-based pattern nodes this is a direct
containment check; a label-respecting embedding check is also provided for
patterns built with different node ids.
"""

from __future__ import annotations

from repro.pattern.pattern import Pattern


def subsumes(bigger: Pattern, smaller: Pattern) -> bool:
    """Whether ``smaller ⊑ bigger`` using shared node identities."""
    for node, label in smaller.node_items():
        if not bigger.has_node(node) or bigger.label(node) != label:
            return False
        if smaller.copy_count(node) > bigger.copy_count(node):
            return False
    bigger_edges = set(bigger.edges())
    return all(edge in bigger_edges for edge in smaller.edges())


def embeds(bigger: Pattern, smaller: Pattern) -> bool:
    """Whether *smaller* has a label-preserving embedding into *bigger*.

    This relaxes :func:`subsumes` to patterns whose node ids differ; it runs a
    small backtracking search (patterns have a handful of nodes) over the
    copy-expanded patterns and requires designated nodes to map to designated
    nodes.
    """
    small = smaller.expanded()
    big = bigger.expanded()
    small_nodes = list(small.nodes())
    big_nodes = list(big.nodes())

    def candidates(node):
        if node == small.x:
            return [big.x]
        if small.y is not None and node == small.y:
            return [big.y] if big.y is not None else []
        return [
            candidate
            for candidate in big_nodes
            if big.label(candidate) == small.label(node)
        ]

    big_edges = set(big.edges())

    def backtrack(index: int, mapping: dict) -> bool:
        if index == len(small_nodes):
            return True
        node = small_nodes[index]
        for candidate in candidates(node):
            if candidate in mapping.values():
                continue
            mapping[node] = candidate
            consistent = True
            for edge in small.edges():
                if edge.source in mapping and edge.target in mapping:
                    mapped = (mapping[edge.source], mapping[edge.target], edge.label)
                    if not any(
                        e.source == mapped[0] and e.target == mapped[1] and e.label == mapped[2]
                        for e in big_edges
                    ):
                        consistent = False
                        break
            if consistent and backtrack(index + 1, mapping):
                return True
            del mapping[node]
        return False

    return backtrack(0, {})
