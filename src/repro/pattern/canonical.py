"""Canonical codes for patterns.

A canonical code is a string that is identical for isomorphic patterns
(designated nodes respected) and — up to a documented size cutoff — different
for non-isomorphic ones.  It gives DMine a dictionary key for grouping
candidate GPARs before the exact automorphism test.

The code is computed by Weisfeiler–Lehman style colour refinement seeded with
``(label, is_x, is_y)`` followed by an exhaustive minimisation over orderings
within colour classes.  Patterns in GPAR mining have a handful of nodes, so
the exhaustive step is cheap; if the number of orderings would exceed
``_MAX_ORDERINGS`` we fall back to a deterministic (but possibly
non-canonical) code — still a valid hash key because the exact isomorphism
check runs afterwards in :mod:`repro.pattern.automorphism`.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Hashable

from repro.pattern.pattern import Pattern

_MAX_ORDERINGS = 20_000
_REFINEMENT_ROUNDS = 4


def _refined_colors(pattern: Pattern) -> dict[Hashable, tuple]:
    colors: dict[Hashable, tuple] = {}
    for node, label in pattern.node_items():
        colors[node] = (label, node == pattern.x, node == pattern.y)
    for _ in range(_REFINEMENT_ROUNDS):
        next_colors: dict[Hashable, tuple] = {}
        for node in pattern.nodes():
            out_signature = tuple(
                sorted((edge.label, colors[edge.target]) for edge in pattern.out_edges(node))
            )
            in_signature = tuple(
                sorted((edge.label, colors[edge.source]) for edge in pattern.in_edges(node))
            )
            next_colors[node] = (colors[node], out_signature, in_signature)
        if len(set(next_colors.values())) == len(set(colors.values())):
            colors = next_colors
            break
        colors = next_colors
    return colors


def _encode(pattern: Pattern, ordering: list) -> tuple:
    index_of = {node: index for index, node in enumerate(ordering)}
    node_part = tuple(
        (index, pattern.label(node), node == pattern.x, node == pattern.y)
        for index, node in enumerate(ordering)
    )
    edge_part = tuple(
        sorted(
            (index_of[edge.source], index_of[edge.target], edge.label)
            for edge in pattern.edges()
        )
    )
    return (node_part, edge_part)


def canonical_code(pattern: Pattern) -> str:
    """Return the canonical code of (the copy-expanded) *pattern*."""
    expanded = pattern.expanded()
    colors = _refined_colors(expanded)

    # Group nodes by colour; orderings permute only within a colour class.
    classes: dict[tuple, list] = {}
    for node in expanded.nodes():
        classes.setdefault(colors[node], []).append(node)
    ordered_classes = [
        sorted(members, key=str) for _, members in sorted(classes.items(), key=lambda kv: repr(kv[0]))
    ]

    total_orderings = 1
    for members in ordered_classes:
        factor = 1
        for i in range(2, len(members) + 1):
            factor *= i
        total_orderings *= factor
        if total_orderings > _MAX_ORDERINGS:
            break

    if total_orderings > _MAX_ORDERINGS:
        # Deterministic fallback: fixed order inside each class.
        ordering = [node for members in ordered_classes for node in members]
        return "fallback:" + repr(_encode(expanded, ordering))

    best: tuple | None = None
    for combo in product(*(permutations(members) for members in ordered_classes)):
        ordering = [node for group in combo for node in group]
        code = _encode(expanded, ordering)
        if best is None or code < best:
            best = code
    return "canonical:" + repr(best)
