"""Adversarial churn generators ("storms") for the streaming subsystem.

:func:`repro.stream.random_update_batch` samples *uniform* churn; real
deployments misbehave in *correlated* ways, and so do the maintenance bugs
worth finding.  Each storm here is an :class:`~repro.stream.UpdateBatch`
sampler with the same contract as ``random_update_batch`` — deterministic
under its seed, self-consistent (no op references state an earlier op of
the same batch invalidated), valid against the graph's current state — but
with its churn concentrated where the repair machinery is weakest:

* :func:`correlated_deletion_storm` — deletions clustered inside one
  2-ball, the regime where ball-membership refcounts and census counts
  drop in bulk;
* :func:`label_flip_storm` — a small victim set relabelled repeatedly
  (several flips of the *same* node per tick), stressing label-index
  buckets and the global label census;
* :func:`hub_churn_storm` — incident-edge churn on the highest-degree
  node, occasionally deleting and replacing the hub itself, the worst case
  for delta-patched indexes and migration;
* :func:`ball_burst_storm` — interleaved add/remove bursts aimed at a
  single ball: fresh nodes wired in and torn out within one batch.

:data:`STORM_FAMILIES` registers them (plus the uniform baseline) for the
differential oracle, the ``storm`` bench-smoke family and the distiller.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.exceptions import StreamError
from repro.graph.graph import Graph
from repro.graph.neighborhood import ball
from repro.stream.updates import UpdateBatch, UpdateOp, random_update_batch
from repro.utils.rng import ensure_rng

NodeId = Hashable

#: Radius of the region a localized storm concentrates on.
STORM_RADIUS = 2


class _StormState:
    """Shared bookkeeping: what is still alive/present mid-batch.

    Mirrors the tracking inside ``random_update_batch`` so every generator
    emits self-consistent batches without re-deriving the rules.
    """

    def __init__(self, graph: Graph, seed) -> None:
        if not graph.num_nodes:
            raise StreamError("cannot sample updates against an empty graph")
        self.graph = graph
        self.rng = ensure_rng(seed)
        self.alive = set(graph.nodes())
        self.present = {(e.source, e.target, e.label) for e in graph.edges()}
        self.node_labels = sorted(graph.node_labels()) or ["node"]
        self.edge_labels = sorted(graph.edge_labels()) or ["edge"]
        self.ops: list[UpdateOp] = []
        self._fresh_serial = 0

    # -- pools ---------------------------------------------------------
    def live(self, nodes) -> list[NodeId]:
        return sorted((n for n in nodes if n in self.alive), key=str)

    def live_edges(self, region=None) -> list[tuple]:
        pool = [
            e
            for e in self.present
            if e[0] in self.alive and e[1] in self.alive
        ]
        if region is not None:
            pool = [e for e in pool if e[0] in region and e[1] in region]
        return sorted(pool, key=str)

    def pick(self, pool):
        return pool[self.rng.randrange(len(pool))]

    # -- emitters (each keeps alive/present truthful) ------------------
    def remove_edge(self, edge: tuple) -> None:
        self.present.discard(edge)
        self.ops.append(UpdateOp.remove_edge(*edge))

    def remove_node(self, node: NodeId) -> None:
        self.alive.discard(node)
        self.present = {e for e in self.present if node not in (e[0], e[1])}
        self.ops.append(UpdateOp.remove_node(node))

    def add_edge(self, source: NodeId, target: NodeId, label: str) -> bool:
        if (source, target, label) in self.present or source == target:
            return False
        self.present.add((source, target, label))
        self.ops.append(UpdateOp.add_edge(source, target, label))
        return True

    def add_fresh_node(self, prefix: str, label: str) -> NodeId:
        self._fresh_serial += 1
        node = f"{prefix}-{self._fresh_serial}"
        self.alive.add(node)
        self.ops.append(UpdateOp.add_node(node, label))
        return node

    def relabel(self, node: NodeId, label: str) -> None:
        self.ops.append(UpdateOp.relabel_node(node, label))

    def batch(self) -> UpdateBatch:
        return UpdateBatch(ops=tuple(self.ops))


def _check_size(size: int) -> None:
    if size < 1:
        raise StreamError(f"size must be >= 1, got {size}")


def _epicenter(state: _StormState) -> NodeId:
    """A deterministic random node to centre the storm on."""
    return state.pick(sorted(state.alive, key=str))


def correlated_deletion_storm(
    graph: Graph, size: int = 8, seed=0
) -> UpdateBatch:
    """Deletions clustered inside one ``STORM_RADIUS``-ball.

    Roughly three quarters of the operations remove edges whose *both*
    endpoints lie in the epicentre's ball; the rest remove ball nodes
    outright.  When the region runs dry the storm re-centres, so the batch
    always reaches *size* on any graph with edges (and degrades to node
    deletions on edgeless graphs).
    """
    _check_size(size)
    state = _StormState(graph, seed)
    region = ball(graph, _epicenter(state), STORM_RADIUS) & state.alive
    attempts = 0
    while len(state.ops) < size and attempts < size * 50:
        attempts += 1
        edges = state.live_edges(region)
        nodes = state.live(region)
        if not edges and (len(nodes) < 1 or len(state.alive) <= 2):
            if len(state.alive) <= 2:
                break  # nothing left that is safe to delete
            region = ball(graph, _epicenter(state), STORM_RADIUS) & state.alive
            continue
        if edges and (not nodes or state.rng.random() < 0.75):
            state.remove_edge(state.pick(edges))
        elif nodes and len(state.alive) > 2:
            victim = state.pick(nodes)
            region.discard(victim)
            state.remove_node(victim)
        else:
            region = ball(graph, _epicenter(state), STORM_RADIUS) & state.alive
    return state.batch()


def label_flip_storm(graph: Graph, size: int = 8, seed=0) -> UpdateBatch:
    """Repeated relabels of a small victim set.

    Victims are flipped through the graph's own label alphabet, several
    times each per batch — the same node may change label twice in one
    version tick, which is exactly the history a label census or a
    patched label-index bucket can get wrong.
    """
    _check_size(size)
    state = _StormState(graph, seed)
    pool = sorted(state.alive, key=str)
    victims = [
        state.pick(pool) for _ in range(max(2, min(len(pool), size // 3 + 1)))
    ]
    for position in range(size):
        victim = victims[position % len(victims)]
        current = graph.node_label(victim)
        flips = [label for label in state.node_labels if label != current]
        state.relabel(victim, state.pick(flips) if flips else current)
    return state.batch()


def hub_churn_storm(graph: Graph, size: int = 8, seed=0) -> UpdateBatch:
    """Churn concentrated on the highest-degree node.

    Alternates removing the hub's incident edges with wiring new edges at
    the hub; one batch in roughly eight deletes the hub outright and
    splices in a fresh same-labelled replacement — the maximal single-op
    invalidation the repair layers can face.
    """
    _check_size(size)
    state = _StormState(graph, seed)
    degree = {node: 0 for node in state.alive}
    for source, target, _label in state.present:
        degree[source] += 1
        degree[target] += 1
    hub = min(state.alive, key=lambda node: (-degree[node], str(node)))
    if degree[hub] and state.rng.random() < 0.125:
        replacement_label = graph.node_label(hub)
        neighbours = state.live(
            {e[1] for e in state.present if e[0] == hub}
            | {e[0] for e in state.present if e[1] == hub}
        )
        state.remove_node(hub)
        hub = state.add_fresh_node(f"hub-{seed}", replacement_label)
        for neighbour in neighbours:
            if len(state.ops) >= size:
                break
            state.add_edge(hub, neighbour, state.pick(state.edge_labels))
    attempts = 0
    while len(state.ops) < size and attempts < size * 50:
        attempts += 1
        incident = [
            e for e in state.live_edges() if hub in (e[0], e[1])
        ]
        if incident and state.rng.random() < 0.5:
            state.remove_edge(state.pick(incident))
            continue
        others = state.live(state.alive - {hub})
        if not others:
            break
        state.add_edge(hub, state.pick(others), state.pick(state.edge_labels))
    return state.batch()


def ball_burst_storm(graph: Graph, size: int = 8, seed=0) -> UpdateBatch:
    """Interleaved add/remove bursts aimed at one ball.

    Each round wires a fresh node into the epicentre's ball and then tears
    something in the same region out (an edge, or the just-added node one
    time in four) — additions and removals of the *same* locality
    interleave inside a single version tick.
    """
    _check_size(size)
    state = _StormState(graph, seed)
    center = _epicenter(state)
    region = ball(graph, center, STORM_RADIUS) & state.alive
    recent: list[NodeId] = []
    attempts = 0
    while len(state.ops) < size and attempts < size * 50:
        attempts += 1
        anchors = state.live(region)
        if not anchors:
            break
        roll = state.rng.random()
        if roll < 0.4:
            fresh = state.add_fresh_node(f"burst-{seed}", state.pick(state.node_labels))
            state.add_edge(fresh, state.pick(anchors), state.pick(state.edge_labels))
            region.add(fresh)
            recent.append(fresh)
        elif roll < 0.65 and recent:
            victim = recent.pop()
            region.discard(victim)
            state.remove_node(victim)
        else:
            edges = state.live_edges(region)
            if edges:
                state.remove_edge(state.pick(edges))
            elif len(anchors) > 1 and len(state.alive) > 2:
                victim = state.pick([n for n in anchors if n != center] or anchors)
                region.discard(victim)
                state.remove_node(victim)
    return state.batch()


#: name -> sampler(graph, size=, seed=); the oracle, the distiller and the
#: ``storm`` bench family iterate this registry.
STORM_FAMILIES: dict[str, Callable[..., UpdateBatch]] = {
    "random": random_update_batch,
    "correlated-deletions": correlated_deletion_storm,
    "label-flips": label_flip_storm,
    "hub-churn": hub_churn_storm,
    "ball-burst": ball_burst_storm,
}
