"""Differential oracle: maintained streaming state vs fresh recomputes.

The oracle's contract (see ``docs/adversarial.md``): after **every** update
batch, on every configured ``backend × index-mode`` combination,

* a :class:`~repro.stream.StreamingIdentifier` maintained across the
  batches must report an :func:`eip_fingerprint` byte-identical to
  ``identify_entities`` re-run from scratch on a pristine copy of the
  mutated graph, and
* a :class:`~repro.stream.MaintainedMatchView` over the maintainable
  antecedent patterns must report match sets equal to a fresh index-free
  matcher's ``match_set`` on the live graph.

Any exception raised by the maintained side is itself a divergence
(``component="error"``) — a streaming path that rejects a workload the
static path accepts is exactly the kind of semantics gap this harness
exists to catch.  The oracle reports the **first** divergence per
combination and keeps combinations independent (each gets its own graph
copy), so a reported batch index is the true minimal failing prefix for
that combination.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.graph.graph import Graph
from repro.identification import identify_entities
from repro.identification.eip import EIPConfig, EIPResult
from repro.matching import DeltaMatcher, MatchStore, VF2Matcher
from repro.pattern.gpar import GPAR
from repro.stream import MaintainedMatchView, StreamingIdentifier, UpdateBatch

#: batch_index used for the pre-batch (initial assembly) check.
INITIAL = -1


def eip_fingerprint(result: EIPResult) -> tuple:
    """Order-independent identity of an EIP answer (entities, confidences,
    per-rule match sets) — two results with equal fingerprints answer every
    query of the serving layer identically."""
    return (
        tuple(sorted(str(node) for node in result.identified)),
        tuple(
            sorted(
                (rule.name, round(confidence, 9))
                for rule, confidence in result.rule_confidences.items()
            )
        ),
        tuple(
            sorted(
                (rule.name, tuple(sorted(str(node) for node in matches)))
                for rule, matches in result.rule_matches.items()
            )
        ),
    )


@dataclass(frozen=True)
class Divergence:
    """First observed disagreement between maintained and fresh state."""

    batch_index: int  #: batch after which it surfaced (-1 = initial state)
    component: str  #: "identifier", "matchview" or "error"
    backend: str
    use_index: bool
    detail: str
    expected: object = None  #: fresh-recompute side (fingerprint / sets)
    actual: object = None  #: maintained side

    def describe(self) -> str:
        where = "initial state" if self.batch_index == INITIAL else f"batch {self.batch_index}"
        return (
            f"[{self.component}] {where} on backend={self.backend} "
            f"index={'on' if self.use_index else 'off'}: {self.detail}"
        )


@dataclass
class OracleReport:
    """Outcome of one :meth:`DifferentialOracle.run`."""

    divergences: list[Divergence] = field(default_factory=list)
    batches_checked: int = 0
    combos_run: int = 0
    checks: int = 0  #: individual maintained-vs-fresh comparisons
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def checks_per_second(self) -> float:
        return self.checks / self.wall_time if self.wall_time > 0 else 0.0


class DifferentialOracle:
    """Run maintained streaming state against fresh recomputes.

    Parameters
    ----------
    rules:
        The Σ under test.
    algorithm, eta, num_workers, seed:
        Forwarded to both the maintained identifier and the fresh
        ``identify_entities`` runs (the two sides must answer the same
        question).
    backends, index_modes:
        The grid of streaming configurations to exercise; the fresh side
        always recomputes sequentially on a pristine graph copy.
    view_matcher_factory:
        Zero-argument callable building the matcher that backs the
        maintained match view.  The default is the real enumerating VF2
        matcher; tests inject known-buggy shims here to prove the harness
        catches them.
    """

    def __init__(
        self,
        rules: Sequence[GPAR],
        algorithm: str = "match",
        eta: float = 0.5,
        num_workers: int = 2,
        seed: int = 0,
        backends: Sequence[str] = ("sequential",),
        index_modes: Sequence[bool] = (True,),
        view_matcher_factory: Callable[[], object] | None = None,
    ) -> None:
        self.rules = tuple(rules)
        self.algorithm = algorithm
        self.eta = eta
        self.num_workers = num_workers
        self.seed = seed
        self.backends = tuple(backends)
        self.index_modes = tuple(bool(mode) for mode in index_modes)
        self.view_matcher_factory = view_matcher_factory or (
            lambda: VF2Matcher(use_index=False)
        )

    # -- configuration ----------------------------------------------------
    def narrowed(self, divergence: Divergence) -> "DifferentialOracle":
        """A single-combination oracle replaying *divergence*'s config —
        what the distiller iterates with."""
        clone = DifferentialOracle(
            self.rules,
            algorithm=self.algorithm,
            eta=self.eta,
            num_workers=self.num_workers,
            seed=self.seed,
            backends=(divergence.backend,),
            index_modes=(divergence.use_index,),
            view_matcher_factory=self.view_matcher_factory,
        )
        return clone

    def checker_for(self, divergence: Divergence):
        """A distillation predicate pinned to *divergence*.

        Replays only the failing combination and only accepts a failure of
        the same ``component`` — delta debugging must shrink towards the
        *original* bug, not towards whatever new failure (e.g. an op made
        invalid by dropping its predecessor) a reduction introduces.
        """
        oracle = self.narrowed(divergence)

        def check(graph: Graph, batches: Sequence[UpdateBatch]) -> Divergence | None:
            found = oracle.check(graph, batches)
            if found is not None and found.component == divergence.component:
                return found
            return None

        return check

    def _config(self, backend: str, use_index: bool):
        from repro.identification.eip import EIPConfig

        return EIPConfig(
            eta=self.eta,
            num_workers=self.num_workers,
            seed=self.seed,
            backend=backend,
            use_index=use_index,
        )

    # -- fresh side -------------------------------------------------------
    def _fresh_result(self, graph: Graph) -> EIPResult:
        return identify_entities(
            graph.copy(),
            list(self.rules),
            eta=self.eta,
            num_workers=self.num_workers,
            algorithm=self.algorithm,
            seed=self.seed,
        )

    def _maintainable_patterns(self, graph: Graph):
        from repro.exceptions import PatternError
        from repro.pattern.radius import pattern_radius

        matcher = self.view_matcher_factory()
        probe = DeltaMatcher(graph, matcher, MatchStore(graph))
        patterns = []
        for rule in self.rules:
            pattern = rule.antecedent
            try:
                # Census-split antecedents are covered by the identifier
                # check; materializing their embedding *products* in the
                # view would be cartesian in the free part's witnesses.
                pattern_radius(pattern.expanded())
            except PatternError:
                continue
            if probe.supports(pattern) and pattern not in patterns:
                patterns.append(pattern)
        return patterns

    # -- the run ----------------------------------------------------------
    def run(
        self,
        graph: Graph,
        batches: Sequence[UpdateBatch],
        stop_at_first: bool = False,
    ) -> OracleReport:
        """Replay *batches* on every combination; report first divergences.

        *graph* itself is never mutated — every combination maintains its
        own copy.  With ``stop_at_first`` the run short-circuits at the
        first divergence found (the distiller's mode).
        """
        report = OracleReport()
        started = time.perf_counter()
        for backend in self.backends:
            for use_index in self.index_modes:
                report.combos_run += 1
                divergence = self._run_combo(graph, batches, backend, use_index, report)
                if divergence is not None:
                    report.divergences.append(divergence)
                    if stop_at_first:
                        report.wall_time = time.perf_counter() - started
                        return report
        report.batches_checked = len(batches)
        report.wall_time = time.perf_counter() - started
        return report

    def check(self, graph: Graph, batches: Sequence[UpdateBatch]) -> Divergence | None:
        """First divergence on the configured grid, or ``None`` — the
        predicate the distiller shrinks against."""
        report = self.run(graph, batches, stop_at_first=True)
        return report.divergences[0] if report.divergences else None

    # ------------------------------------------------------------------
    def _run_combo(
        self,
        graph: Graph,
        batches: Sequence[UpdateBatch],
        backend: str,
        use_index: bool,
        report: OracleReport,
    ) -> Divergence | None:
        live = graph.copy()
        mark = lambda **kw: Divergence(backend=backend, use_index=use_index, **kw)  # noqa: E731
        try:
            identifier = StreamingIdentifier(
                live,
                list(self.rules),
                config=self._config(backend, use_index),
                algorithm=self.algorithm,
            )
        except Exception as error:  # semantics gap: streaming rejects Σ
            return mark(
                batch_index=INITIAL,
                component="error",
                detail=f"StreamingIdentifier rejected the workload: {error}",
                actual=repr(error),
            )
        try:
            patterns = self._maintainable_patterns(live)
            view = (
                MaintainedMatchView(live, patterns, self.view_matcher_factory())
                if patterns
                else None
            )
            divergence = self._compare(identifier, view, patterns, INITIAL, mark, report)
            if divergence is not None:
                return divergence
            for index, batch in enumerate(batches):
                try:
                    identifier.apply(batch)
                    if view is not None:
                        view.refresh()
                except Exception as error:
                    return mark(
                        batch_index=index,
                        component="error",
                        detail=f"maintenance raised while applying the batch: {error}",
                        actual=repr(error),
                    )
                divergence = self._compare(identifier, view, patterns, index, mark, report)
                if divergence is not None:
                    return divergence
        finally:
            identifier.close()
        return None

    def _compare(
        self, identifier, view, patterns, batch_index: int, mark, report: OracleReport
    ) -> Divergence | None:
        maintained = eip_fingerprint(identifier.result)
        fresh = eip_fingerprint(self._fresh_result(identifier.graph))
        report.checks += 1
        if maintained != fresh:
            return mark(
                batch_index=batch_index,
                component="identifier",
                detail="maintained EIP result differs from a fresh recompute",
                expected=fresh,
                actual=maintained,
            )
        if view is not None:
            oracle_matcher = VF2Matcher(use_index=False)
            for pattern in patterns:
                report.checks += 1
                kept = view.match_set(pattern)
                truth = frozenset(oracle_matcher.match_set(identifier.graph, pattern))
                if kept != truth:
                    return mark(
                        batch_index=batch_index,
                        component="matchview",
                        detail=(
                            "maintained match set differs from re-matching "
                            f"for pattern {pattern!r}"
                        ),
                        expected=tuple(sorted(map(str, truth))),
                        actual=tuple(sorted(map(str, kept))),
                    )
        return None


# ----------------------------------------------------------------------
# Multi-tenant checker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantDivergence:
    """A tenant's projected answer disagreeing with its independent run."""

    batch_index: int  #: batch after which it surfaced (-1 = initial state)
    tenant: str  #: "*" for failures not attributable to one tenant
    backend: str
    use_columnar: bool
    detail: str
    expected: object = None  #: independent ``identify_entities`` fingerprint
    actual: object = None  #: shared-core projection fingerprint

    def describe(self) -> str:
        where = "initial state" if self.batch_index == INITIAL else f"batch {self.batch_index}"
        return (
            f"[tenant {self.tenant}] {where} on backend={self.backend} "
            f"columnar={'on' if self.use_columnar else 'off'}: {self.detail}"
        )


def multi_tenant_check(
    graph: Graph,
    tenants: Mapping[str, Sequence[GPAR]],
    batches: Sequence[UpdateBatch],
    *,
    eta: float = 0.5,
    num_workers: int = 2,
    algorithm: str = "match",
    seed: int = 0,
    backends: Sequence[str] = ("sequential",),
    columnar_modes: Sequence[bool] = (True,),
    radius_floor: int = 0,
) -> list[TenantDivergence]:
    """Cross-Σ correctness: shared-core projections vs independent runs.

    For every ``backend × columnar`` combination, admits every tenant into
    one :class:`~repro.stream.MultiTenantIdentifier` over a copy of *graph*,
    then — initially and after **each** batch — asserts every tenant's
    :meth:`result_for` projection is :func:`eip_fingerprint`-identical to an
    independent ``identify_entities`` run with that tenant's rules on the
    same (mutated) graph.  Combinations stay independent (own graph copy);
    the first divergence per combination is reported, one entry per
    combination at most, and an empty list means the shared substrate is
    answer-preserving across the whole grid.
    """
    from repro.stream import MultiTenantIdentifier

    divergences: list[TenantDivergence] = []
    for backend in backends:
        for use_columnar in columnar_modes:
            use_columnar = bool(use_columnar)
            config = EIPConfig(
                eta=eta,
                num_workers=num_workers,
                seed=seed,
                backend=backend,
                use_columnar=use_columnar,
            )
            mark = lambda **kw: TenantDivergence(  # noqa: E731
                backend=backend, use_columnar=use_columnar, **kw
            )
            multi = MultiTenantIdentifier(
                graph.copy(),
                config=config,
                algorithm=algorithm,
                radius_floor=radius_floor,
            )
            try:
                divergence = _run_tenant_combo(multi, tenants, batches, mark)
            finally:
                multi.close()
            if divergence is not None:
                divergences.append(divergence)
    return divergences


def _run_tenant_combo(
    multi,
    tenants: Mapping[str, Sequence[GPAR]],
    batches: Sequence[UpdateBatch],
    mark,
) -> TenantDivergence | None:
    try:
        for tenant, rules in tenants.items():
            multi.admit(tenant, tuple(rules))
    except Exception as error:  # semantics gap: shared core rejects a Σ
        return mark(
            batch_index=INITIAL,
            tenant="*",
            detail=f"admission rejected a tenant rule set: {error}",
            actual=repr(error),
        )
    divergence = _compare_tenants(multi, INITIAL, mark)
    if divergence is not None:
        return divergence
    for index, batch in enumerate(batches):
        try:
            multi.apply(batch)
        except Exception as error:
            return mark(
                batch_index=index,
                tenant="*",
                detail=f"shared core raised while applying the batch: {error}",
                actual=repr(error),
            )
        divergence = _compare_tenants(multi, index, mark)
        if divergence is not None:
            return divergence
    return None


def _compare_tenants(multi, batch_index: int, mark) -> TenantDivergence | None:
    for tenant in multi.tenants:
        projected = eip_fingerprint(multi.result_for(tenant))
        fresh = eip_fingerprint(multi.recompute_for(tenant))
        if projected != fresh:
            return mark(
                batch_index=batch_index,
                tenant=tenant,
                detail="shared-core projection differs from an independent run",
                expected=fresh,
                actual=projected,
            )
    return None


__all__ = [
    "Divergence",
    "DifferentialOracle",
    "OracleReport",
    "TenantDivergence",
    "eip_fingerprint",
    "multi_tenant_check",
    "INITIAL",
]
