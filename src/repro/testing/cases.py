"""Regression cases: distilled counterexamples as replayable JSON.

A case file (format 1) is fully self-contained:

.. code-block:: json

    {
      "format": 1,
      "name": "census-component-edges",
      "description": "why this case exists / what bug it pinned",
      "config": {"algorithm": "match", "eta": 0.5, "num_workers": 2,
                 "seed": 0, "backend": "sequential", "use_index": true},
      "graph": {"name": ..., "nodes": [...], "edges": [...]},
      "rules": [{"name": ..., "consequent_label": ...,
                 "antecedent": {"nodes": {...}, "edges": [[s, t, l], ...],
                                "x": ..., "y": ...}}],
      "batches": [[{"kind": ...}, ...], ...],
      "signature": [minhash ints],
      "divergence": {"batch_index": ..., "component": ..., "detail": ...}
    }

``graph`` uses :func:`repro.graph.io.graph_to_dict`; ops use
:meth:`UpdateOp.as_dict` (the serve-layer wire form).  The recorded
``divergence`` documents what the case *used to* fail with — replay runs
the differential oracle from scratch and must come back clean.

The pytest collector ``tests/test_regressions.py`` replays every
``tests/regressions/*.json`` forever; :func:`write_case` is how the storm
harness adds new ones (deduplicated by MinHash signature against the cases
already present).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.graph.graph import Graph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern
from repro.stream.updates import UpdateBatch, UpdateOp
from repro.testing.distill import DistilledCase, is_duplicate, minhash_signature
from repro.testing.oracle import DifferentialOracle, Divergence

FORMAT = 1

#: Default on-repo location of the replayed-forever corpus.
CASES_DIR = Path(__file__).resolve().parents[3] / "tests" / "regressions"


# ----------------------------------------------------------------------
# rule (de)serialization
# ----------------------------------------------------------------------
def pattern_to_dict(pattern: Pattern) -> dict:
    return {
        "nodes": {str(node): pattern.label(node) for node in sorted(pattern.nodes(), key=str)},
        "edges": [
            [edge.source, edge.target, edge.label]
            for edge in pattern.edges()
        ],
        "x": pattern.x,
        "y": pattern.y,
    }


def pattern_from_dict(document: dict) -> Pattern:
    return Pattern(
        nodes=dict(document["nodes"]),
        edges=[tuple(edge) for edge in document["edges"]],
        x=document["x"],
        y=document.get("y"),
    )


def rule_to_dict(rule: GPAR) -> dict:
    return {
        "name": rule.name,
        "consequent_label": rule.consequent_label,
        "antecedent": pattern_to_dict(rule.antecedent),
    }


def rule_from_dict(document: dict) -> GPAR:
    # validate=False: regression rules deliberately include the shapes the
    # strict constructor rejects (free nodes, disconnected components).
    return GPAR(
        pattern_from_dict(document["antecedent"]),
        consequent_label=document["consequent_label"],
        name=document.get("name"),
        validate=False,
    )


def ops_to_dicts(batch: UpdateBatch) -> list[dict]:
    return [op.as_dict() for op in batch]


def op_from_dict(document: dict) -> UpdateOp:
    kind = document["kind"]
    if kind == "add_node":
        return UpdateOp.add_node(document["node"], document["label"], document.get("attrs"))
    if kind == "remove_node":
        return UpdateOp.remove_node(document["node"])
    if kind == "relabel_node":
        return UpdateOp.relabel_node(document["node"], document["label"])
    if kind == "add_edge":
        return UpdateOp.add_edge(document["source"], document["target"], document["label"])
    if kind == "remove_edge":
        return UpdateOp.remove_edge(document["source"], document["target"], document["label"])
    raise ValueError(f"unknown op kind {kind!r}")


# ----------------------------------------------------------------------
# the case object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegressionCase:
    """One replayable counterexample."""

    name: str
    description: str
    graph: Graph
    rules: tuple[GPAR, ...]
    batches: tuple[UpdateBatch, ...]
    config: dict = field(default_factory=dict)
    signature: tuple[int, ...] = ()
    divergence: dict = field(default_factory=dict)

    def replay(self) -> Divergence | None:
        """Re-run the differential oracle; ``None`` means the case passes."""
        config = dict(self.config)
        oracle = DifferentialOracle(
            self.rules,
            algorithm=config.get("algorithm", "match"),
            eta=config.get("eta", 0.5),
            num_workers=config.get("num_workers", 2),
            seed=config.get("seed", 0),
            backends=(config.get("backend", "sequential"),),
            index_modes=(config.get("use_index", True),),
        )
        return oracle.check(self.graph, list(self.batches))


def case_to_dict(case: RegressionCase) -> dict:
    return {
        "format": FORMAT,
        "name": case.name,
        "description": case.description,
        "config": dict(case.config),
        "graph": graph_to_dict(case.graph),
        "rules": [rule_to_dict(rule) for rule in case.rules],
        "batches": [ops_to_dicts(batch) for batch in case.batches],
        "signature": list(case.signature),
        "divergence": dict(case.divergence),
    }


def case_from_dict(document: dict) -> RegressionCase:
    if document.get("format") != FORMAT:
        raise ValueError(
            f"unsupported regression case format {document.get('format')!r}"
        )
    batches = tuple(
        UpdateBatch(ops=tuple(op_from_dict(op) for op in ops))
        for ops in document["batches"]
    )
    return RegressionCase(
        name=document["name"],
        description=document.get("description", ""),
        graph=graph_from_dict(document["graph"]),
        rules=tuple(rule_from_dict(rule) for rule in document["rules"]),
        batches=batches,
        config=dict(document.get("config", {})),
        signature=tuple(document.get("signature", ())),
        divergence=dict(document.get("divergence", {})),
    )


def load_case(path: Path | str) -> RegressionCase:
    with open(path, "r", encoding="utf-8") as handle:
        return case_from_dict(json.load(handle))


def iter_case_paths(directory: Path | str = CASES_DIR) -> Iterator[Path]:
    directory = Path(directory)
    if not directory.is_dir():
        return
    yield from sorted(directory.glob("*.json"))


def write_case(case: RegressionCase, directory: Path | str = CASES_DIR) -> Path:
    """Serialize *case* to ``<directory>/<name>.json`` (pretty, sorted)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    path.write_text(
        json.dumps(case_to_dict(case), indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def from_distilled(
    name: str,
    description: str,
    distilled: DistilledCase,
    rules: Sequence[GPAR],
    config: dict,
) -> RegressionCase:
    """Package a :class:`~repro.testing.distill.DistilledCase` for the corpus."""
    divergence = distilled.divergence
    recorded = (
        {
            "batch_index": divergence.batch_index,
            "component": divergence.component,
            "backend": divergence.backend,
            "use_index": divergence.use_index,
            "detail": divergence.detail,
        }
        if isinstance(divergence, Divergence)
        else {"detail": str(divergence)}
    )
    signature = distilled.signature or minhash_signature(distilled.batches)
    return RegressionCase(
        name=name,
        description=description,
        graph=distilled.graph,
        rules=tuple(rules),
        batches=distilled.batches,
        config=dict(config),
        signature=signature,
        divergence=recorded,
    )


def known_signatures(directory: Path | str = CASES_DIR) -> list[tuple[int, ...]]:
    """MinHash signatures of every case already in the corpus."""
    return [tuple(load_case(path).signature) for path in iter_case_paths(directory)]


def is_known(
    signature: Sequence[int], directory: Path | str = CASES_DIR
) -> bool:
    """Whether an equivalent counterexample is already committed."""
    return is_duplicate(signature, known_signatures(directory))


__all__ = [
    "CASES_DIR",
    "FORMAT",
    "RegressionCase",
    "case_from_dict",
    "case_to_dict",
    "from_distilled",
    "is_known",
    "iter_case_paths",
    "known_signatures",
    "load_case",
    "op_from_dict",
    "pattern_from_dict",
    "pattern_to_dict",
    "rule_from_dict",
    "rule_to_dict",
    "write_case",
]
