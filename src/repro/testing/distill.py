"""Counterexample distillation: shrink a failing churn run to its essence.

A storm run that diverges hands the harness a ``(graph, batches)`` pair far
too big to debug or to keep as a regression case.  :func:`distill` applies
greedy delta debugging against a caller-supplied failure predicate
(typically :meth:`DifferentialOracle.check` narrowed to the failing
combination):

1. **drop whole batches** — greedy one-at-a-time passes to a fixpoint;
2. **shrink within batches** — ddmin-style chunk removal over each
   surviving batch's operation list (halving granularity, which subsumes
   "split the batch and keep one half");
3. **peel the seed graph** — first restrict to the ball around the nodes
   the remaining ops touch, then greedily peel chunks of the untouched
   remainder.

Every candidate reduction is re-validated against the predicate, so the
result provably still fails and is usually a handful of ops on a few dozen
nodes.  :func:`minhash_signature` fingerprints the distilled op stream so
near-duplicate counterexamples (the same bug found through different
storms) are deduplicated before anything is written to
``tests/regressions/``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.graph.graph import Graph
from repro.graph.neighborhood import multi_source_ball
from repro.stream.updates import UpdateBatch, UpdateOp

NodeId = Hashable

#: Hash functions per MinHash signature; 48 keeps the Jaccard estimate
#: within ~0.15 at the 0.8 similarity threshold.
MINHASH_HASHES = 48
#: Estimated-Jaccard threshold above which two cases count as duplicates.
DUPLICATE_THRESHOLD = 0.8

FailurePredicate = Callable[[Graph, Sequence[UpdateBatch]], object]


@dataclass(frozen=True)
class DistilledCase:
    """A minimal reproducing counterexample."""

    graph: Graph
    batches: tuple[UpdateBatch, ...]
    divergence: object  #: the predicate's verdict on the distilled run
    signature: tuple[int, ...]  #: MinHash over the op stream (dedup key)

    @property
    def num_ops(self) -> int:
        return sum(len(batch) for batch in self.batches)


# ----------------------------------------------------------------------
# MinHash over op streams
# ----------------------------------------------------------------------
def op_token(op: UpdateOp) -> str:
    """Canonical token for one operation (stable across processes)."""
    return "|".join(
        str(part)
        for part in (op.kind, op.node, op.source, op.target, op.label, op.attrs)
    )


def minhash_signature(
    batches: Sequence[UpdateBatch], num_hashes: int = MINHASH_HASHES
) -> tuple[int, ...]:
    """MinHash signature of the batches' operation token set.

    Uses ``blake2b`` with the hash index as key, so signatures are
    deterministic across interpreter runs (unlike builtin ``hash``) and two
    runs sharing most of their ops get mostly-equal minima.
    """
    tokens = {op_token(op) for batch in batches for op in batch}
    if not tokens:
        return tuple([0] * num_hashes)
    signature = []
    for index in range(num_hashes):
        key = index.to_bytes(8, "little")
        signature.append(
            min(
                int.from_bytes(
                    hashlib.blake2b(token.encode(), digest_size=8, key=key).digest(),
                    "little",
                )
                for token in tokens
            )
        )
    return tuple(signature)


def estimated_similarity(a: Sequence[int], b: Sequence[int]) -> float:
    """MinHash estimate of the Jaccard similarity of two op streams."""
    if not a or len(a) != len(b):
        return 0.0
    return sum(1 for x, y in zip(a, b) if x == y) / len(a)


def is_duplicate(
    signature: Sequence[int],
    seen: Sequence[Sequence[int]],
    threshold: float = DUPLICATE_THRESHOLD,
) -> bool:
    """Whether *signature* is a near-duplicate of any signature in *seen*."""
    return any(estimated_similarity(signature, other) >= threshold for other in seen)


# ----------------------------------------------------------------------
# greedy delta debugging
# ----------------------------------------------------------------------
def _still_fails(check: FailurePredicate, graph: Graph, batches) -> object:
    return check(graph, list(batches))


def _drop_batches(check, graph, batches: list[UpdateBatch], verdict):
    """Greedy batch dropping to a fixpoint."""
    changed = True
    while changed and len(batches) > 0:
        changed = False
        index = 0
        while index < len(batches):
            candidate = batches[:index] + batches[index + 1 :]
            result = _still_fails(check, graph, candidate)
            if result is not None:
                batches, verdict = candidate, result
                changed = True
            else:
                index += 1
    return batches, verdict


def _shrink_batch_ops(check, graph, batches: list[UpdateBatch], verdict):
    """ddmin-style chunk removal inside each surviving batch."""
    for position in range(len(batches)):
        ops = list(batches[position].ops)
        chunk = max(1, len(ops) // 2)
        while chunk >= 1 and len(ops) > 1:
            shrunk = False
            start = 0
            while start < len(ops):
                candidate_ops = ops[:start] + ops[start + chunk :]
                candidate = list(batches)
                if candidate_ops:
                    candidate[position] = UpdateBatch(ops=tuple(candidate_ops))
                else:
                    candidate = candidate[:position] + candidate[position + 1 :]
                result = _still_fails(check, graph, candidate)
                if result is not None:
                    ops = candidate_ops
                    batches, verdict = candidate, result
                    shrunk = True
                    if not candidate_ops:
                        return _shrink_batch_ops(check, graph, batches, verdict)
                else:
                    start += chunk
            if not shrunk:
                chunk //= 2
    return batches, verdict


def _touched_nodes(batches) -> set:
    touched = set()
    for batch in batches:
        for op in batch:
            for node in (op.node, op.source, op.target):
                if node is not None:
                    touched.add(node)
    return touched


def _induced_subgraph(graph: Graph, keep: set) -> Graph:
    peeled = Graph(name=f"{graph.name}-peeled")
    for node, label in sorted(graph.node_items(), key=lambda item: str(item[0])):
        if node in keep:
            peeled.add_node(node, label, graph.node_attrs(node) or None)
    for edge in sorted(
        graph.edges(), key=lambda e: (str(e.source), e.label, str(e.target))
    ):
        if edge.source in keep and edge.target in keep:
            peeled.add_edge(edge.source, edge.target, edge.label)
    return peeled


def _peel_graph(check, graph: Graph, batches, verdict, radius: int):
    """Shrink the seed graph while the reduced run still fails.

    First tries one cut down to the ball around the ops' touched nodes
    (radius + 1 hops keeps every region any maintained layer could consult
    about them), then greedily peels chunks of the remaining untouched
    nodes with halving chunk sizes.
    """
    touched = _touched_nodes(batches) & set(graph.nodes())
    if touched:
        keep = multi_source_ball(graph, sorted(touched, key=str), radius + 1)
        if len(keep) < graph.num_nodes:
            candidate = _induced_subgraph(graph, set(keep))
            result = _still_fails(check, candidate, batches)
            if result is not None:
                graph, verdict = candidate, result
    removable = sorted(set(graph.nodes()) - _touched_nodes(batches), key=str)
    chunk = max(1, len(removable) // 2)
    while chunk >= 1 and removable:
        peeled_any = False
        start = 0
        while start < len(removable):
            drop = set(removable[start : start + chunk])
            candidate = _induced_subgraph(graph, set(graph.nodes()) - drop)
            result = _still_fails(check, candidate, batches)
            if result is not None:
                graph, verdict = candidate, result
                removable = removable[:start] + removable[start + chunk :]
                peeled_any = True
            else:
                start += chunk
        if not peeled_any:
            chunk //= 2
    return graph, verdict


def distill(
    graph: Graph,
    batches: Sequence[UpdateBatch],
    check: FailurePredicate,
    radius: int = 2,
) -> DistilledCase:
    """Shrink ``(graph, batches)`` to a minimal run still failing *check*.

    *check* returns a truthy verdict (e.g. a
    :class:`~repro.testing.oracle.Divergence`) when the run fails and
    ``None`` when it passes; the input run must fail.  *radius* bounds the
    locality any maintained layer consults around a touched node (use the
    identifier's ``max_radius``).
    """
    verdict = _still_fails(check, graph, batches)
    if verdict is None:
        raise ValueError("distill() needs a failing run; check() returned None")
    work = list(batches)
    work, verdict = _drop_batches(check, graph, work, verdict)
    work, verdict = _shrink_batch_ops(check, graph, work, verdict)
    work, verdict = _drop_batches(check, graph, work, verdict)
    graph, verdict = _peel_graph(check, graph, work, verdict, radius)
    return DistilledCase(
        graph=graph,
        batches=tuple(work),
        divergence=verdict,
        signature=minhash_signature(work),
    )


__all__ = [
    "DistilledCase",
    "distill",
    "estimated_similarity",
    "is_duplicate",
    "minhash_signature",
    "op_token",
    "MINHASH_HASHES",
    "DUPLICATE_THRESHOLD",
]
