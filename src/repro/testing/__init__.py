"""Adversarial testing harness: storms, differential oracle, distillation.

The streaming subsystem's equivalence tests replay *uniform* random churn;
this package supplies the adversarial half (see ``docs/adversarial.md``):

* :mod:`repro.testing.storms` — correlated churn generators registered in
  :data:`STORM_FAMILIES`;
* :mod:`repro.testing.oracle` — :class:`DifferentialOracle`, which runs
  maintained streaming state against fresh recomputes after every batch
  and reports the first :class:`Divergence` per configuration, plus
  :func:`multi_tenant_check`, the cross-Σ oracle asserting shared-core
  tenant projections stay byte-identical to independent runs;
* :mod:`repro.testing.distill` — greedy delta-debugging
  (:func:`distill`) plus MinHash dedup of counterexamples;
* :mod:`repro.testing.cases` — the ``tests/regressions/*.json`` corpus:
  distilled counterexamples replayed forever by the pytest collector.
"""

from repro.testing.cases import (
    CASES_DIR,
    RegressionCase,
    from_distilled,
    is_known,
    iter_case_paths,
    load_case,
    write_case,
)
from repro.testing.distill import (
    DistilledCase,
    distill,
    estimated_similarity,
    is_duplicate,
    minhash_signature,
)
from repro.testing.oracle import (
    DifferentialOracle,
    Divergence,
    OracleReport,
    TenantDivergence,
    eip_fingerprint,
    multi_tenant_check,
)
from repro.testing.storms import (
    STORM_FAMILIES,
    ball_burst_storm,
    correlated_deletion_storm,
    hub_churn_storm,
    label_flip_storm,
)

__all__ = [
    "CASES_DIR",
    "DifferentialOracle",
    "DistilledCase",
    "Divergence",
    "OracleReport",
    "RegressionCase",
    "STORM_FAMILIES",
    "TenantDivergence",
    "ball_burst_storm",
    "correlated_deletion_storm",
    "distill",
    "eip_fingerprint",
    "estimated_similarity",
    "from_distilled",
    "hub_churn_storm",
    "is_duplicate",
    "is_known",
    "iter_case_paths",
    "label_flip_storm",
    "load_case",
    "minhash_signature",
    "multi_tenant_check",
    "write_case",
]
