"""Minimal HTTP/1.1 plumbing for :mod:`repro.serve`.

The runtime dependency set of this repository is intentionally empty, so the
service speaks just enough HTTP itself on top of ``asyncio`` streams:
persistent connections with HTTP/1.1 keep-alive semantics (HTTP/1.0 peers
and ``Connection: close`` requests still get one response per connection),
JSON bodies bounded by ``Content-Length``, and a small regex router with
``{name}`` path parameters.  This is a serving boundary for the
reproduction — not a general-purpose web server — and the subset below is
exactly what the endpoint contract in ``docs/serving.md`` needs.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import ReproError

MAX_BODY_BYTES = 32 * 1024 * 1024  # inline graph documents can be large
MAX_HEADER_LINES = 100

_STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ProtocolError(ReproError):
    """The client sent something that is not the HTTP subset we speak."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response.

        HTTP/1.1 defaults to persistent connections unless the client sent
        ``Connection: close``; HTTP/1.0 closes unless the client opted in
        with ``Connection: keep-alive``.
        """
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Any:
        """The request body decoded as JSON (``None`` when empty)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    def query_int(self, name: str, default: int | None = None) -> int | None:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ProtocolError(f"query parameter {name!r} must be an integer, got {raw!r}") from None

    def query_float(self, name: str, default: float | None = None) -> float | None:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise ProtocolError(f"query parameter {name!r} must be a number, got {raw!r}") from None


@dataclass
class Response:
    """One response: JSON via ``payload`` (the default) or plain ``text``.

    Every session endpoint speaks JSON; ``text`` exists for the Prometheus
    exposition of ``GET /metrics``, whose content type the scrape protocol
    fixes (``content_type`` overrides the default of either body form).
    """

    status: int = 200
    payload: Any = None
    headers: dict[str, str] = field(default_factory=dict)
    text: str | None = None
    content_type: str | None = None

    def encode(self, keep_alive: bool = False) -> bytes:
        body = b""
        default_type = "application/json"
        if self.text is not None:
            body = self.text.encode("utf-8")
            default_type = "text/plain; charset=utf-8"
        elif self.payload is not None:
            body = json.dumps(self.payload, sort_keys=True, default=str).encode("utf-8")
        phrase = _STATUS_PHRASES.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {phrase}",
            f"Content-Type: {self.content_type or default_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request from *reader*; ``None`` when the peer closed first."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {request_line!r}")
    method, target, version = parts

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        text = line.decode("latin-1").strip()
        name, _, value = text.partition(":")
        if not _:
            raise ProtocolError(f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many header lines")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(f"malformed Content-Length {length_text!r}") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
        if length:
            body = await reader.readexactly(length)

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
        version=version.upper(),
    )


Handler = Callable[..., Awaitable[Response]]

_PARAM_PATTERN = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile_route(template: str) -> re.Pattern:
    """``/sessions/{id}/answer`` → anchored regex with named groups."""
    pattern = _PARAM_PATTERN.sub(lambda match: f"(?P<{match.group(1)}>[^/]+)", re.escape(template).replace(r"\{", "{").replace(r"\}", "}"))
    return re.compile(f"^{pattern}$")


class Router:
    """Method + path-template dispatch with ``{name}`` parameters."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, str, re.Pattern, Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        self._routes.append((method.upper(), template, _compile_route(template), handler))

    def resolve(self, method: str, path: str) -> tuple[Handler, dict[str, str], str]:
        """The matching (handler, path params, route template).

        The template (``/sessions/{session_id}/answer``, not the concrete
        path) is what request metrics label by, keeping cardinality bounded.
        """
        allowed: list[str] = []
        for route_method, template, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            if route_method != method:
                allowed.append(route_method)
                continue
            return handler, match.groupdict(), template
        if allowed:
            raise RouteError(405, f"{method} not allowed on {path} (try {sorted(set(allowed))})")
        raise RouteError(404, f"no route for {path}")


class RouteError(ReproError):
    """Routing failure carrying the HTTP status it should map to."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
