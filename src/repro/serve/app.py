"""EIP-as-a-service: the HTTP application over :mod:`repro.api` sessions.

Endpoints (full contract in ``docs/serving.md``):

========  =================================  =========================================
method    path                               purpose
========  =================================  =========================================
POST      ``/sessions``                      load graph + Σ, start a resident session
GET       ``/sessions``                      list live sessions
GET       ``/sessions/{id}``                 one session's status
GET       ``/sessions/{id}/answer``          paginated answer pinned to one version
POST      ``/sessions/{id}/updates``         apply an UpdateBatch as one tick
GET       ``/sessions/{id}/subscribe``       long-poll per-rule match-set deltas
DELETE    ``/sessions/{id}``                 close a session
GET       ``/healthz``                       liveness
========  =================================  =========================================

Concurrency model: the event loop only parses/serializes HTTP; every
blocking operation (session construction, ``apply``, pagination, long-poll
waits) runs on a thread pool via ``run_in_executor``.  Updates to one
session serialize on a per-session ``asyncio.Lock`` (and
:meth:`repro.api.Session.apply` serializes again underneath); reads go
straight to the session's immutable snapshots and never wait on a writer —
every response body carries the ``graph_version`` it reflects.
Connections are persistent (HTTP/1.1 keep-alive, see
:mod:`repro.serve.http`): one task serves requests off the same socket
until the client closes, asks for ``Connection: close`` or idles past
:data:`KEEPALIVE_IDLE_TIMEOUT`.

Multi-tenancy: ``POST /sessions`` bodies naming a ``graph_path`` attach to
one :class:`repro.api.SharedSessionCore` per distinct (path, predicate,
config) — the graph loads and partitions once, each tenant's Σ admits
warm against the resident canonical-antecedent pool, and one update tick
fans out to every tenant's subscription feed (docs/multitenant.md).
Sessions created from inline ``graph`` documents stay private.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import api
from repro.exceptions import ReproError, StreamError
from repro.datasets import generate_gpars
from repro.graph.io import graph_from_dict, load_graph_json
from repro.identification.eip import EIPConfig
from repro.obs.registry import registry
from repro.serve.http import (
    ProtocolError,
    Request,
    Response,
    RouteError,
    Router,
    read_request,
)
from repro.stream.config import StreamConfig
from repro.stream.updates import OP_KINDS, UpdateBatch, UpdateOp

DEFAULT_SUBSCRIBE_TIMEOUT = 30.0
MAX_SUBSCRIBE_TIMEOUT = 120.0
DEFAULT_PAGE_LIMIT = 100
#: How long a persistent connection may sit idle between requests before
#: the server closes it (long-poll waits happen inside dispatch, not here,
#: so they are not bounded by this).
KEEPALIVE_IDLE_TIMEOUT = 60.0

#: Structured access log: one JSON line per request (method, route template,
#: status, duration).  Silent unless the embedding process configures the
#: logger — ``repro serve`` wires it to stderr.
ACCESS_LOGGER = logging.getLogger("repro.serve.access")


def ops_from_json(documents: list) -> UpdateBatch:
    """Decode a JSON ops array into an :class:`UpdateBatch`.

    Each op document is ``{"kind": <kind>, ...}`` with the fields of the
    matching :class:`UpdateOp` constructor — ``node``/``label``/``attrs``
    for node ops, ``source``/``target``/``label`` for edge ops.
    """
    if not isinstance(documents, list):
        raise StreamError(f"'ops' must be a list of op objects, got {type(documents).__name__}")
    ops = []
    for position, doc in enumerate(documents):
        if not isinstance(doc, dict):
            raise StreamError(f"ops[{position}] must be an object, got {type(doc).__name__}")
        kind = doc.get("kind")
        try:
            if kind == "add_node":
                ops.append(UpdateOp.add_node(doc["node"], doc["label"], doc.get("attrs")))
            elif kind == "remove_node":
                ops.append(UpdateOp.remove_node(doc["node"]))
            elif kind == "relabel_node":
                ops.append(UpdateOp.relabel_node(doc["node"], doc["label"]))
            elif kind == "add_edge":
                ops.append(UpdateOp.add_edge(doc["source"], doc["target"], doc["label"]))
            elif kind == "remove_edge":
                ops.append(UpdateOp.remove_edge(doc["source"], doc["target"], doc["label"]))
            else:
                raise StreamError(
                    f"ops[{position}]: unknown kind {kind!r}; expected one of {sorted(OP_KINDS)}"
                )
        except KeyError as exc:
            raise StreamError(f"ops[{position}] ({kind}) is missing field {exc.args[0]!r}") from None
    return UpdateBatch.of(*ops)


@dataclass
class SessionHandle:
    """One hosted session plus its serving bookkeeping.

    Tenant sessions on a shared core carry their ``tenant`` name, the
    ``core_key`` of the :class:`CoreHandle` they attached to, and the
    :class:`~repro.stream.TenantAdmission` record of what the admission
    cost; their ``update_lock`` *is* the core's, so ticks and tenant
    lifecycle serialize across all members.
    """

    session: api.Session
    name: str
    algorithm: str
    update_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    batches_applied: int = 0
    #: Long-poll subscribe requests currently waiting on this session
    #: (touched only on the event-loop thread, like the registry itself).
    subscribers: int = 0
    tenant: str | None = None
    core_key: str | None = None
    admission: object | None = None

    def resident_nodes(self) -> int:
        """Total nodes resident across the session's fragments."""
        return self.session.identifier.manager.resident_summary()["resident_nodes"]

    def oldest_retained_version(self) -> int:
        """Oldest snapshot version a paginating/late subscriber can still read."""
        return self.session.oldest_retained_version

    def info(self, session_id: str) -> dict:
        result = self.session.result
        document = {
            "session": session_id,
            "graph": self.name,
            "algorithm": self.algorithm,
            "graph_version": self.session.graph_version,
            "rules": [rule.name for rule in self.session.rules],
            "identified": len(result.identified),
            "accepted_rules": len(result.accepted_rules),
            "batches_applied": self.batches_applied,
            "tenant": self.tenant,
            "shared_core": self.core_key is not None,
        }
        if self.admission is not None:
            document["admission"] = {
                "cold_start": self.admission.cold_start,
                "novel_rules": self.admission.novel_rules,
                "shared_rules": self.admission.shared_rules,
                "shared_prefix_hits": self.admission.shared_prefix_hits,
                "backfill_centers": self.admission.backfill_centers,
            }
        return document


@dataclass
class CoreHandle:
    """One shared multi-tenant core plus the sessions attached to it."""

    key: str
    graph_path: str
    core: api.SharedSessionCore | None = None
    update_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: session_id → tenant name (touched only on the event-loop thread).
    members: dict[str, str] = field(default_factory=dict)


class ReproService:
    """The application: routes, session registry and executor."""

    def __init__(self, executor_workers: int = 8) -> None:
        self._sessions: dict[str, SessionHandle] = {}
        self._cores: dict[str, CoreHandle] = {}
        self._ids = itertools.count(1)
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )
        self.router = Router()
        self.router.add("GET", "/healthz", self._healthz)
        self.router.add("GET", "/metrics", self._metrics)
        self.router.add("POST", "/sessions", self._create_session)
        self.router.add("GET", "/sessions", self._list_sessions)
        self.router.add("GET", "/sessions/{session_id}", self._session_info)
        self.router.add("DELETE", "/sessions/{session_id}", self._delete_session)
        self.router.add("GET", "/sessions/{session_id}/answer", self._answer)
        self.router.add("POST", "/sessions/{session_id}/updates", self._updates)
        self.router.add("GET", "/sessions/{session_id}/subscribe", self._subscribe)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _offload(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn, *args)

    def _handle(self, session_id: str) -> SessionHandle:
        handle = self._sessions.get(session_id)
        if handle is None:
            raise RouteError(404, f"no session {session_id!r}")
        return handle

    async def dispatch(self, request: Request) -> Response:
        """Route one request, mapping library errors onto statuses.

        Every request — matched or not — lands in the
        ``repro_http_requests_total``/``repro_http_request_seconds`` series
        (labelled by route *template*, so cardinality stays bounded) and
        emits one JSON access-log line on ``repro.serve.access``.
        """
        started = time.perf_counter()
        route = "unmatched"
        try:
            handler, params, route = self.router.resolve(request.method, request.path)
            response = await handler(request, **params)
        except RouteError as exc:
            response = Response(exc.status, {"error": str(exc)})
        except api.SnapshotExpired as exc:
            response = Response(
                410,
                {
                    "error": str(exc),
                    "resync": True,
                    "oldest_retained": exc.oldest_retained,
                },
            )
        except ProtocolError as exc:
            response = Response(400, {"error": str(exc)})
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            response = Response(400, {"error": f"{type(exc).__name__}: {exc}"})
        self._observe_request(
            request, route, response.status, time.perf_counter() - started
        )
        return response

    def _observe_request(
        self, request: Request, route: str, status: int, elapsed: float
    ) -> None:
        metrics = registry()
        metrics.inc(
            "repro_http_requests_total",
            help="HTTP requests served",
            method=request.method,
            route=route,
            status=str(status),
        )
        metrics.observe(
            "repro_http_request_seconds",
            elapsed,
            help="HTTP request latency",
            method=request.method,
            route=route,
        )
        if ACCESS_LOGGER.isEnabledFor(logging.INFO):
            ACCESS_LOGGER.info(
                json.dumps(
                    {
                        "method": request.method,
                        "path": request.path,
                        "route": route,
                        "status": status,
                        "duration_ms": round(elapsed * 1000, 3),
                    },
                    sort_keys=True,
                )
            )

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests off one persistent connection until it ends.

        HTTP/1.1 keep-alive: the loop keeps reading requests from the same
        socket until the peer closes, sends ``Connection: close``, idles
        past :data:`KEEPALIVE_IDLE_TIMEOUT`, or breaks the protocol (after
        a parse error the connection state is unknowable, so it closes).
        """
        served = 0
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), timeout=KEEPALIVE_IDLE_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    break
                except ProtocolError as exc:
                    writer.write(Response(400, {"error": str(exc)}).encode())
                    await writer.drain()
                    break
                if request is None:
                    break
                if served:
                    registry().inc(
                        "repro_http_keepalive_reuses_total",
                        help="Requests served on an already-open connection",
                    )
                response = await self.dispatch(request)
                keep_alive = request.keep_alive
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                served += 1
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown mid-request: end the task cleanly (a cancelled
            # connection task trips a noisy asyncio-streams done-callback).
            pass
        finally:
            writer.close()
            try:
                await asyncio.shield(writer.wait_closed())
            except (ConnectionError, asyncio.CancelledError):
                pass

    def shutdown(self) -> None:
        """Close every hosted session (evicting shared tenants) and the executor."""
        for handle in list(self._sessions.values()):
            handle.session.close()
        self._sessions.clear()
        self._cores.clear()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    async def _healthz(self, request: Request) -> Response:
        resident, oldest = await self._offload(self._residency_snapshot)
        return Response(
            200,
            {
                "ok": True,
                "sessions": len(self._sessions),
                "shared_cores": len(self._cores),
                "resident_nodes": resident,
                "oldest_retained_version": oldest,
            },
        )

    def _residency_snapshot(self) -> tuple[int, int | None]:
        """(total resident nodes, oldest retained version across sessions)."""
        resident = 0
        oldest: int | None = None
        for handle in list(self._sessions.values()):
            resident += handle.resident_nodes()
            version = handle.oldest_retained_version()
            oldest = version if oldest is None else min(oldest, version)
        return resident, oldest

    async def _metrics(self, request: Request) -> Response:
        await self._offload(self._refresh_gauges)
        return Response(
            200,
            text=registry().render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _refresh_gauges(self) -> None:
        """Re-derive the point-in-time gauges the exposition reports.

        Per-session families are cleared first so closed sessions do not
        linger as frozen series.
        """
        metrics = registry()
        sessions = sorted(self._sessions.items())
        metrics.set_gauge(
            "repro_sessions", len(sessions), help="Live hosted sessions"
        )
        metrics.set_gauge(
            "repro_shared_cores",
            len(self._cores),
            help="Shared multi-tenant cores currently resident",
        )
        for name in (
            "repro_session_batches_applied",
            "repro_session_graph_version",
            "repro_session_oldest_retained_version",
            "repro_session_resident_nodes",
            "repro_session_subscribers",
            "repro_tenant_rules",
            "repro_tenant_session_shared_rules",
            "repro_tenant_session_novel_rules",
            "repro_tenant_session_backfill_centers",
        ):
            metrics.clear(name)
        for session_id, handle in sessions:
            metrics.set_gauge(
                "repro_session_batches_applied",
                handle.batches_applied,
                help="Update batches applied to the session",
                session=session_id,
            )
            metrics.set_gauge(
                "repro_session_graph_version",
                handle.session.graph_version,
                help="Newest assembled snapshot version",
                session=session_id,
            )
            metrics.set_gauge(
                "repro_session_oldest_retained_version",
                handle.oldest_retained_version(),
                help="Oldest snapshot version still retained",
                session=session_id,
            )
            metrics.set_gauge(
                "repro_session_resident_nodes",
                handle.resident_nodes(),
                help="Nodes resident across the session's fragments",
                session=session_id,
            )
            metrics.set_gauge(
                "repro_session_subscribers",
                handle.subscribers,
                help="Long-poll subscribers currently waiting",
                session=session_id,
            )
            if handle.tenant is not None:
                metrics.set_gauge(
                    "repro_tenant_rules",
                    len(handle.session.rules),
                    help="Rules in the tenant's rule set",
                    session=session_id,
                    tenant=handle.tenant,
                )
            if handle.admission is not None:
                labels = {"session": session_id, "tenant": handle.tenant or ""}
                metrics.set_gauge(
                    "repro_tenant_session_shared_rules",
                    handle.admission.shared_rules,
                    help="Admitted rules served by a resident canonical antecedent",
                    **labels,
                )
                metrics.set_gauge(
                    "repro_tenant_session_novel_rules",
                    handle.admission.novel_rules,
                    help="Admitted rules that required a backfill verification",
                    **labels,
                )
                metrics.set_gauge(
                    "repro_tenant_session_backfill_centers",
                    handle.admission.backfill_centers,
                    help="Centres verified during this tenant's admission",
                    **labels,
                )

    async def _create_session(self, request: Request) -> Response:
        body = request.json()
        if not isinstance(body, dict):
            raise ProtocolError("POST /sessions expects a JSON object body")
        if ("graph" in body) == ("graph_path" in body):
            raise ProtocolError("provide exactly one of 'graph' (inline document) or 'graph_path'")
        if "predicate" not in body:
            raise ProtocolError("'predicate' (x_label:edge_label:y_label) is required")

        algorithm = body.get("algorithm", "match")
        history_limit = int(body.get("history_limit", api.SESSION_HISTORY_LIMIT))

        def build_config() -> EIPConfig:
            return EIPConfig(
                eta=float(body.get("eta", 1.0)),
                num_workers=int(body.get("workers", 4)),
                seed=int(body.get("seed", 0)),
                backend=body.get("backend", "sequential"),
                executor_workers=body.get("pool_size"),
                use_index=bool(body.get("use_index", True)),
                use_incremental=bool(body.get("use_incremental", True)),
            )

        def build_rules(graph):
            predicate = api.parse_predicate(body["predicate"])
            return generate_gpars(
                graph,
                predicate,
                count=int(body.get("rules", 6)),
                max_pattern_edges=int(body.get("max_edges", 4)),
                d=int(body.get("d", 2)),
                seed=int(body.get("seed", 0)),
            )

        session_id = f"s{next(self._ids)}"
        shared = "graph_path" in body and bool(body.get("share", True))
        if shared:
            handle = await self._create_shared(
                session_id, body, algorithm, history_limit, build_config, build_rules
            )
        else:

            def build() -> SessionHandle:
                if "graph" in body:
                    graph = graph_from_dict(body["graph"])
                else:
                    graph = load_graph_json(body["graph_path"])
                session = api.open_session(
                    graph,
                    build_rules(graph),
                    config=build_config(),
                    algorithm=algorithm,
                    stream_config=StreamConfig(**body.get("stream", {})),
                    history_limit=history_limit,
                    tenant=body.get("tenant"),
                )
                return SessionHandle(
                    session=session,
                    name=graph.name,
                    algorithm=algorithm,
                    tenant=session.tenant,
                )

            handle = await self._offload(build)
        self._sessions[session_id] = handle
        return Response(201, handle.info(session_id))

    async def _create_shared(
        self, session_id, body, algorithm, history_limit, build_config, build_rules
    ) -> SessionHandle:
        """Attach one tenant session to the shared core for its graph_path.

        The core key pins everything tenants of one core must agree on —
        the resident graph, predicate, algorithm and EIPConfig — while the
        rule-set parameters stay per-tenant.  Core construction and tenant
        admission serialize on the core's update lock, so admissions never
        race a tick's graph mutation.
        """
        graph_path = str(body["graph_path"])
        key = json.dumps(
            {
                "graph_path": graph_path,
                "predicate": body["predicate"],
                "algorithm": algorithm,
                "eta": float(body.get("eta", 1.0)),
                "workers": int(body.get("workers", 4)),
                "seed": int(body.get("seed", 0)),
                "backend": body.get("backend", "sequential"),
                "pool_size": body.get("pool_size"),
                "use_index": bool(body.get("use_index", True)),
                "use_incremental": bool(body.get("use_incremental", True)),
                "stream": body.get("stream", {}),
            },
            sort_keys=True,
        )
        core_handle = self._cores.get(key)
        if core_handle is None:
            core_handle = CoreHandle(key=key, graph_path=graph_path)
            self._cores[key] = core_handle
        tenant = str(body.get("tenant", session_id))

        def build_core() -> api.SharedSessionCore:
            graph = load_graph_json(graph_path)
            return api.open_shared_core(
                graph,
                config=build_config(),
                algorithm=algorithm,
                stream_config=StreamConfig(**body.get("stream", {})),
            )

        def admit(core: api.SharedSessionCore) -> SessionHandle:
            session = core.open_session(
                tenant, build_rules(core.graph), history_limit=history_limit
            )
            return SessionHandle(
                session=session,
                name=core.graph.name,
                algorithm=algorithm,
                update_lock=core_handle.update_lock,
                tenant=tenant,
                core_key=key,
                admission=session.admission,
            )

        async with core_handle.update_lock:
            try:
                if core_handle.core is None:
                    core_handle.core = await self._offload(build_core)
                handle = await self._offload(admit, core_handle.core)
            except BaseException:
                if not core_handle.members:
                    self._cores.pop(key, None)
                raise
            core_handle.members[session_id] = tenant
        return handle

    async def _list_sessions(self, request: Request) -> Response:
        return Response(
            200,
            {"sessions": [handle.info(sid) for sid, handle in sorted(self._sessions.items())]},
        )

    async def _session_info(self, request: Request, session_id: str) -> Response:
        return Response(200, self._handle(session_id).info(session_id))

    async def _delete_session(self, request: Request, session_id: str) -> Response:
        handle = self._handle(session_id)
        async with handle.update_lock:  # let an in-flight tick finish first
            del self._sessions[session_id]
            # On a shared core this evicts only this tenant; sibling
            # sessions (and the verdict state they read) stay live.
            await self._offload(handle.session.close)
            if handle.core_key is not None:
                core_handle = self._cores.get(handle.core_key)
                if core_handle is not None:
                    core_handle.members.pop(session_id, None)
                    if not core_handle.members:
                        self._cores.pop(handle.core_key, None)
        return Response(200, {"closed": session_id})

    async def _answer(self, request: Request, session_id: str) -> Response:
        handle = self._handle(session_id)
        cursor = request.query.get("cursor")
        limit = request.query_int("limit", DEFAULT_PAGE_LIMIT)
        page, version = await self._offload(handle.session.answer, cursor, limit)
        return Response(
            200,
            {
                "graph_version": version,
                "total": page.total,
                "entries": [entry.as_dict() for entry in page.entries],
                "next_cursor": page.next_cursor,
            },
        )

    async def _updates(self, request: Request, session_id: str) -> Response:
        handle = self._handle(session_id)
        body = request.json()
        if not isinstance(body, dict) or "ops" not in body:
            raise ProtocolError("POST .../updates expects {'ops': [...]}")
        batch = ops_from_json(body["ops"])
        async with handle.update_lock:
            report, delta = await self._offload(handle.session.apply, batch)
            handle.batches_applied += 1
            if handle.core_key is not None:
                # One tick advanced every tenant on the shared core.
                core_handle = self._cores.get(handle.core_key)
                members = core_handle.members if core_handle is not None else {}
                for member_id in members:
                    if member_id != session_id and member_id in self._sessions:
                        self._sessions[member_id].batches_applied += 1
        return Response(
            200,
            {
                "graph_version": delta.version,
                "base_version": delta.base_version,
                "report": {
                    "rechecked_centers": report.rechecked_centers,
                    "entered_nodes": report.entered_nodes,
                    "shed_nodes": report.shed_nodes,
                    "migrated_centers": report.migrated_centers,
                    "wall_time": round(report.wall_time, 6),
                },
                "delta": delta.as_dict(),
            },
        )

    async def _subscribe(self, request: Request, session_id: str) -> Response:
        handle = self._handle(session_id)
        rule = request.query.get("rule")
        if rule is not None and rule not in {r.name for r in handle.session.rules}:
            raise RouteError(404, f"session {session_id} has no rule {rule!r}")
        since = request.query_int("since")
        current = handle.session.graph_version
        if since is None:
            # First contact: hand the subscriber its baseline version.
            return Response(200, {"graph_version": current, "deltas": [], "resume_from": current})
        timeout = min(
            request.query_float("timeout", DEFAULT_SUBSCRIBE_TIMEOUT), MAX_SUBSCRIBE_TIMEOUT
        )
        if since >= current:
            handle.subscribers += 1
            try:
                ticked = await self._offload(
                    handle.session.wait_for_version, since, timeout
                )
            finally:
                handle.subscribers -= 1
            if not ticked:
                return Response(
                    200,
                    {"graph_version": handle.session.graph_version, "deltas": [], "resume_from": since},
                )
        deltas = handle.session.deltas(since)  # raises SnapshotExpired → 410
        documents = []
        for delta in deltas:
            doc = delta.as_dict()
            if rule is not None:
                doc["rules"] = {name: diff for name, diff in doc["rules"].items() if name == rule}
            documents.append(doc)
        resume_from = deltas[-1].version if deltas else since
        return Response(
            200,
            {
                "graph_version": handle.session.graph_version,
                "deltas": documents,
                "resume_from": resume_from,
            },
        )


class BackgroundServer:
    """The service on a daemon thread with its own event loop.

    Used by the tests, the serve bench family and ``repro serve`` alike:
    ``start()`` binds (port 0 → an ephemeral port), ``base_url`` is where
    clients point, ``stop()`` tears everything down.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, executor_workers: int = 8):
        self._host = host
        self._port = port
        self._executor_workers = executor_workers
        self.service: ReproService | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def base_url(self) -> str:
        if self.port is None:
            raise StreamError("server is not running (call start() first)")
        return f"http://{self._host}:{self.port}"

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise StreamError("server already started")
        self._thread = threading.Thread(target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise StreamError(f"server failed to start: {self._startup_error}")
        if self.port is None:
            raise StreamError("server did not come up within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.service = ReproService(executor_workers=self._executor_workers)

        async def serve() -> None:
            server = await asyncio.start_server(
                self.service.handle_connection, self._host, self._port
            )
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            async with server:
                await server.serve_forever()

        try:
            loop.run_until_complete(serve())
        except asyncio.CancelledError:
            pass
        except BaseException as exc:  # surface bind failures to start()
            self._startup_error = exc
            self._ready.set()
        finally:
            # Persistent (keep-alive) connection tasks were cancelled, not
            # awaited: give their cleanup blocks a chance to close sockets
            # before the loop goes away.
            pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
            if pending:
                loop.run_until_complete(asyncio.wait(pending, timeout=5))
            self.service.shutdown()
            loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        loop = self._loop

        def cancel_everything() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(cancel_everything)
        self._thread.join(timeout=10)
        self._loop = None
        self._thread = None
        self.port = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def run_foreground(host: str = "127.0.0.1", port: int = 8337, executor_workers: int = 8) -> int:
    """Run the service until interrupted (``repro serve`` / ``repro-serve``)."""
    server = BackgroundServer(host, port, executor_workers=executor_workers)
    server.start()
    print(f"serving EIP sessions on {server.base_url} (Ctrl-C to stop)")
    try:
        while server._thread is not None and server._thread.is_alive():
            server._thread.join(timeout=1)
        return 1
    except KeyboardInterrupt:
        print("stopping")
        server.stop()
        return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone ``repro-serve`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-serve", description="EIP-as-a-service over the streaming core"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8337)
    parser.add_argument(
        "--executor-workers",
        type=int,
        default=8,
        dest="executor_workers",
        help="thread pool size for blocking session work",
    )
    args = parser.parse_args(argv)
    return run_foreground(args.host, args.port, executor_workers=args.executor_workers)


if __name__ == "__main__":
    import sys

    sys.exit(main())
