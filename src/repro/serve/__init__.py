"""EIP-as-a-service: an asyncio HTTP boundary over :mod:`repro.api` sessions.

The paper frames EIP as a one-shot batch answer; :mod:`repro.stream` already
keeps that answer continuously correct under graph mutation, and this
package is the serving boundary that turns it into a product surface —
paginated, version-pinned answer reads, update ticks, and per-rule delta
subscriptions (see ``docs/serving.md``).

Dependency-free by design: the HTTP subset is hand-rolled on ``asyncio``
streams in :mod:`repro.serve.http`; the application and the embeddable
:class:`BackgroundServer` live in :mod:`repro.serve.app`.
"""

from repro.serve.app import BackgroundServer, ReproService, main, ops_from_json, run_foreground
from repro.serve.http import ProtocolError, Request, Response, RouteError, Router

__all__ = [
    "BackgroundServer",
    "ReproService",
    "main",
    "run_foreground",
    "ops_from_json",
    "ProtocolError",
    "Request",
    "Response",
    "RouteError",
    "Router",
]
