"""repro — reproduction of "Association Rules with Graph Patterns" (VLDB 2015).

The package implements graph-pattern association rules (GPARs) end to end:

* :mod:`repro.graph` — the property-graph substrate;
* :mod:`repro.pattern` — patterns, GPARs, automorphism/bisimulation;
* :mod:`repro.matching` — subgraph-isomorphism matchers;
* :mod:`repro.metrics` — topological support, LCWA Bayes-factor confidence,
  diversification objective;
* :mod:`repro.partition` / :mod:`repro.parallel` — fragmentation and the
  simulated coordinator/worker BSP runtime;
* :mod:`repro.mining` — the DMine diversified top-k miner (DMP);
* :mod:`repro.identification` — the Match/Matchc/disVF2 entity identifiers
  (EIP);
* :mod:`repro.stream` — streaming updates: batched graph mutations with
  delta-repaired indexes/match stores and a continuously-correct EIP
  answer (:class:`repro.stream.StreamingIdentifier`);
* :mod:`repro.datasets` — the paper's running examples plus synthetic and
  social-graph generators.

Quickstart
----------
>>> from repro.datasets import graph_g1, rule_r1
>>> from repro.metrics import evaluate_rule
>>> evaluation = evaluate_rule(graph_g1(), rule_r1())
>>> round(evaluation.confidence, 3)
0.6
"""

from repro.graph import Graph, GraphBuilder
from repro.pattern import GPAR, Pattern, PatternBuilder
from repro.matching import GuidedMatcher, VF2Matcher
from repro.metrics import evaluate_rule

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "Pattern",
    "PatternBuilder",
    "GPAR",
    "VF2Matcher",
    "GuidedMatcher",
    "evaluate_rule",
    "__version__",
]
