"""Benchmark workloads: graphs, predicates and rule sets.

The paper's graphs (Pokec, Google+, synthetic up to 100M edges) are replaced
by the laptop-scale substitutes documented in DESIGN.md.  Workloads are
cached per process so parameter sweeps re-use the same graph object.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets import (
    generate_gpars,
    googleplus_like,
    most_frequent_predicates,
    pokec_like,
    synthetic_graph,
)
from repro.graph.graph import Graph
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern

# Default benchmark scales (kept modest so the whole suite runs in minutes).
POKEC_USERS = 220
GOOGLEPLUS_USERS = 220
SYNTHETIC_NODES = 1200
SYNTHETIC_EDGES = 3600


def _planted_predicate(graph: Graph, edge_label: str, y_label: str) -> Pattern:
    for predicate in most_frequent_predicates(graph, top=30):
        edge = predicate.edges()[0]
        if edge.label == edge_label and predicate.label(predicate.y) == y_label:
            return predicate
    raise RuntimeError(
        f"planted predicate {edge_label}->{y_label} not found in {graph.name}"
    )


@lru_cache(maxsize=None)
def mining_workload(dataset: str, scale: int | None = None) -> tuple[Graph, Pattern]:
    """Graph + predicate for the DMine benchmarks (Fig. 5(a)–(g))."""
    if dataset == "pokec":
        graph = pokec_like(num_users=scale or POKEC_USERS, num_communities=8, seed=7)
        predicate = _planted_predicate(graph, "like_book", "personal development")
    elif dataset == "googleplus":
        graph = googleplus_like(num_users=scale or GOOGLEPLUS_USERS, num_circles=8, seed=7)
        predicate = _planted_predicate(graph, "major", "Computer Science")
    elif dataset == "synthetic":
        nodes = scale or SYNTHETIC_NODES
        graph = synthetic_graph(
            nodes, nodes * 3, num_node_labels=20, num_edge_labels=8, seed=7
        )
        predicate = most_frequent_predicates(graph, top=1)[0]
    else:
        raise ValueError(f"unknown dataset {dataset!r}")
    return graph, predicate


@lru_cache(maxsize=None)
def dense_mining_workload(scale: int = 4000) -> tuple[Graph, Pattern]:
    """Label-skewed synthetic workload where matching dominates the run.

    Fewer node labels than :func:`mining_workload` means bigger label
    buckets, more embeddings per centre and deeper levelwise search — the
    regime the incremental matcher (docs/incremental.md) is built for, and
    the one its bench-smoke family measures.
    """
    graph = synthetic_graph(
        scale, scale * 3, num_node_labels=8, num_edge_labels=4, seed=7
    )
    predicate = most_frequent_predicates(graph, top=1)[0]
    return graph, predicate


@lru_cache(maxsize=None)
def dense_eip_workload(
    scale: int = 4000, num_rules: int = 16
) -> tuple[Graph, tuple[GPAR, ...]]:
    """Rule set Σ over the dense workload (EIP half of the incremental smoke).

    Σ is *mined* by DMine rather than sampled: a mined rule set shares
    antecedent prefixes by construction (levelwise growth from one seed) and
    actually identifies entities on its own graph, so the smoke's
    cross-mode fingerprint gate exercises the identification outcome too —
    randomly sampled rules match nothing at this label density.
    """
    from repro.mining import DMineConfig, dmine

    graph, predicate = dense_mining_workload(scale)
    config = DMineConfig(
        k=num_rules,
        d=2,
        sigma=2,
        num_workers=2,
        max_edges=3,
        max_extensions_per_rule=8,
        max_rules_per_round=30,
    )
    result = dmine(graph, predicate, config)
    ranked = sorted(
        result.all_rules.items(), key=lambda item: (-item[1].support, item[0].name)
    )
    rules = [rule for rule, _info in ranked[:num_rules]]
    return graph, tuple(rules + [_census_split_variant(rules[0], predicate)])


@lru_cache(maxsize=None)
def storm_workload(scale: int = 400, num_rules: int = 3) -> tuple[Graph, tuple[GPAR, ...]]:
    """Graph + census-mixed Σ for the adversarial ``storm`` smoke family.

    Σ is *num_rules* generated connected rules over the graph's most
    frequent predicate, plus a free-node variant and an edge-carrying
    component variant of the first rule — one rule set that exercises the
    ball-local, label-census and component-census maintenance paths under
    every storm at once.
    """
    graph = synthetic_graph(
        scale, scale * 3, num_node_labels=6, num_edge_labels=4, seed=11
    )
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(
        graph, predicate, count=num_rules, max_pattern_edges=2, d=2, seed=3
    )
    base = rules[0]
    return graph, tuple(
        rules
        + [_census_split_variant(base, predicate), _edge_component_variant(base, predicate)]
    )


def _edge_component_variant(base: GPAR, predicate: Pattern) -> GPAR:
    """A twin of *base* whose antecedent gains a disconnected q-shaped
    component (two fresh nodes joined by the predicate's edge label) —
    maintained via the coordinator's component census."""
    expanded = base.antecedent.expanded()
    q_edge = predicate.edges()[0]
    antecedent = Pattern(
        nodes={
            **{node: expanded.label(node) for node in expanded.nodes()},
            "census_f1": predicate.label(predicate.x),
            "census_f2": predicate.label(predicate.y),
        },
        edges=list(expanded.edges()) + [("census_f1", "census_f2", q_edge.label)],
        x=expanded.x,
        y=expanded.y,
    )
    return GPAR(
        antecedent,
        consequent_label=base.consequent_label,
        name=f"{base.name}+component",
        validate=False,
    )


def _census_split_variant(base: GPAR, predicate: Pattern) -> GPAR:
    """A census-split twin of *base*: same antecedent plus an isolated node.

    The extra free node carries the predicate's y-label, so the antecedent
    splits into the (shared) connected-from-x part plus a global label
    census.  Its chain prefixes are exactly *base*'s, which keeps the
    prefix-trie sharing of ``MultiPatternMatcher`` live under census
    substitution — the ``incremental`` smoke gate asserts that via
    ``prefix_pool_hits``.
    """
    expanded = base.antecedent.expanded()
    free = "census_free"
    antecedent = Pattern(
        nodes={**{node: expanded.label(node) for node in expanded.nodes()},
               free: predicate.label(predicate.y)},
        edges=list(expanded.edges()),
        x=expanded.x,
        y=expanded.y,
    )
    return GPAR(
        antecedent,
        consequent_label=base.consequent_label,
        name=f"{base.name}+census",
        validate=False,
    )


@lru_cache(maxsize=None)
def stream_workload(
    scale: int = 4000, num_rules: int = 16
) -> tuple[Graph, tuple[GPAR, ...]]:
    """Graph + ball-local Σ for the streaming repair-vs-recompute smoke.

    Runs on the dense graph of :func:`dense_mining_workload`, but Σ is
    *sampled from the graph's structure* (:func:`generate_gpars`) rather
    than mined: DMine grows antecedents from the x side, so most mined
    antecedents carry an isolated (free) ``y`` node that is matched against
    the whole fragment's label index — exactly the non-ball-local shape a
    :class:`repro.stream.StreamingIdentifier` rejects, because no bounded
    ball around a centre can repair it.  Sampled rules are connected by
    construction.  Callers must ``copy()`` the graph before mutating it:
    workloads are cached per process and shared across benchmark families.
    """
    graph, predicate = dense_mining_workload(scale)
    rules = generate_gpars(
        graph, predicate, count=num_rules, max_pattern_edges=3, d=2, seed=11
    )
    return graph, tuple(rules)


@lru_cache(maxsize=None)
def synthetic_mining_workload(num_nodes: int, num_edges: int) -> tuple[Graph, Pattern]:
    """Synthetic-size-sweep variant of :func:`mining_workload` (Fig. 5(f))."""
    graph = synthetic_graph(
        num_nodes, num_edges, num_node_labels=20, num_edge_labels=8, seed=7
    )
    predicate = most_frequent_predicates(graph, top=1)[0]
    return graph, predicate


@lru_cache(maxsize=None)
def eip_workload(
    dataset: str,
    num_rules: int = 8,
    max_pattern_edges: int = 4,
    d: int = 2,
    scale: int | None = None,
    seed: int = 5,
) -> tuple[Graph, tuple[GPAR, ...]]:
    """Graph + rule set Σ for the Match benchmarks (Fig. 5(h)–(o))."""
    graph, predicate = mining_workload(dataset, scale)
    rules = generate_gpars(
        graph,
        predicate,
        count=num_rules,
        max_pattern_edges=max_pattern_edges,
        d=d,
        seed=seed,
    )
    return graph, tuple(rules)


@lru_cache(maxsize=None)
def synthetic_eip_workload(
    num_nodes: int,
    num_edges: int,
    num_rules: int = 8,
    seed: int = 5,
) -> tuple[Graph, tuple[GPAR, ...]]:
    """Synthetic-size-sweep variant of :func:`eip_workload` (Fig. 5(o))."""
    graph, predicate = synthetic_mining_workload(num_nodes, num_edges)
    rules = generate_gpars(
        graph, predicate, count=num_rules, max_pattern_edges=4, d=2, seed=seed
    )
    return graph, tuple(rules)
