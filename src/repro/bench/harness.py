"""Single-configuration runners used by the benchmark modules.

Each runner executes one (algorithm, workload, backend) configuration and
returns a measured row.  Rows carry both the *simulated* parallel time (the
deterministic max-worker-plus-coordinator model the paper's scaling figures
use) and the real wall-clock time; :func:`run_dmine_backends` /
:func:`run_eip_backends` run the same configuration on several execution
backends and annotate each row with its wall-clock speedup over the
sequential baseline, turning the fig5 scalability figures from simulations
into measurements.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.bench.reporting import wall_speedups
from repro.graph.graph import Graph
from repro.identification import identify_entities
from repro.mining import DMine, DMineConfig
from repro.pattern.canonical import canonical_code
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern


def _digest(parts: Iterable[str]) -> str:
    """Short content hash of a result, for cross-backend equivalence gates."""
    return hashlib.sha1("\n".join(sorted(parts)).encode()).hexdigest()[:12]


@dataclass(frozen=True)
class DMineRow:
    """One measured point of a DMine series."""

    dataset: str
    algorithm: str
    parameter: str
    value: object
    simulated_parallel_time: float
    wall_time: float
    rules_discovered: int
    candidates_generated: int
    objective: float
    backend: str = "sequential"
    wall_speedup: float | None = None
    # Content hash of the mined rule set (structure + support + confidence);
    # two rows with equal fingerprints mined *the same rules*, not merely
    # the same number of rules.
    fingerprint: str = ""

    def as_dict(self) -> dict:
        row = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.parameter: self.value,
            "backend": self.backend,
            "sim_parallel_s": round(self.simulated_parallel_time, 3),
            "wall_s": round(self.wall_time, 3),
            "rules": self.rules_discovered,
            "candidates": self.candidates_generated,
            "F(Lk)": round(self.objective, 3),
            "fingerprint": self.fingerprint,
        }
        if self.wall_speedup is not None:
            row["wall_speedup"] = round(self.wall_speedup, 2)
        return row


@dataclass(frozen=True)
class EIPRow:
    """One measured point of a Match/Matchc/disVF2 series."""

    dataset: str
    algorithm: str
    parameter: str
    value: object
    simulated_parallel_time: float
    wall_time: float
    identified: int
    candidates_examined: int
    backend: str = "sequential"
    wall_speedup: float | None = None
    # Content hash of the identified entities + per-rule confidences.
    fingerprint: str = ""

    def as_dict(self) -> dict:
        row = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.parameter: self.value,
            "backend": self.backend,
            "sim_parallel_s": round(self.simulated_parallel_time, 3),
            "wall_s": round(self.wall_time, 3),
            "identified": self.identified,
            "checks": self.candidates_examined,
            "fingerprint": self.fingerprint,
        }
        if self.wall_speedup is not None:
            row["wall_speedup"] = round(self.wall_speedup, 2)
        return row


# Benchmark-sized mining defaults: small enough that a full sweep finishes in
# minutes, large enough that the optimisation effects are visible.
MINING_DEFAULTS = dict(
    k=4,
    d=2,
    lam=0.5,
    max_edges=2,
    max_extensions_per_rule=8,
    max_rules_per_round=30,
)


def run_dmine_config(
    dataset: str,
    graph: Graph,
    predicate: Pattern,
    num_workers: int,
    sigma: int,
    optimized: bool = True,
    parameter: str = "n",
    value: object = None,
    backend: str = "sequential",
    executor_workers: int | None = None,
    **overrides,
) -> DMineRow:
    """Run one DMine / DMineno configuration and return its measured row."""
    settings = {**MINING_DEFAULTS, **overrides}
    config = DMineConfig(
        num_workers=num_workers,
        sigma=sigma,
        backend=backend,
        executor_workers=executor_workers,
        **settings,
    )
    if not optimized:
        config = config.without_optimizations()
    result = DMine(config).mine(graph, predicate)
    return DMineRow(
        dataset=dataset,
        algorithm="DMine" if optimized else "DMineno",
        parameter=parameter,
        value=value if value is not None else num_workers,
        simulated_parallel_time=result.timings.simulated_parallel_time,
        wall_time=result.timings.wall_time,
        rules_discovered=result.num_rules_discovered,
        candidates_generated=result.candidates_generated,
        objective=result.objective_value,
        backend=config.backend,
        fingerprint=_digest(
            f"{canonical_code(rule.pr_pattern())}|{info.support}|{round(info.confidence, 9)}"
            for rule, info in result.all_rules.items()
        ),
    )


def run_eip_config(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str,
    eta: float = 1.0,
    parameter: str = "n",
    value: object = None,
    backend: str = "sequential",
    executor_workers: int | None = None,
) -> EIPRow:
    """Run one Match / Matchc / disVF2 configuration and return its row."""
    result = identify_entities(
        graph,
        list(rules),
        eta=eta,
        num_workers=num_workers,
        algorithm=algorithm,
        backend=backend,
        executor_workers=executor_workers,
    )
    return EIPRow(
        dataset=dataset,
        algorithm=algorithm,
        parameter=parameter,
        value=value if value is not None else num_workers,
        simulated_parallel_time=result.timings.simulated_parallel_time,
        wall_time=result.timings.wall_time,
        identified=len(result.identified),
        candidates_examined=result.candidates_examined,
        backend=backend,
        fingerprint=_digest(
            [f"id:{entity}" for entity in map(str, result.identified)]
            + [
                f"{rule.name}|{round(confidence, 9)}"
                for rule, confidence in result.rule_confidences.items()
            ]
        ),
    )


def _annotate_speedups(rows: Sequence) -> list:
    """Fill ``wall_speedup`` on *rows* relative to their sequential row."""
    speedups = wall_speedups(rows)
    return [replace(row, wall_speedup=speedups.get(row.backend)) for row in rows]


def run_dmine_backends(
    dataset: str,
    graph: Graph,
    predicate: Pattern,
    num_workers: int,
    sigma: int,
    backends: Sequence[str] = ("sequential", "processes"),
    executor_workers: int | None = None,
    **overrides,
) -> list[DMineRow]:
    """Run one DMine configuration on several backends.

    Returns one row per backend, each annotated with the real wall-clock
    speedup over the sequential run (the sequential baseline is added
    automatically when missing).
    """
    names = list(backends)
    if "sequential" not in names:
        names.insert(0, "sequential")
    rows = [
        run_dmine_config(
            dataset,
            graph,
            predicate,
            num_workers,
            sigma,
            parameter="backend",
            value=name,
            backend=name,
            executor_workers=executor_workers,
            **overrides,
        )
        for name in names
    ]
    return _annotate_speedups(rows)


def run_eip_backends(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str,
    eta: float = 1.0,
    backends: Sequence[str] = ("sequential", "processes"),
    executor_workers: int | None = None,
) -> list[EIPRow]:
    """Run one EIP configuration on several backends (see :func:`run_dmine_backends`)."""
    names = list(backends)
    if "sequential" not in names:
        names.insert(0, "sequential")
    rows = [
        run_eip_config(
            dataset,
            graph,
            rules,
            num_workers,
            algorithm,
            eta=eta,
            parameter="backend",
            value=name,
            backend=name,
            executor_workers=executor_workers,
        )
        for name in names
    ]
    return _annotate_speedups(rows)
