"""Single-configuration runners used by the benchmark modules.

Each runner executes one (algorithm, workload, backend) configuration and
returns a measured row.  Rows carry both the *simulated* parallel time (the
deterministic max-worker-plus-coordinator model the paper's scaling figures
use) and the real wall-clock time; :func:`run_dmine_backends` /
:func:`run_eip_backends` run the same configuration on several execution
backends and annotate each row with its wall-clock speedup over the
sequential baseline, turning the fig5 scalability figures from simulations
into measurements.

Every row also records whether the run consumed the resident
:class:`repro.graph.index.FragmentIndex` (the ``index`` field of the JSON
output); :func:`run_matching_index_comparison` and
:func:`run_eip_index_comparison` run the same workload with the index on and
off and annotate the indexed rows with the measured ``index_speedup``, so
the index's effect is measured rather than asserted.  The columnar kernel
gets the same treatment: :func:`run_matching_columnar_comparison`,
:func:`run_eip_columnar_comparison` and :func:`run_dmine_columnar_comparison`
run with the :class:`repro.graph.columnar.ColumnarFragment` off and on and
annotate the columnar rows with ``columnar_speedup`` (the index-comparison
runners pin ``use_columnar=False`` so each optimisation is measured in
isolation).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.bench.reporting import wall_speedups
from repro.graph.graph import Graph
from repro.graph.columnar import discard_columnar
from repro.graph.index import discard_index
from repro.identification import EIPConfig, identify_entities
from repro.matching import GuidedMatcher, SimulationMatcher, VF2Matcher
from repro.mining import DMine, DMineConfig
from repro.pattern.canonical import canonical_code
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern


def _digest(parts: Iterable[str]) -> str:
    """Short content hash of a result, for cross-backend equivalence gates."""
    return hashlib.sha1("\n".join(sorted(parts)).encode()).hexdigest()[:12]


def _eip_result_fingerprint(result) -> str:
    """One fingerprint for every EIP row family (identified + confidences).

    Shared by :func:`run_eip_config` and the streaming comparison so
    ``BENCH_*.json`` fingerprints stay comparable across families.
    """
    return _digest(
        [f"id:{entity}" for entity in map(str, result.identified)]
        + [
            f"{rule.name}|{round(confidence, 9)}"
            for rule, confidence in result.rule_confidences.items()
        ]
    )


@dataclass(frozen=True)
class DMineRow:
    """One measured point of a DMine series."""

    dataset: str
    algorithm: str
    parameter: str
    value: object
    simulated_parallel_time: float
    wall_time: float
    rules_discovered: int
    candidates_generated: int
    objective: float
    backend: str = "sequential"
    wall_speedup: float | None = None
    use_index: bool = True
    # Indexed wall-clock gain over the matching unindexed run (only set by
    # the index-comparison runners, on the indexed rows).
    index_speedup: float | None = None
    use_incremental: bool = True
    # Incremental wall-clock gain over the matching from-scratch run (only
    # set by the incremental-comparison runners, on the incremental rows).
    incremental_speedup: float | None = None
    use_columnar: bool = True
    # Columnar wall-clock gain over the matching dict-path run (only set by
    # the columnar-comparison runners, on the columnar rows).
    columnar_speedup: float | None = None
    # Content hash of the mined rule set (structure + support + confidence);
    # two rows with equal fingerprints mined *the same rules*, not merely
    # the same number of rules.
    fingerprint: str = ""

    def as_dict(self) -> dict:
        row = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.parameter: self.value,
            "backend": self.backend,
            "index": "on" if self.use_index else "off",
            "incremental": "on" if self.use_incremental else "off",
            "columnar": "on" if self.use_columnar else "off",
            "sim_parallel_s": round(self.simulated_parallel_time, 3),
            "wall_s": round(self.wall_time, 3),
            "rules": self.rules_discovered,
            "candidates": self.candidates_generated,
            "F(Lk)": round(self.objective, 3),
            "fingerprint": self.fingerprint,
        }
        if self.wall_speedup is not None:
            row["wall_speedup"] = round(self.wall_speedup, 2)
        if self.index_speedup is not None:
            row["index_speedup"] = round(self.index_speedup, 2)
        if self.incremental_speedup is not None:
            row["incremental_speedup"] = round(self.incremental_speedup, 2)
        if self.columnar_speedup is not None:
            row["columnar_speedup"] = round(self.columnar_speedup, 2)
        return row


@dataclass(frozen=True)
class EIPRow:
    """One measured point of a Match/Matchc/disVF2 series."""

    dataset: str
    algorithm: str
    parameter: str
    value: object
    simulated_parallel_time: float
    wall_time: float
    identified: int
    candidates_examined: int
    backend: str = "sequential"
    wall_speedup: float | None = None
    use_index: bool = True
    index_speedup: float | None = None
    use_incremental: bool = True
    incremental_speedup: float | None = None
    use_columnar: bool = True
    columnar_speedup: float | None = None
    # Prefix-trie pool applications summed over all fragments; the
    # incremental smoke gate requires > 0 on incremental-on rows (proof the
    # shared-prefix path ran, census-split rules included).
    prefix_pool_hits: int = 0
    # Content hash of the identified entities + per-rule confidences.
    fingerprint: str = ""

    def as_dict(self) -> dict:
        row = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.parameter: self.value,
            "backend": self.backend,
            "index": "on" if self.use_index else "off",
            "incremental": "on" if self.use_incremental else "off",
            "columnar": "on" if self.use_columnar else "off",
            "sim_parallel_s": round(self.simulated_parallel_time, 3),
            "wall_s": round(self.wall_time, 3),
            "identified": self.identified,
            "checks": self.candidates_examined,
            "prefix_hits": self.prefix_pool_hits,
            "fingerprint": self.fingerprint,
        }
        if self.wall_speedup is not None:
            row["wall_speedup"] = round(self.wall_speedup, 2)
        if self.index_speedup is not None:
            row["index_speedup"] = round(self.index_speedup, 2)
        if self.incremental_speedup is not None:
            row["incremental_speedup"] = round(self.incremental_speedup, 2)
        if self.columnar_speedup is not None:
            row["columnar_speedup"] = round(self.columnar_speedup, 2)
        return row


# Benchmark-sized mining defaults: small enough that a full sweep finishes in
# minutes, large enough that the optimisation effects are visible.
MINING_DEFAULTS = dict(
    k=4,
    d=2,
    lam=0.5,
    max_edges=2,
    max_extensions_per_rule=8,
    max_rules_per_round=30,
)


def run_dmine_config(
    dataset: str,
    graph: Graph,
    predicate: Pattern,
    num_workers: int,
    sigma: int,
    optimized: bool = True,
    parameter: str = "n",
    value: object = None,
    backend: str = "sequential",
    executor_workers: int | None = None,
    use_index: bool = True,
    use_incremental: bool = True,
    use_columnar: bool = True,
    **overrides,
) -> DMineRow:
    """Run one DMine / DMineno configuration and return its measured row."""
    settings = {**MINING_DEFAULTS, **overrides}
    config = DMineConfig(
        num_workers=num_workers,
        sigma=sigma,
        backend=backend,
        executor_workers=executor_workers,
        use_index=use_index,
        use_incremental=use_incremental,
        use_columnar=use_columnar,
        **settings,
    )
    if not optimized:
        config = config.without_optimizations()
    result = DMine(config).mine(graph, predicate)
    return DMineRow(
        dataset=dataset,
        algorithm="DMine" if optimized else "DMineno",
        parameter=parameter,
        value=value if value is not None else num_workers,
        simulated_parallel_time=result.timings.simulated_parallel_time,
        wall_time=result.timings.wall_time,
        rules_discovered=result.num_rules_discovered,
        candidates_generated=result.candidates_generated,
        objective=result.objective_value,
        backend=config.backend,
        use_index=use_index,
        use_incremental=use_incremental,
        use_columnar=use_columnar,
        fingerprint=_digest(
            f"{canonical_code(rule.pr_pattern())}|{info.support}|{round(info.confidence, 9)}"
            for rule, info in result.all_rules.items()
        ),
    )


def run_eip_config(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str,
    eta: float = 1.0,
    parameter: str = "n",
    value: object = None,
    backend: str = "sequential",
    executor_workers: int | None = None,
    use_index: bool = True,
    use_incremental: bool = True,
    use_columnar: bool = True,
) -> EIPRow:
    """Run one Match / Matchc / disVF2 configuration and return its row."""
    result = identify_entities(
        graph,
        list(rules),
        eta=eta,
        num_workers=num_workers,
        algorithm=algorithm,
        backend=backend,
        executor_workers=executor_workers,
        use_index=use_index,
        use_incremental=use_incremental,
        use_columnar=use_columnar,
    )
    return EIPRow(
        dataset=dataset,
        algorithm=algorithm,
        parameter=parameter,
        value=value if value is not None else num_workers,
        simulated_parallel_time=result.timings.simulated_parallel_time,
        wall_time=result.timings.wall_time,
        identified=len(result.identified),
        candidates_examined=result.candidates_examined,
        backend=backend,
        use_index=use_index,
        use_incremental=use_incremental,
        use_columnar=use_columnar,
        prefix_pool_hits=result.prefix_pool_hits,
        fingerprint=_eip_result_fingerprint(result),
    )


def _annotate_speedups(rows: Sequence) -> list:
    """Fill ``wall_speedup`` on *rows* relative to their sequential row."""
    speedups = wall_speedups(rows)
    return [replace(row, wall_speedup=speedups.get(row.backend)) for row in rows]


def run_dmine_backends(
    dataset: str,
    graph: Graph,
    predicate: Pattern,
    num_workers: int,
    sigma: int,
    backends: Sequence[str] = ("sequential", "processes"),
    executor_workers: int | None = None,
    **overrides,
) -> list[DMineRow]:
    """Run one DMine configuration on several backends.

    Returns one row per backend, each annotated with the real wall-clock
    speedup over the sequential run (the sequential baseline is added
    automatically when missing).
    """
    names = list(backends)
    if "sequential" not in names:
        names.insert(0, "sequential")
    rows = [
        run_dmine_config(
            dataset,
            graph,
            predicate,
            num_workers,
            sigma,
            parameter="backend",
            value=name,
            backend=name,
            executor_workers=executor_workers,
            **overrides,
        )
        for name in names
    ]
    return _annotate_speedups(rows)


def run_eip_backends(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str,
    eta: float = 1.0,
    backends: Sequence[str] = ("sequential", "processes"),
    executor_workers: int | None = None,
) -> list[EIPRow]:
    """Run one EIP configuration on several backends (see :func:`run_dmine_backends`)."""
    names = list(backends)
    if "sequential" not in names:
        names.insert(0, "sequential")
    rows = [
        run_eip_config(
            dataset,
            graph,
            rules,
            num_workers,
            algorithm,
            eta=eta,
            parameter="backend",
            value=name,
            backend=name,
            executor_workers=executor_workers,
        )
        for name in names
    ]
    return _annotate_speedups(rows)


# ----------------------------------------------------------------------
# indexed-vs-unindexed comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MatchingRow:
    """One measured point of an indexed-vs-unindexed matching series.

    Measures the paper's matching hot path in isolation: *reps* batches of
    anchored ``match_set`` queries over one resident graph, each batch served
    by a freshly constructed matcher (exactly what one EIP/DMine call does).
    Unindexed batches re-derive label pools, adjacency profiles and k-hop
    sketches from the raw graph; indexed batches probe the resident
    :class:`~repro.graph.index.FragmentIndex`.
    """

    dataset: str
    algorithm: str  # matcher kind: "vf2" | "guided"
    parameter: str
    value: object
    wall_time: float
    patterns_matched: int
    total_matches: int
    use_index: bool = True
    index_speedup: float | None = None
    use_columnar: bool = True
    columnar_speedup: float | None = None
    backend: str = "in-process"
    fingerprint: str = ""

    def as_dict(self) -> dict:
        row = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.parameter: self.value,
            "backend": self.backend,
            "index": "on" if self.use_index else "off",
            "columnar": "on" if self.use_columnar else "off",
            "wall_s": round(self.wall_time, 3),
            "patterns": self.patterns_matched,
            "matches": self.total_matches,
            "fingerprint": self.fingerprint,
        }
        if self.index_speedup is not None:
            row["index_speedup"] = round(self.index_speedup, 2)
        if self.columnar_speedup is not None:
            row["columnar_speedup"] = round(self.columnar_speedup, 2)
        return row


def _matcher_for(kind: str, use_index: bool, use_columnar: bool = True):
    if kind == "guided":
        return GuidedMatcher(use_index=use_index, use_columnar=use_columnar)
    if kind == "vf2":
        return VF2Matcher(use_index=use_index, use_columnar=use_columnar)
    if kind == "simulation":
        return SimulationMatcher(use_index=use_index, use_columnar=use_columnar)
    raise ValueError(
        f"unknown matcher kind {kind!r}; expected 'vf2', 'guided' or 'simulation'"
    )


def run_matching_traffic(
    dataset: str,
    graph: Graph,
    rules: Sequence[GPAR],
    kind: str,
    use_index: bool,
    use_columnar: bool = True,
    reps: int = 3,
    parameter: str = "index",
    value: object = None,
) -> MatchingRow:
    """Run *reps* fresh-matcher batches of match-set queries; return one row.

    Each batch computes ``Q(x, G)`` for every rule's antecedent and PR
    pattern with a newly constructed matcher, modelling *reps* successive
    algorithm calls against the same resident fragment.  The graph's
    registered index and columnar view are dropped first so each enabled
    run pays its own build.
    """
    patterns: list[Pattern] = []
    for rule in rules:
        patterns.append(rule.antecedent)
        patterns.append(rule.pr_pattern())
    discard_index(graph)
    discard_columnar(graph)
    match_counts: list[str] = []
    total_matches = 0
    started = time.perf_counter()
    for _ in range(reps):
        matcher = _matcher_for(kind, use_index, use_columnar)
        for position, pattern in enumerate(patterns):
            matches = matcher.match_set(graph, pattern)
            total_matches += len(matches)
            match_counts.append(
                f"{position}|{len(matches)}|{'/'.join(sorted(map(str, matches)))}"
            )
    elapsed = time.perf_counter() - started
    if value is None:
        value = "on" if use_index else "off"
    return MatchingRow(
        dataset=dataset,
        algorithm=kind,
        parameter=parameter,
        value=value,
        wall_time=elapsed,
        patterns_matched=len(patterns) * reps,
        total_matches=total_matches,
        use_index=use_index,
        use_columnar=use_columnar,
        fingerprint=_digest(match_counts),
    )


def run_matching_index_comparison(
    dataset: str,
    graph: Graph,
    rules: Sequence[GPAR],
    kinds: Sequence[str] = ("vf2", "guided"),
    reps: int = 3,
) -> list[MatchingRow]:
    """Indexed-vs-unindexed matching comparison for each matcher kind.

    Returns two rows per kind (index off, then on); the indexed row carries
    ``index_speedup`` = unindexed wall time / indexed wall time.  Raises
    ``AssertionError`` if any kind's match sets differ between the modes.
    Both rows run with the columnar kernel off so the index's effect is
    measured in isolation (the ``columnar`` family measures the kernel's).
    """
    rows: list[MatchingRow] = []
    for kind in kinds:
        unindexed = run_matching_traffic(
            dataset, graph, rules, kind, use_index=False, use_columnar=False, reps=reps
        )
        indexed = run_matching_traffic(
            dataset, graph, rules, kind, use_index=True, use_columnar=False, reps=reps
        )
        if indexed.fingerprint != unindexed.fingerprint:
            raise AssertionError(
                f"indexed {kind} matching diverged from unindexed: "
                f"{indexed.fingerprint} != {unindexed.fingerprint}"
            )
        speedup = unindexed.wall_time / indexed.wall_time if indexed.wall_time else float("inf")
        rows.append(unindexed)
        rows.append(replace(indexed, index_speedup=speedup))
    return rows


def run_matching_columnar_comparison(
    dataset: str,
    graph: Graph,
    rules: Sequence[GPAR],
    kinds: Sequence[str] = ("vf2", "guided", "simulation"),
    reps: int = 3,
) -> list[MatchingRow]:
    """Columnar-vs-dict matching comparison for each matcher kind.

    Both rows keep the resident index on (the production configuration);
    only the columnar kernel toggles, so ``columnar_speedup`` on the
    columnar row isolates what the CSR/profile-matrix path buys on top of
    the dict-backed index.  Raises ``AssertionError`` if any kind's match
    sets differ between the modes.
    """
    rows: list[MatchingRow] = []
    for kind in kinds:
        dict_row = run_matching_traffic(
            dataset,
            graph,
            rules,
            kind,
            use_index=True,
            use_columnar=False,
            reps=reps,
            parameter="columnar",
            value="off",
        )
        columnar_row = run_matching_traffic(
            dataset,
            graph,
            rules,
            kind,
            use_index=True,
            use_columnar=True,
            reps=reps,
            parameter="columnar",
            value="on",
        )
        if columnar_row.fingerprint != dict_row.fingerprint:
            raise AssertionError(
                f"columnar {kind} matching diverged from the dict path: "
                f"{columnar_row.fingerprint} != {dict_row.fingerprint}"
            )
        speedup = (
            dict_row.wall_time / columnar_row.wall_time
            if columnar_row.wall_time
            else float("inf")
        )
        rows.append(dict_row)
        rows.append(replace(columnar_row, columnar_speedup=speedup))
    return rows


def _run_onoff_comparison(
    run_one, backends: Sequence[str], speedup_field: str, diverged_label: str
) -> list:
    """Shared off/on-per-backend comparison shape of the smoke gates.

    ``run_one(backend, enabled)`` produces one measured row; for every
    backend the off row is emitted first and the on row is annotated with
    *speedup_field* = off wall time / on wall time.  All ``2 × |backends|``
    rows must carry one identical result fingerprint.
    """
    rows: list = []
    for backend in backends:
        off_row = run_one(backend, False)
        on_row = run_one(backend, True)
        speedup = (
            off_row.wall_time / on_row.wall_time if on_row.wall_time else float("inf")
        )
        rows.append(off_row)
        rows.append(replace(on_row, **{speedup_field: speedup}))
    fingerprints = {row.fingerprint for row in rows}
    if len(fingerprints) > 1:
        raise AssertionError(
            f"{diverged_label} results diverged across backends/modes: "
            f"{sorted(fingerprints)}"
        )
    return rows


def run_eip_index_comparison(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str = "match",
    eta: float = 1.0,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    executor_workers: int | None = None,
) -> list[EIPRow]:
    """Run one EIP configuration with the index off and on, per backend.

    The cross-backend × cross-mode equivalence gate of the index smoke: all
    2 × len(backends) rows must carry the same result fingerprint.  Indexed
    rows are annotated with their backend's ``index_speedup``.
    """

    def run_one(backend: str, enabled: bool) -> EIPRow:
        return run_eip_config(
            dataset,
            graph,
            rules,
            num_workers,
            algorithm,
            eta=eta,
            parameter="backend",
            value=backend,
            backend=backend,
            executor_workers=executor_workers,
            use_index=enabled,
        )

    return _run_onoff_comparison(run_one, backends, "index_speedup", "EIP (index)")


# ----------------------------------------------------------------------
# columnar-vs-dict comparison
# ----------------------------------------------------------------------
def run_eip_columnar_comparison(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str = "match",
    eta: float = 1.0,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    executor_workers: int | None = None,
) -> list[EIPRow]:
    """Run one EIP configuration with the columnar kernel off and on, per backend.

    The cross-backend × cross-mode equivalence gate of the columnar smoke:
    all ``2 × len(backends)`` rows must carry the same result fingerprint.
    Columnar rows are annotated with their backend's ``columnar_speedup``.
    """

    def run_one(backend: str, enabled: bool) -> EIPRow:
        return run_eip_config(
            dataset,
            graph,
            rules,
            num_workers,
            algorithm,
            eta=eta,
            parameter="backend",
            value=backend,
            backend=backend,
            executor_workers=executor_workers,
            use_columnar=enabled,
        )

    return _run_onoff_comparison(
        run_one, backends, "columnar_speedup", "EIP (columnar)"
    )


def run_dmine_columnar_comparison(
    dataset: str,
    graph: Graph,
    predicate: Pattern,
    num_workers: int,
    sigma: int,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    executor_workers: int | None = None,
    **overrides,
) -> list[DMineRow]:
    """Run one DMine configuration columnar-off and -on, per backend.

    All ``2 × len(backends)`` rows must mine the same rule fingerprint;
    columnar rows carry ``columnar_speedup`` = dict-path wall time /
    columnar wall time on their backend.
    """

    def run_one(backend: str, enabled: bool) -> DMineRow:
        return run_dmine_config(
            dataset,
            graph,
            predicate,
            num_workers,
            sigma,
            parameter="backend",
            value=backend,
            backend=backend,
            executor_workers=executor_workers,
            use_columnar=enabled,
            **overrides,
        )

    return _run_onoff_comparison(
        run_one, backends, "columnar_speedup", "DMine (columnar)"
    )


# ----------------------------------------------------------------------
# incremental-vs-from-scratch comparison
# ----------------------------------------------------------------------
def run_dmine_incremental_comparison(
    dataset: str,
    graph: Graph,
    predicate: Pattern,
    num_workers: int,
    sigma: int,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    executor_workers: int | None = None,
    **overrides,
) -> list[DMineRow]:
    """Run one DMine configuration incremental-off and -on, per backend.

    The cross-backend × cross-mode equivalence gate of the incremental
    smoke: all ``2 × len(backends)`` rows must mine the same rule
    fingerprint.  Incremental rows carry ``incremental_speedup`` =
    from-scratch wall time / incremental wall time on their backend.
    """

    def run_one(backend: str, enabled: bool) -> DMineRow:
        return run_dmine_config(
            dataset,
            graph,
            predicate,
            num_workers,
            sigma,
            parameter="backend",
            value=backend,
            backend=backend,
            executor_workers=executor_workers,
            use_incremental=enabled,
            **overrides,
        )

    return _run_onoff_comparison(
        run_one, backends, "incremental_speedup", "DMine (incremental)"
    )


def run_eip_incremental_comparison(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str = "match",
    eta: float = 1.0,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    executor_workers: int | None = None,
) -> list[EIPRow]:
    """Run one EIP configuration incremental-off and -on, per backend.

    Gates on one identical result fingerprint across every backend × mode;
    incremental (prefix-trie) rows carry their ``incremental_speedup``.
    """

    def run_one(backend: str, enabled: bool) -> EIPRow:
        return run_eip_config(
            dataset,
            graph,
            rules,
            num_workers,
            algorithm,
            eta=eta,
            parameter="backend",
            value=backend,
            backend=backend,
            executor_workers=executor_workers,
            use_incremental=enabled,
        )

    return _run_onoff_comparison(
        run_one, backends, "incremental_speedup", "EIP (incremental)"
    )


# ----------------------------------------------------------------------
# streaming repair-vs-recompute comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamRow:
    """One measured point of a streaming repair-vs-recompute series.

    ``mode`` is ``"recompute"`` (from-scratch run after every batch — what a
    static pipeline pays) or ``"repair"`` (a
    :class:`repro.stream.StreamingIdentifier` /
    :class:`repro.stream.MaintainedMatchView` maintained across the same
    batches).  ``wall_time`` sums over all batches; the repair rows carry
    ``repair_speedup`` = recompute wall / repair wall on their backend.
    ``fingerprint`` hashes the *final* result, so a repair row diverging
    from its recompute twin fails the smoke gate loudly.
    """

    dataset: str
    algorithm: str
    parameter: str
    value: object
    mode: str
    wall_time: float
    batches: int
    rechecked: int
    identified: int
    backend: str = "sequential"
    repair_speedup: float | None = None
    fingerprint: str = ""

    def as_dict(self) -> dict:
        row = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.parameter: self.value,
            "backend": self.backend,
            "mode": self.mode,
            "wall_s": round(self.wall_time, 3),
            "batches": self.batches,
            "rechecked": self.rechecked,
            "identified": self.identified,
            "fingerprint": self.fingerprint,
        }
        if self.repair_speedup is not None:
            row["repair_speedup"] = round(self.repair_speedup, 2)
        return row


def sample_update_batches(
    graph: Graph, count: int, size: int, seed: int = 0, deletion_bias: float = 0.0
) -> list:
    """*count* batches, each valid against the state the previous ones left.

    Sampled once against a scratch copy so every backend/mode of a
    comparison replays the **same** update sequence.  *deletion_bias*
    forwards to :func:`repro.stream.random_update_batch` (deletion-heavy
    churn workloads).
    """
    from repro.stream import random_update_batch

    scratch = graph.copy()
    batches = []
    for position in range(count):
        batch = random_update_batch(
            scratch,
            size=size,
            seed=seed * 1000 + position,
            deletion_bias=deletion_bias,
        )
        batch.apply(scratch)
        batches.append(batch)
    return batches


def run_eip_stream_comparison(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str = "match",
    eta: float = 1.0,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    executor_workers: int | None = None,
    num_batches: int = 4,
    batch_size: int = 8,
    seed: int = 0,
) -> list[StreamRow]:
    """Streaming EIP maintenance vs from-scratch recompute, per backend.

    Replays one sampled update sequence in both modes on every backend.
    After **each** batch the maintained result must carry the same
    fingerprint as a fresh ``identify_entities`` run on the mutated graph
    (raising ``AssertionError`` otherwise); the repair rows report the
    wall-clock of `StreamingIdentifier.apply` summed over the sequence
    against the recompute rows' per-batch full runs.
    """
    from repro.stream import StreamingIdentifier

    batches = sample_update_batches(graph, num_batches, batch_size, seed=seed)
    rows: list[StreamRow] = []
    for backend in backends:
        # Mode 1: recompute after every batch (the static pipeline's cost).
        recompute_graph = graph.copy()
        recompute_wall = 0.0
        recompute_result = None
        for batch in batches:
            batch.apply(recompute_graph)
            started = time.perf_counter()
            recompute_result = identify_entities(
                recompute_graph,
                list(rules),
                eta=eta,
                num_workers=num_workers,
                algorithm=algorithm,
                backend=backend,
                executor_workers=executor_workers,
            )
            recompute_wall += time.perf_counter() - started
        recompute_row = StreamRow(
            dataset=dataset,
            algorithm=algorithm,
            parameter="backend",
            value=backend,
            mode="recompute",
            wall_time=recompute_wall,
            batches=len(batches),
            rechecked=0,
            identified=len(recompute_result.identified),
            backend=backend,
            fingerprint=_eip_result_fingerprint(recompute_result),
        )

        # Mode 2: one StreamingIdentifier maintained across the sequence.
        stream_graph = graph.copy()
        repair_wall = 0.0
        rechecked = 0
        with StreamingIdentifier(
            stream_graph,
            rules,
            config=EIPConfig(
                eta=eta,
                num_workers=num_workers,
                backend=backend,
                executor_workers=executor_workers,
            ),
            algorithm=algorithm,
        ) as identifier:
            for batch in batches:
                update_report = identifier.apply(batch)
                repair_wall += update_report.wall_time
                rechecked += update_report.rechecked_centers
                maintained = _eip_result_fingerprint(identifier.result)
                fresh = _eip_result_fingerprint(identifier.recompute())
                if maintained != fresh:
                    raise AssertionError(
                        f"streaming repair diverged from recompute on "
                        f"{backend}: {maintained} != {fresh}"
                    )
            stream_result = identifier.result
        repair_row = StreamRow(
            dataset=dataset,
            algorithm=algorithm,
            parameter="backend",
            value=backend,
            mode="repair",
            wall_time=repair_wall,
            batches=len(batches),
            rechecked=rechecked,
            identified=len(stream_result.identified),
            backend=backend,
            repair_speedup=(
                recompute_wall / repair_wall if repair_wall else float("inf")
            ),
            fingerprint=_eip_result_fingerprint(stream_result),
        )
        if repair_row.fingerprint != recompute_row.fingerprint:
            raise AssertionError(
                f"streaming repair diverged from recompute on {backend}: "
                f"{repair_row.fingerprint} != {recompute_row.fingerprint}"
            )
        rows.append(recompute_row)
        rows.append(repair_row)
    return rows


# ----------------------------------------------------------------------
# deletion-heavy churn: resident-size trajectory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnRow:
    """One batch of a deletion-heavy streaming run (resident-size trajectory).

    The churn bench answers a different question than the repair-speedup
    rows: does resident fragment state (graphs + update logs) stay
    *bounded* when the workload keeps deleting?  Each row records the
    authoritative graph size, the coordinator's total resident node count
    and retained log operations, and the lifecycle actions of the batch.
    """

    dataset: str
    batch: int
    graph_nodes: int
    graph_edges: int
    resident_nodes: int
    log_ops: int
    rechecked: int
    shed: int
    migrated: int
    compacted: int
    wall_time: float
    backend: str = "sequential"
    fingerprint: str = ""

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "batch": self.batch,
            "backend": self.backend,
            "graph_nodes": self.graph_nodes,
            "graph_edges": self.graph_edges,
            "resident_nodes": self.resident_nodes,
            "log_ops": self.log_ops,
            "rechecked": self.rechecked,
            "shed": self.shed,
            "migrated": self.migrated,
            "compacted": self.compacted,
            "wall_s": round(self.wall_time, 3),
            "fingerprint": self.fingerprint,
        }


def run_stream_churn(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    num_batches: int = 50,
    batch_size: int = 16,
    deletion_bias: float = 0.7,
    eta: float = 1.0,
    algorithm: str = "match",
    seed: int = 0,
    stream_config=None,
) -> list[ChurnRow]:
    """Deletion-heavy maintenance run recording resident size per batch.

    A single :class:`~repro.stream.StreamingIdentifier` absorbs
    *num_batches* deletion-biased batches (each sampled against the live
    graph, so the sequence stays valid as the graph shrinks).  After the
    final batch the maintained answer is gate-checked byte-identical to a
    from-scratch recompute; the per-batch rows feed the resident-size
    bounded gate of the smoke runner (``BENCH_stream_churn.json``).
    """
    from repro.stream import StreamingIdentifier, random_update_batch

    live = graph.copy()
    rows: list[ChurnRow] = []
    with StreamingIdentifier(
        live,
        rules,
        config=EIPConfig(eta=eta, num_workers=num_workers),
        algorithm=algorithm,
        stream_config=stream_config,
    ) as identifier:
        for position in range(num_batches):
            batch = random_update_batch(
                live,
                size=batch_size,
                seed=seed * 1000 + position,
                deletion_bias=deletion_bias,
            )
            update_report = identifier.apply(batch)
            rows.append(
                ChurnRow(
                    dataset=dataset,
                    batch=position + 1,
                    graph_nodes=live.num_nodes,
                    graph_edges=live.num_edges,
                    resident_nodes=update_report.resident_nodes,
                    log_ops=update_report.log_ops,
                    rechecked=update_report.rechecked_centers,
                    shed=update_report.shed_nodes,
                    migrated=update_report.migrated_centers,
                    compacted=update_report.compacted_fragments,
                    wall_time=update_report.wall_time,
                    fingerprint=_eip_result_fingerprint(identifier.result),
                )
            )
        maintained = _eip_result_fingerprint(identifier.result)
        fresh = _eip_result_fingerprint(identifier.recompute())
        if maintained != fresh:
            raise AssertionError(
                f"churn run diverged from recompute after {num_batches} "
                f"batches: {maintained} != {fresh}"
            )
    return rows


# ----------------------------------------------------------------------
# lifecycle: checkpoint → restart → byte-identical answers
# ----------------------------------------------------------------------
def run_lifecycle_roundtrip(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    executor_workers: int | None = None,
    num_batches: int = 3,
    batch_size: int = 8,
    eta: float = 1.0,
    algorithm: str = "match",
    seed: int = 0,
) -> list[StreamRow]:
    """Checkpoint/restart round-trip gate, per backend.

    For every backend: maintain a :class:`~repro.stream.StreamingIdentifier`
    across the sampled sequence, ``save_state`` it, ``restore`` onto the
    same backend, and require (a) the restored answer byte-identical to the
    checkpointed one and (b) one further batch applied post-restart
    byte-identical to a from-scratch recompute.  A maintained
    :class:`~repro.stream.MaintainedMatchView` round-trips alongside (graph
    pickled, view re-materialised, match sets compared).  Raises
    ``AssertionError`` on any divergence.
    """
    import pickle
    import tempfile
    from pathlib import Path

    from repro.matching import VF2Matcher
    from repro.stream import MaintainedMatchView, StreamingIdentifier

    batches = sample_update_batches(graph, num_batches + 1, batch_size, seed=seed)
    rows: list[StreamRow] = []
    for backend in backends:
        stream_graph = graph.copy()
        started = time.perf_counter()
        with tempfile.TemporaryDirectory() as scratch:
            with StreamingIdentifier(
                stream_graph,
                rules,
                config=EIPConfig(
                    eta=eta,
                    num_workers=num_workers,
                    backend=backend,
                    executor_workers=executor_workers,
                ),
                algorithm=algorithm,
            ) as identifier:
                for batch in batches[:num_batches]:
                    identifier.apply(batch)
                checkpointed = _eip_result_fingerprint(identifier.result)
                identified = len(identifier.result.identified)
                state_path = identifier.save_state(Path(scratch) / "state.pkl")
            rows.append(
                StreamRow(
                    dataset=dataset,
                    algorithm=algorithm,
                    parameter="backend",
                    value=backend,
                    mode="checkpointed",
                    wall_time=time.perf_counter() - started,
                    batches=num_batches,
                    rechecked=0,
                    identified=identified,
                    backend=backend,
                    fingerprint=checkpointed,
                )
            )
            started = time.perf_counter()
            with StreamingIdentifier.restore(state_path, backend=backend) as restored:
                restored_fingerprint = _eip_result_fingerprint(restored.result)
                if restored_fingerprint != checkpointed:
                    raise AssertionError(
                        f"lifecycle restore diverged on {backend}: "
                        f"{restored_fingerprint} != {checkpointed}"
                    )
                restored.apply(batches[num_batches])
                continued = _eip_result_fingerprint(restored.result)
                fresh = _eip_result_fingerprint(restored.recompute())
                if continued != fresh:
                    raise AssertionError(
                        f"post-restart apply diverged on {backend}: "
                        f"{continued} != {fresh}"
                    )
                identified = len(restored.result.identified)
            rows.append(
                StreamRow(
                    dataset=dataset,
                    algorithm=algorithm,
                    parameter="backend",
                    value=backend,
                    mode="restored",
                    wall_time=time.perf_counter() - started,
                    batches=1,
                    rechecked=0,
                    identified=identified,
                    backend=backend,
                    fingerprint=restored_fingerprint,
                )
            )

    # Maintained match sets round-trip.  Embedding streams hold suspended
    # generators and cannot cross a pickle boundary, so a view restarts by
    # re-materialising from the serialized graph; the gate therefore
    # compares the *repair-maintained* view (its store patched across every
    # batch) against that post-restart rebuild — catching both graph
    # serialization drift and repaired-store divergence.
    view_graph = graph.copy()
    patterns = [rule.pr_pattern() for rule in rules]
    view = MaintainedMatchView(view_graph, patterns, VF2Matcher())
    for batch in batches[:num_batches]:
        view.apply(batch)  # repairs the store in place
    before = [sorted(map(str, view.match_set(pattern))) for pattern in patterns]
    assert view.store.statistics.repaired_entries > 0 or num_batches == 0
    revived_graph = pickle.loads(pickle.dumps(view_graph))
    if not revived_graph.structure_equal(view_graph):
        raise AssertionError("graph serialization drifted across the round-trip")
    revived = MaintainedMatchView(revived_graph, patterns, VF2Matcher())
    after = [sorted(map(str, revived.match_set(pattern))) for pattern in patterns]
    if before != after:
        raise AssertionError("maintained match view diverged across a round-trip")
    return rows


# ----------------------------------------------------------------------
# serving: concurrent readers under update pressure, over real HTTP
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServeRow:
    """One measured serve-load run (the ``serve`` smoke family).

    *clients* reader threads paginate ``GET /answer`` in a loop while one
    writer POSTs the sampled update sequence; the run gates **in-line** on
    the serving contract — every pagination pass sees exactly one
    ``graph_version`` (``torn_reads`` must be 0), every update response's
    delta and the subscription replay are byte-identical to the
    set-difference of fresh recomputes on a mirror graph — and reports the
    read-latency distribution and tick throughput as the trajectory.
    """

    dataset: str
    parameter: str
    value: object
    clients: int
    batches: int
    reads: int
    read_p50_ms: float
    read_p99_ms: float
    ticks_per_sec: float
    torn_reads: int
    wall_time: float
    backend: str = "http"
    fingerprint: str = ""

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            self.parameter: self.value,
            "backend": self.backend,
            "clients": self.clients,
            "batches": self.batches,
            "reads": self.reads,
            "read_p50_ms": round(self.read_p50_ms, 2),
            "read_p99_ms": round(self.read_p99_ms, 2),
            "ticks_per_sec": round(self.ticks_per_sec, 2),
            "torn_reads": self.torn_reads,
            "wall_s": round(self.wall_time, 3),
            "fingerprint": self.fingerprint,
        }


def _http_json(method: str, url: str, body: dict | None = None, timeout: float = 120.0):
    """One JSON request on a throwaway connection (``Connection: close``).

    The load generators below hold a :class:`_KeepAliveClient` instead —
    this stays for one-shot pings where connection reuse buys nothing.
    """
    import json
    import urllib.request

    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


class _KeepAliveClient:
    """One persistent HTTP/1.1 connection to the bench's loopback server.

    ``repro.serve`` keeps connections open between requests, so a reader
    thread paginating in a loop pays the TCP handshake once, not per page.
    Not thread-safe by design — every load thread owns its own client.  A
    request that finds the socket closed (the server's idle timeout, or a
    restart between calls) reconnects and retries once.
    """

    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        import http.client
        from urllib.parse import urlsplit

        split = urlsplit(base_url)
        self._connection = http.client.HTTPConnection(
            split.hostname or "127.0.0.1", split.port, timeout=timeout
        )

    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        import http.client
        import json

        data = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if data is not None else {}
        for attempt in (0, 1):
            try:
                self._connection.request(method, path, body=data, headers=headers)
                response = self._connection.getresponse()
                payload = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self._connection.close()  # stale socket: reconnect and retry once
                if attempt:
                    raise
        if response.status >= 400:
            raise AssertionError(
                f"{method} {path} failed with {response.status}: {payload.decode('utf-8', 'replace')}"
            )
        return json.loads(payload.decode("utf-8"))

    def close(self) -> None:
        self._connection.close()


def run_serve_load(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    session_request: dict,
    clients: int = 8,
    num_batches: int = 3,
    batch_size: int = 8,
    seed: int = 0,
    page_limit: int = 50,
) -> list[ServeRow]:
    """Concurrent readers × update pressure against a real ``repro.serve``.

    Starts a loopback :class:`repro.serve.BackgroundServer`, creates one
    session from *session_request* (whose rule-generation parameters must
    reproduce *rules* — checked by name), then runs *clients* reader
    threads paginating the answer while a writer applies the sampled
    update sequence over HTTP.  Raises ``AssertionError`` if any pagination
    pass mixes graph versions (a torn read), if any update's delta differs
    from the set-difference of fresh recomputes on a mirror graph, or if
    the subscription replay of the whole run is not byte-identical to
    those recomputed deltas.
    """
    import json
    import threading

    from repro import api
    from repro.graph.io import graph_to_dict
    from repro.serve import BackgroundServer

    batches = sample_update_batches(graph, num_batches, batch_size, seed=seed)
    mirror_config = EIPConfig(
        eta=session_request.get("eta", 1.0),
        num_workers=session_request.get("workers", 4),
        seed=session_request.get("seed", 0),
    )

    latencies: list[float] = []
    torn_passes = [0]
    reads = [0]
    reader_errors: list[BaseException] = []
    record_lock = threading.Lock()
    stop = threading.Event()
    run_started = time.perf_counter()

    with BackgroundServer(executor_workers=clients + 4) as server:
        writer = _KeepAliveClient(server.base_url)
        created = writer.request(
            "POST",
            "/sessions",
            {**session_request, "graph": graph_to_dict(graph)},
        )
        if created["rules"] != [rule.name for rule in rules]:
            raise AssertionError(
                f"server regenerated a different rule set: {created['rules']} "
                f"!= {[rule.name for rule in rules]}"
            )
        session_path = f"/sessions/{created['session']}"

        def read_loop() -> None:
            # One iteration = one full pagination pass; the pass must see a
            # single graph_version even while update ticks land.  Each reader
            # holds one keep-alive connection for its whole lifetime.
            client = _KeepAliveClient(server.base_url)
            try:
                while not stop.is_set():
                    pinned_version = None
                    cursor = None
                    while True:
                        query = f"?limit={page_limit}"
                        if cursor is not None:
                            query += f"&cursor={cursor}"
                        started = time.perf_counter()
                        page = client.request("GET", f"{session_path}/answer{query}")
                        elapsed_ms = (time.perf_counter() - started) * 1000.0
                        with record_lock:
                            latencies.append(elapsed_ms)
                            reads[0] += 1
                        if pinned_version is None:
                            pinned_version = page["graph_version"]
                        elif page["graph_version"] != pinned_version:
                            with record_lock:
                                torn_passes[0] += 1
                        cursor = page.get("next_cursor")
                        if not cursor:
                            break
            except BaseException as exc:  # surfaced after join
                reader_errors.append(exc)
            finally:
                client.close()

        readers = [
            threading.Thread(target=read_loop, name=f"serve-reader-{index}", daemon=True)
            for index in range(clients)
        ]
        for thread in readers:
            thread.start()

        # Writer: apply the sequence over HTTP while mirroring each tick
        # with a fresh recompute; every delta must be the recomputes'
        # set-difference, byte for byte.
        mirror = graph.copy()
        fresh_before = api.identify(mirror, rules, mirror_config)
        baseline_version = writer.request("GET", f"{session_path}/subscribe")["resume_from"]
        expected_deltas: list[dict] = []
        tick_wall = 0.0
        try:
            for position, batch in enumerate(batches):
                started = time.perf_counter()
                response = writer.request(
                    "POST",
                    f"{session_path}/updates",
                    {"ops": [op.as_dict() for op in batch.ops]},
                )
                tick_wall += time.perf_counter() - started
                batch.apply(mirror)
                fresh_after = api.identify(mirror, rules, mirror_config)
                expected = api.diff_results(
                    fresh_before,
                    fresh_after,
                    response["base_version"],
                    response["graph_version"],
                ).as_dict()
                if json.dumps(response["delta"], sort_keys=True) != json.dumps(
                    expected, sort_keys=True
                ):
                    raise AssertionError(
                        f"batch {position + 1}: served delta diverged from the "
                        f"fresh-recompute set-difference:\n  served   "
                        f"{json.dumps(response['delta'], sort_keys=True)}\n  expected "
                        f"{json.dumps(expected, sort_keys=True)}"
                    )
                expected_deltas.append(expected)
                fresh_before = fresh_after

            replayed = writer.request(
                "GET", f"{session_path}/subscribe?since={baseline_version}&timeout=5"
            )
            if json.dumps(replayed["deltas"], sort_keys=True) != json.dumps(
                expected_deltas, sort_keys=True
            ):
                raise AssertionError(
                    "subscription replay diverged from the per-tick recompute deltas"
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
            writer.close()

    if reader_errors:
        raise AssertionError(f"concurrent reader failed: {reader_errors[0]!r}") from (
            reader_errors[0]
        )
    if torn_passes[0]:
        raise AssertionError(
            f"{torn_passes[0]} pagination passes observed a torn (mixed-version) answer"
        )
    if not latencies:
        raise AssertionError("readers recorded no requests — load never ran")
    ordered = sorted(latencies)
    row = ServeRow(
        dataset=dataset,
        parameter="clients",
        value=clients,
        clients=clients,
        batches=len(batches),
        reads=reads[0],
        read_p50_ms=ordered[int(0.50 * (len(ordered) - 1))],
        read_p99_ms=ordered[int(0.99 * (len(ordered) - 1))],
        ticks_per_sec=len(batches) / tick_wall if tick_wall else float("inf"),
        torn_reads=torn_passes[0],
        wall_time=time.perf_counter() - run_started,
        fingerprint=_eip_result_fingerprint(fresh_before),
    )
    return [row]


# ----------------------------------------------------------------------
# multi-tenant serving: cross-Σ match sharing over one resident graph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantRow:
    """One measured step of the multi-tenant scaling run (``tenant`` family).

    ``admit`` rows measure the marginal cost of the k-th tenant joining the
    shared core (wall clock, novel vs shared rules, backfilled centres);
    the ``single`` row replays the same update sequence on a one-tenant
    core (the baseline the gates scale against); the ``steady`` row is the
    shared core maintaining every tenant at once; ``equivalence`` rows
    record the smaller cross-backend projection-vs-independent-run legs.
    """

    dataset: str
    mode: str
    tenants: int
    rules: int  #: the admitted tenant's |Σ| (admit) / Σ over tenants (steady)
    union_rules: int  #: distinct canonical representatives the core verifies
    shared_rules: int = 0
    novel_rules: int = 0
    shared_prefix_hits: int = 0
    backfill_centers: int = 0
    verified_centers: int = 0
    batches: int = 0
    wall_time: float = 0.0
    backend: str = "sequential"
    fingerprint: str = ""

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "backend": self.backend,
            "mode": self.mode,
            "tenants": self.tenants,
            "rules": self.rules,
            "union_rules": self.union_rules,
            "shared_rules": self.shared_rules,
            "novel_rules": self.novel_rules,
            "shared_prefix_hits": self.shared_prefix_hits,
            "backfill_centers": self.backfill_centers,
            "verified_centers": self.verified_centers,
            "batches": self.batches,
            "wall_s": round(self.wall_time, 3),
            "fingerprint": self.fingerprint,
        }


def tenant_rule_slices(
    pool: Sequence[GPAR], num_tenants: int, rules_per_tenant: int
) -> dict[str, tuple[GPAR, ...]]:
    """Stride-1 overlapping Σ slices: tenant k serves ``pool[k-1 : k-1+r]``.

    Adjacent tenants share all but one rule — the workload shape the
    marginal-cost gate is about (the k-th tenant's admission should pay for
    its one novel suffix, not its whole Σ).
    """
    needed = num_tenants - 1 + rules_per_tenant
    if len(pool) < needed:
        raise ValueError(
            f"rule pool of {len(pool)} cannot cut {num_tenants} stride-1 "
            f"slices of {rules_per_tenant} (need {needed})"
        )
    return {
        f"tenant-{index + 1}": tuple(pool[index : index + rules_per_tenant])
        for index in range(num_tenants)
    }


def run_tenant_scaling(
    dataset: str,
    graph: Graph,
    rule_pool: Sequence[GPAR],
    num_tenants: int = 8,
    rules_per_tenant: int = 6,
    num_workers: int = 2,
    algorithm: str = "match",
    eta: float = 0.5,
    backends: Sequence[str] = ("sequential",),
    executor_workers: int | None = None,
    num_batches: int = 2,
    batch_size: int = 8,
    seed: int = 0,
    equivalence_tenants: int = 3,
) -> list[TenantRow]:
    """N overlapping tenant Σ over one shared core vs independent runs.

    The primary leg runs on ``backends[0]``: admit *num_tenants* stride-1
    overlapping rule sets one by one into a
    :class:`~repro.stream.MultiTenantIdentifier` (one ``admit`` row each),
    then replay a sampled update sequence against both the shared core and
    a one-tenant baseline core (the ``steady`` / ``single`` rows).  After
    every admission and every batch, **every** tenant's projected answer
    must be fingerprint-identical to an independent ``identify_entities``
    run with that tenant's rules on the same graph — raising
    ``AssertionError`` otherwise.  Each remaining backend gets a smaller
    per-batch equivalence leg through
    :func:`repro.testing.multi_tenant_check` (one ``equivalence`` row).
    """
    from repro.stream import MultiTenantIdentifier
    from repro.testing import multi_tenant_check

    tenants = tenant_rule_slices(rule_pool, num_tenants, rules_per_tenant)
    batches = sample_update_batches(graph, num_batches, batch_size, seed=seed)
    primary, rest = backends[0], backends[1:]

    def config_for(backend: str) -> EIPConfig:
        return EIPConfig(
            eta=eta,
            num_workers=num_workers,
            seed=seed,
            backend=backend,
            executor_workers=executor_workers,
        )

    def assert_exact(multi: MultiTenantIdentifier, where: str) -> None:
        for tenant in multi.tenants:
            projected = _eip_result_fingerprint(multi.result_for(tenant))
            fresh = _eip_result_fingerprint(multi.recompute_for(tenant))
            if projected != fresh:
                raise AssertionError(
                    f"{where}: tenant {tenant} projection diverged from an "
                    f"independent run ({projected} != {fresh})"
                )

    rows: list[TenantRow] = []

    # -- single-tenant baseline: the cost the gates scale against --------
    single = MultiTenantIdentifier(graph.copy(), config=config_for(primary), algorithm=algorithm)
    try:
        admission = single.admit("tenant-1", tenants["tenant-1"])
        single_wall = 0.0
        single_verified = 0
        for batch in batches:
            started = time.perf_counter()
            report = single.apply(batch)
            single_wall += time.perf_counter() - started
            single_verified += report.rechecked_centers
        rows.append(
            TenantRow(
                dataset=dataset,
                mode="single",
                tenants=1,
                rules=len(tenants["tenant-1"]),
                union_rules=len(single.union_rules),
                backfill_centers=admission.backfill_centers,
                verified_centers=single_verified,
                batches=len(batches),
                wall_time=single_wall,
                backend=primary,
                fingerprint=_eip_result_fingerprint(single.result_for("tenant-1")),
            )
        )
    finally:
        single.close()

    # -- primary leg: admissions one by one, then shared steady state ----
    multi = MultiTenantIdentifier(graph.copy(), config=config_for(primary), algorithm=algorithm)
    try:
        for count, (tenant, tenant_rules) in enumerate(tenants.items(), start=1):
            admission = multi.admit(tenant, tenant_rules)
            rows.append(
                TenantRow(
                    dataset=dataset,
                    mode="admit",
                    tenants=count,
                    rules=len(tenant_rules),
                    union_rules=len(multi.union_rules),
                    shared_rules=admission.shared_rules,
                    novel_rules=admission.novel_rules,
                    shared_prefix_hits=admission.shared_prefix_hits,
                    backfill_centers=admission.backfill_centers,
                    wall_time=admission.wall_time,
                    backend=primary,
                    fingerprint=_eip_result_fingerprint(multi.result_for(tenant)),
                )
            )
        assert_exact(multi, "after admissions")
        steady_wall = 0.0
        steady_verified = 0
        for position, batch in enumerate(batches):
            started = time.perf_counter()
            report = multi.apply(batch)
            steady_wall += time.perf_counter() - started
            steady_verified += report.rechecked_centers
            assert_exact(multi, f"after batch {position + 1}")
        rows.append(
            TenantRow(
                dataset=dataset,
                mode="steady",
                tenants=num_tenants,
                rules=sum(len(tenant_rules) for tenant_rules in tenants.values()),
                union_rules=len(multi.union_rules),
                verified_centers=steady_verified,
                batches=len(batches),
                wall_time=steady_wall,
                backend=primary,
                fingerprint=_eip_result_fingerprint(multi.result_for("tenant-1")),
            )
        )
    finally:
        multi.close()

    # -- smaller cross-backend equivalence legs --------------------------
    small = dict(list(tenants.items())[:equivalence_tenants])
    for backend in rest:
        started = time.perf_counter()
        divergences = multi_tenant_check(
            graph,
            small,
            batches,
            eta=eta,
            num_workers=num_workers,
            algorithm=algorithm,
            seed=seed,
            backends=(backend,),
        )
        if divergences:
            raise AssertionError(
                f"multi-tenant equivalence failed: {divergences[0].describe()}"
            )
        rows.append(
            TenantRow(
                dataset=dataset,
                mode="equivalence",
                tenants=len(small),
                rules=sum(len(tenant_rules) for tenant_rules in small.values()),
                union_rules=0,
                batches=len(batches),
                wall_time=time.perf_counter() - started,
                backend=backend,
            )
        )
    return rows


def run_matchview_stream_comparison(
    dataset: str,
    graph: Graph,
    rules: Sequence[GPAR],
    kinds: Sequence[str] = ("vf2", "guided"),
    num_batches: int = 4,
    batch_size: int = 8,
    seed: int = 0,
) -> list[StreamRow]:
    """Maintained match sets vs from-scratch re-matching, per matcher kind.

    The matcher-level half of the ``stream`` smoke (mirroring how the
    ``index`` family isolates the resident index): every rule's PR pattern
    is kept current by :meth:`MatchStore.repair` across the update
    sequence, against a baseline that re-runs ``match_set`` for the whole
    pattern family after each batch.  Gates on identical match sets.
    """
    from repro.stream import MaintainedMatchView

    patterns = [rule.pr_pattern() for rule in rules]
    batches = sample_update_batches(graph, num_batches, batch_size, seed=seed)
    rows: list[StreamRow] = []
    for kind in kinds:
        baseline_graph = graph.copy()
        baseline_wall = 0.0
        baseline_sets: list[str] = []
        total_baseline = 0
        for batch in batches:
            batch.apply(baseline_graph)
            matcher = _matcher_for(kind, use_index=True)
            started = time.perf_counter()
            for position, pattern in enumerate(patterns):
                matches = matcher.match_set(baseline_graph, pattern)
                total_baseline += len(matches)
                baseline_sets.append(
                    f"{position}|{'/'.join(sorted(map(str, matches)))}"
                )
            baseline_wall += time.perf_counter() - started
        rows.append(
            StreamRow(
                dataset=dataset,
                algorithm=kind,
                parameter="mode",
                value="recompute",
                mode="recompute",
                wall_time=baseline_wall,
                batches=len(batches),
                rechecked=0,
                identified=total_baseline,
                backend="in-process",
                fingerprint=_digest(baseline_sets),
            )
        )

        view_graph = graph.copy()
        view = MaintainedMatchView(view_graph, patterns, _matcher_for(kind, use_index=True))
        view_wall = 0.0
        view_sets: list[str] = []
        total_view = 0
        for batch in batches:
            batch.apply(view_graph)
            started = time.perf_counter()
            view.refresh()
            for position, pattern in enumerate(patterns):
                matches = view.match_set(pattern)
                total_view += len(matches)
                view_sets.append(
                    f"{position}|{'/'.join(sorted(map(str, matches)))}"
                )
            view_wall += time.perf_counter() - started
        repair_row = StreamRow(
            dataset=dataset,
            algorithm=kind,
            parameter="mode",
            value="repair",
            mode="repair",
            wall_time=view_wall,
            batches=len(batches),
            rechecked=view.store.statistics.repair_rechecks,
            identified=total_view,
            backend="in-process",
            repair_speedup=baseline_wall / view_wall if view_wall else float("inf"),
            fingerprint=_digest(view_sets),
        )
        if repair_row.fingerprint != rows[-1].fingerprint:
            raise AssertionError(
                f"maintained {kind} match sets diverged from re-matching: "
                f"{repair_row.fingerprint} != {rows[-1].fingerprint}"
            )
        rows.append(repair_row)
    return rows


# ----------------------------------------------------------------------
# observability: instrumentation overhead + scrape/trace round-trips
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObsRow:
    """One half of the instrumented-vs-uninstrumented streaming comparison.

    The ``obs`` smoke family replays the same sampled update sequence
    through a :class:`~repro.stream.StreamingIdentifier` with observability
    fully off (the module-level no-op span path) and fully on (an installed
    :class:`~repro.obs.Tracer` plus ``REPRO_OBS`` statistics collection).
    The instrumented row carries ``overhead_pct`` — the best-of-reps wall
    regression the instrumentation itself costs — plus the two round-trip
    gates: ``trace_ok`` (dump_jsonl → load_trace survives byte-identical and
    renders a breakdown) and ``scrape_ok`` (a live ``GET /metrics`` parses
    under the strict Prometheus parser with the expected families present).
    """

    dataset: str
    mode: str
    batches: int
    reps: int
    wall_time: float
    spans: int = 0
    counter_series: int = 0
    overhead_pct: float | None = None
    scrape_ok: bool | None = None
    trace_ok: bool | None = None
    backend: str = "sequential"
    fingerprint: str = ""

    def as_dict(self) -> dict:
        row = {
            "dataset": self.dataset,
            "mode": self.mode,
            "backend": self.backend,
            "batches": self.batches,
            "reps": self.reps,
            "wall_s": round(self.wall_time, 3),
            "spans": self.spans,
            "counter_series": self.counter_series,
            "fingerprint": self.fingerprint,
        }
        if self.overhead_pct is not None:
            row["overhead_pct"] = round(self.overhead_pct, 2)
        if self.scrape_ok is not None:
            row["scrape_ok"] = self.scrape_ok
        if self.trace_ok is not None:
            row["trace_ok"] = self.trace_ok
        return row


def run_obs_overhead(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    num_batches: int = 6,
    batch_size: int = 8,
    eta: float = 1.0,
    algorithm: str = "match",
    seed: int = 0,
    reps: int = 3,
) -> list["ObsRow"]:
    """Instrumented vs uninstrumented streaming maintenance (``obs`` family).

    Interleaves *reps* uninstrumented/instrumented pairs of the same
    maintenance run and takes the best-of-reps sum of per-tick wall times
    for each mode, so ``overhead_pct`` measures the instrumentation rather
    than scheduler noise.  Counters aggregate through the registry's
    ``snapshot()``/``merge()`` protocol (:mod:`repro.obs.stats`) — not the
    deprecated field-by-field statistics accumulation — and both modes must
    produce identical result fingerprints: instrumentation may never change
    answers.  Raises ``AssertionError`` on a fingerprint divergence; the
    scrape/trace round-trip outcomes land on the instrumented row for the
    smoke gate.
    """
    import tempfile
    import urllib.request
    from pathlib import Path

    from repro.obs import (
        Tracer,
        install,
        load_trace,
        parse_prometheus,
        trace_breakdown,
        uninstall,
    )
    from repro.obs.registry import registry
    from repro.obs.stats import (
        disable_collection,
        enable_collection,
        reset_collection,
    )
    from repro.serve import BackgroundServer
    from repro.stream import StreamingIdentifier

    batches = sample_update_batches(graph, num_batches, batch_size, seed=seed)
    registry().reset()  # the scrape below should reflect this run alone

    def maintain(instrumented: bool):
        live = graph.copy()
        tracer = None
        if instrumented:
            tracer = Tracer()
            reset_collection()  # fresh watermarks: each rep ships full counts
            enable_collection()
            install(tracer)
        try:
            wall = 0.0
            with StreamingIdentifier(
                live,
                rules,
                config=EIPConfig(eta=eta, num_workers=num_workers),
                algorithm=algorithm,
            ) as identifier:
                for batch in batches:
                    wall += identifier.apply(batch).wall_time
                fingerprint = _eip_result_fingerprint(identifier.result)
        finally:
            if instrumented:
                uninstall()
                disable_collection()
        return wall, fingerprint, tracer

    off_walls: list[float] = []
    on_walls: list[float] = []
    off_fingerprint = on_fingerprint = ""
    tracer = None
    for _ in range(reps):
        wall, off_fingerprint, _ = maintain(False)
        off_walls.append(wall)
        wall, on_fingerprint, tracer = maintain(True)
        on_walls.append(wall)
    if off_fingerprint != on_fingerprint:
        raise AssertionError(
            f"instrumentation changed the maintained answer: "
            f"{on_fingerprint} != {off_fingerprint}"
        )
    best_off = min(off_walls)
    best_on = min(on_walls)
    overhead_pct = (
        (best_on - best_off) / best_off * 100.0 if best_off else 0.0
    )

    # Round-trip 1: the final instrumented trace through JSON-lines.
    records = tracer.records()
    with tempfile.TemporaryDirectory() as scratch:
        trace_path = Path(scratch) / "trace.jsonl"
        tracer.dump_jsonl(trace_path)
        revived = load_trace(trace_path)
    trace_ok = (
        bool(records)
        and revived == records
        and "stream.tick" in trace_breakdown(revived)
    )

    # Round-trip 2: a live scrape of the process-global registry.  The
    # /healthz request before the scrape seeds the request histogram, so
    # the exposition must carry the HTTP families alongside the streaming
    # counters the maintenance runs recorded.  parse_prometheus raises
    # ValueError on any malformed line — a loud failure, not a False flag.
    with BackgroundServer() as server:
        _http_json("GET", f"{server.base_url}/healthz")
        with urllib.request.urlopen(
            f"{server.base_url}/metrics", timeout=30
        ) as response:
            content_type = response.headers.get("Content-Type", "")
            text = response.read().decode("utf-8")
    samples = parse_prometheus(text)
    ticks = [
        value for _labels, value in samples.get("repro_stream_ticks_total", [])
    ]
    scrape_ok = (
        content_type.startswith("text/plain")
        and sum(ticks) >= len(batches)
        and "repro_stream_tick_seconds_bucket" in samples
        and "repro_http_requests_total" in samples
        and "repro_http_request_seconds_bucket" in samples
    )

    counter_series = len(registry().counters("repro_"))
    return [
        ObsRow(
            dataset=dataset,
            mode="uninstrumented",
            batches=len(batches),
            reps=reps,
            wall_time=best_off,
            fingerprint=off_fingerprint,
        ),
        ObsRow(
            dataset=dataset,
            mode="instrumented",
            batches=len(batches),
            reps=reps,
            wall_time=best_on,
            spans=len(records),
            counter_series=counter_series,
            overhead_pct=overhead_pct,
            scrape_ok=scrape_ok,
            trace_ok=trace_ok,
            fingerprint=on_fingerprint,
        ),
    ]


# ----------------------------------------------------------------------
# adversarial storm suite (differential oracle + distillation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StormRow:
    """One storm family replayed through the differential oracle.

    ``divergences`` counts first-divergences across the backend grid for
    this family (the smoke gate fails on any non-zero value);
    ``shrunk_ops`` is the total op count of the distilled counterexamples
    and ``deduped`` how many were dropped as MinHash near-duplicates of
    already-known regression cases.
    """

    dataset: str
    storm: str
    backend: str
    batches: int
    ops: int
    checks: int
    wall_time: float
    divergences: int = 0
    shrunk_ops: int = 0
    deduped: int = 0

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "storm": self.storm,
            "backend": self.backend,
            "batches": self.batches,
            "ops": self.ops,
            "checks": self.checks,
            "wall_s": round(self.wall_time, 3),
            "checks_per_s": (
                round(self.checks / self.wall_time, 1) if self.wall_time else 0.0
            ),
            "divergences": self.divergences,
            "shrunk_ops": self.shrunk_ops,
            "deduped": self.deduped,
        }


def run_storm_suite(
    dataset: str,
    graph: Graph,
    rules: Sequence[GPAR],
    num_workers: int,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    num_batches: int = 3,
    batch_size: int = 6,
    eta: float = 0.5,
    algorithm: str = "match",
    seed: int = 0,
    cases_dir: str | None = None,
) -> list["StormRow"]:
    """Every storm family × backend through the differential oracle.

    Each family samples its batch sequence once (against a scratch copy, so
    every backend replays identical ops), then a single-backend
    :class:`repro.testing.DifferentialOracle` checks the maintained
    streaming state against fresh recomputes after every batch.  Any
    divergence is distilled to a minimal counterexample and — unless MinHash
    flags it as a near-duplicate of a known case — written to *cases_dir*
    (default ``tests/regressions/``) for the pytest collector to replay
    forever.  The smoke gate downstream fails on any non-zero
    ``divergences`` column.
    """
    from repro.testing import (
        CASES_DIR,
        STORM_FAMILIES,
        DifferentialOracle,
        distill,
        from_distilled,
        is_duplicate,
        write_case,
    )
    from repro.testing.cases import known_signatures

    target_dir = CASES_DIR if cases_dir is None else cases_dir
    rows: list[StormRow] = []
    for storm in sorted(STORM_FAMILIES):
        sampler = STORM_FAMILIES[storm]
        scratch = graph.copy()
        batches = []
        for position in range(num_batches):
            batch = sampler(scratch, size=batch_size, seed=seed * 1000 + position)
            batch.apply(scratch)
            batches.append(batch)
        total_ops = sum(len(batch) for batch in batches)
        for backend in backends:
            oracle = DifferentialOracle(
                rules,
                algorithm=algorithm,
                eta=eta,
                num_workers=num_workers,
                seed=seed,
                backends=(backend,),
                index_modes=(True,),
            )
            report = oracle.run(graph, batches)
            shrunk_ops = 0
            deduped = 0
            known = known_signatures(target_dir)
            for position, divergence in enumerate(report.divergences):
                distilled = distill(graph, batches, oracle.checker_for(divergence))
                shrunk_ops += distilled.num_ops
                if is_duplicate(distilled.signature, known):
                    deduped += 1
                    continue
                known.append(distilled.signature)
                case = from_distilled(
                    f"storm-{dataset}-{storm}-{backend}-{position}",
                    f"storm harness: {storm} family diverged on {backend} "
                    f"({divergence.describe()})",
                    distilled,
                    rules,
                    config={
                        "algorithm": algorithm,
                        "eta": eta,
                        "num_workers": num_workers,
                        "seed": seed,
                        "backend": backend,
                        "use_index": True,
                    },
                )
                write_case(case, target_dir)
            rows.append(
                StormRow(
                    dataset=dataset,
                    storm=storm,
                    backend=backend,
                    batches=len(batches),
                    ops=total_ops,
                    checks=report.checks,
                    wall_time=report.wall_time,
                    divergences=len(report.divergences),
                    shrunk_ops=shrunk_ops,
                    deduped=deduped,
                )
            )
    return rows
