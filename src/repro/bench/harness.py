"""Single-configuration runners used by the benchmark modules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.identification import identify_entities
from repro.mining import DMine, DMineConfig
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern


@dataclass(frozen=True)
class DMineRow:
    """One measured point of a DMine series."""

    dataset: str
    algorithm: str
    parameter: str
    value: object
    simulated_parallel_time: float
    wall_time: float
    rules_discovered: int
    candidates_generated: int
    objective: float

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.parameter: self.value,
            "sim_parallel_s": round(self.simulated_parallel_time, 3),
            "wall_s": round(self.wall_time, 3),
            "rules": self.rules_discovered,
            "candidates": self.candidates_generated,
            "F(Lk)": round(self.objective, 3),
        }


@dataclass(frozen=True)
class EIPRow:
    """One measured point of a Match/Matchc/disVF2 series."""

    dataset: str
    algorithm: str
    parameter: str
    value: object
    simulated_parallel_time: float
    wall_time: float
    identified: int
    candidates_examined: int

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            self.parameter: self.value,
            "sim_parallel_s": round(self.simulated_parallel_time, 3),
            "wall_s": round(self.wall_time, 3),
            "identified": self.identified,
            "checks": self.candidates_examined,
        }


# Benchmark-sized mining defaults: small enough that a full sweep finishes in
# minutes, large enough that the optimisation effects are visible.
MINING_DEFAULTS = dict(
    k=4,
    d=2,
    lam=0.5,
    max_edges=2,
    max_extensions_per_rule=8,
    max_rules_per_round=30,
)


def run_dmine_config(
    dataset: str,
    graph: Graph,
    predicate: Pattern,
    num_workers: int,
    sigma: int,
    optimized: bool = True,
    parameter: str = "n",
    value: object = None,
    **overrides,
) -> DMineRow:
    """Run one DMine / DMineno configuration and return its measured row."""
    settings = {**MINING_DEFAULTS, **overrides}
    config = DMineConfig(num_workers=num_workers, sigma=sigma, **settings)
    if not optimized:
        config = config.without_optimizations()
    result = DMine(config).mine(graph, predicate)
    return DMineRow(
        dataset=dataset,
        algorithm="DMine" if optimized else "DMineno",
        parameter=parameter,
        value=value if value is not None else num_workers,
        simulated_parallel_time=result.timings.simulated_parallel_time,
        wall_time=result.timings.wall_time,
        rules_discovered=result.num_rules_discovered,
        candidates_generated=result.candidates_generated,
        objective=result.objective_value,
    )


def run_eip_config(
    dataset: str,
    graph: Graph,
    rules: tuple[GPAR, ...],
    num_workers: int,
    algorithm: str,
    eta: float = 1.0,
    parameter: str = "n",
    value: object = None,
) -> EIPRow:
    """Run one Match / Matchc / disVF2 configuration and return its row."""
    result = identify_entities(
        graph, list(rules), eta=eta, num_workers=num_workers, algorithm=algorithm
    )
    return EIPRow(
        dataset=dataset,
        algorithm=algorithm,
        parameter=parameter,
        value=value if value is not None else num_workers,
        simulated_parallel_time=result.timings.simulated_parallel_time,
        wall_time=result.timings.wall_time,
        identified=len(result.identified),
        candidates_examined=result.candidates_examined,
    )
