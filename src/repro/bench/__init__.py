"""Benchmark harness shared by the ``benchmarks/`` suite.

Each benchmark module under ``benchmarks/`` regenerates one table or figure
of the paper's evaluation (Section 6).  The helpers here build the workloads
(graphs, predicates, rule sets Σ), run one configuration of DMine / DMineno /
Match / Matchc / disVF2 on any execution backend, and format the measured
series — as the paper-style text tables and as machine-readable JSON for the
CI perf trajectory.  ``python -m repro.bench.smoke`` runs a tiny workload per
algorithm family as a fast regression canary for the process backend.
"""

from repro.bench.workloads import (
    eip_workload,
    mining_workload,
    synthetic_eip_workload,
    synthetic_mining_workload,
)
from repro.bench.harness import (
    DMineRow,
    EIPRow,
    run_dmine_backends,
    run_dmine_config,
    run_eip_backends,
    run_eip_config,
)
from repro.bench.reporting import format_rows, print_series, rows_as_json, wall_speedups

__all__ = [
    "mining_workload",
    "eip_workload",
    "synthetic_mining_workload",
    "synthetic_eip_workload",
    "DMineRow",
    "EIPRow",
    "run_dmine_config",
    "run_eip_config",
    "run_dmine_backends",
    "run_eip_backends",
    "format_rows",
    "print_series",
    "rows_as_json",
    "wall_speedups",
]
