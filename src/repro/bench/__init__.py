"""Benchmark harness shared by the ``benchmarks/`` suite.

Each benchmark module under ``benchmarks/`` regenerates one table or figure
of the paper's evaluation (Section 6).  The helpers here build the workloads
(graphs, predicates, rule sets Σ), run one configuration of DMine / DMineno /
Match / Matchc / disVF2, and format the measured series so the benchmark
output prints the same rows the paper reports.
"""

from repro.bench.workloads import (
    eip_workload,
    mining_workload,
    synthetic_eip_workload,
    synthetic_mining_workload,
)
from repro.bench.harness import (
    DMineRow,
    EIPRow,
    run_dmine_config,
    run_eip_config,
)
from repro.bench.reporting import format_rows, print_series

__all__ = [
    "mining_workload",
    "eip_workload",
    "synthetic_mining_workload",
    "synthetic_eip_workload",
    "DMineRow",
    "EIPRow",
    "run_dmine_config",
    "run_eip_config",
    "format_rows",
    "print_series",
]
