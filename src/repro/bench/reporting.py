"""Formatting of benchmark series in the style of the paper's figures."""

from __future__ import annotations

from typing import Iterable


def format_rows(rows: Iterable) -> str:
    """Render a list of DMineRow/EIPRow (or dicts) as an aligned text table."""
    dictionaries = [row.as_dict() if hasattr(row, "as_dict") else dict(row) for row in rows]
    if not dictionaries:
        return "(no rows)"
    columns = list(dictionaries[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(d.get(column, ""))) for d in dictionaries))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for entry in dictionaries:
        lines.append(
            "  ".join(str(entry.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def print_series(title: str, rows: Iterable) -> None:
    """Print a titled series table (what the benchmark logs show)."""
    print(f"\n== {title} ==")
    print(format_rows(rows))
