"""Formatting of benchmark series in the style of the paper's figures."""

from __future__ import annotations

import json
from typing import Iterable


def wall_speedups(rows: Iterable, baseline: str = "sequential") -> dict[str, float]:
    """Real wall-clock speedup per backend, relative to *baseline*.

    *rows* need ``backend`` and ``wall_time`` attributes (or keys).  Returns
    ``{backend: baseline_wall / backend_wall}`` — the measured counterpart of
    the simulated ``RunTimings.speedup``; backends whose wall time is zero
    (degenerate tiny runs) are omitted.  An absent baseline yields ``{}``.
    """

    def _get(row, attribute):
        if hasattr(row, attribute):
            return getattr(row, attribute)
        return row[attribute]

    by_backend = {_get(row, "backend"): float(_get(row, "wall_time")) for row in rows}
    baseline_wall = by_backend.get(baseline)
    if not baseline_wall:
        return {}
    return {
        backend: baseline_wall / wall
        for backend, wall in by_backend.items()
        if wall > 0
    }


def rows_as_json(name: str, title: str, rows: Iterable) -> str:
    """Serialise a measured series as machine-readable JSON.

    The shape (``{"name", "title", "rows": [...]}``) is what the CI smoke
    job and the ``BENCH_*.json`` perf-trajectory files consume.
    """
    dictionaries = [row.as_dict() if hasattr(row, "as_dict") else dict(row) for row in rows]
    return json.dumps(
        {"name": name, "title": title, "rows": dictionaries},
        indent=2,
        sort_keys=True,
        default=str,
    )


def format_rows(rows: Iterable) -> str:
    """Render a list of DMineRow/EIPRow (or dicts) as an aligned text table."""
    dictionaries = [row.as_dict() if hasattr(row, "as_dict") else dict(row) for row in rows]
    if not dictionaries:
        return "(no rows)"
    columns = list(dictionaries[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(d.get(column, ""))) for d in dictionaries))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for entry in dictionaries:
        lines.append(
            "  ".join(str(entry.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def print_series(title: str, rows: Iterable) -> None:
    """Print a titled series table (what the benchmark logs show)."""
    print(f"\n== {title} ==")
    print(format_rows(rows))
