"""Benchmark smoke runner: one tiny fig5 workload per algorithm family.

Used by the CI benchmark-smoke job to catch pickling and hang regressions in
the execution backends without paying for a full fig5 sweep::

    python -m repro.bench.smoke --family dmine --backend processes --workers 2
    python -m repro.bench.smoke --family match --backend processes --workers 2

Each run executes the configuration on the sequential baseline and on the
requested backend, asserts the two produce identical results, prints the
paper-style table and writes a machine-readable ``BENCH_smoke_<family>.json``
(same row shape as ``benchmarks/results``) so successive CI runs can track
the perf trajectory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.harness import run_dmine_backends, run_eip_backends
from repro.bench.reporting import format_rows, rows_as_json, wall_speedups
from repro.bench.workloads import eip_workload, mining_workload
from repro.parallel.executor import BACKENDS

FAMILIES = ("dmine", "match")

# Tiny-but-nontrivial smoke scales: seconds per family, not minutes.
SMOKE_SCALE = 400
SMOKE_SIGMA = 2
SMOKE_RULES = 6


def run_smoke(
    family: str,
    backend: str,
    workers: int,
    pool_size: int | None = None,
    scale: int = SMOKE_SCALE,
) -> list:
    """Run the family's smoke workload on sequential + *backend*; return rows."""
    if family == "dmine":
        graph, predicate = mining_workload("synthetic", scale)
        return run_dmine_backends(
            "synthetic",
            graph,
            predicate,
            num_workers=workers,
            sigma=SMOKE_SIGMA,
            backends=[backend],
            executor_workers=pool_size,
        )
    if family == "match":
        graph, rules = eip_workload("synthetic", num_rules=SMOKE_RULES, scale=scale)
        return run_eip_backends(
            "synthetic",
            graph,
            rules,
            num_workers=workers,
            algorithm="match",
            eta=0.5,
            backends=[backend],
            executor_workers=pool_size,
        )
    raise ValueError(f"unknown family {family!r}; expected one of {FAMILIES}")


def _check_equivalence(rows) -> None:
    """The smoke's correctness gate: every backend must match sequential.

    Compares the rows' content *fingerprints* (hash of the full rule set /
    identified-entity set), so a backend returning different-but-same-sized
    results fails loudly.
    """
    fingerprints = {row.backend: row.fingerprint for row in rows}
    reference = fingerprints.get("sequential")
    for backend, fingerprint in fingerprints.items():
        if fingerprint != reference:
            raise SystemExit(
                f"backend {backend!r} diverged from sequential: "
                f"result fingerprint {fingerprint} != {reference}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-smoke",
        description="Tiny per-family benchmark smoke run for CI.",
    )
    parser.add_argument("--family", choices=list(FAMILIES), required=True)
    parser.add_argument("--backend", choices=list(BACKENDS), default="processes")
    parser.add_argument("--workers", type=int, default=2, help="fragments / BSP workers")
    parser.add_argument("--pool-size", type=int, default=None, dest="pool_size")
    parser.add_argument("--scale", type=int, default=SMOKE_SCALE, help="workload node count")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default BENCH_smoke_<family>.json in cwd)",
    )
    args = parser.parse_args(argv)

    rows = run_smoke(args.family, args.backend, args.workers, args.pool_size, args.scale)
    _check_equivalence(rows)

    title = f"smoke {args.family} (n={args.workers}, backend={args.backend})"
    print(f"== {title} ==")
    print(format_rows(rows))
    speedups = wall_speedups(rows)
    if args.backend in speedups:
        print(f"wall speedup ({args.backend} vs sequential): {speedups[args.backend]:.2f}x")

    out = args.out if args.out is not None else Path(f"BENCH_smoke_{args.family}.json")
    out.write_text(rows_as_json(f"smoke_{args.family}", title, rows) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
