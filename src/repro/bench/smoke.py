"""Benchmark smoke runner: one tiny fig5 workload per algorithm family.

Used by the CI benchmark-smoke job to catch pickling and hang regressions in
the execution backends without paying for a full fig5 sweep::

    python -m repro.bench.smoke --family dmine --backend processes --workers 2
    python -m repro.bench.smoke --family match --backend processes --workers 2
    python -m repro.bench.smoke --family index --workers 2

Each run executes the configuration on the sequential baseline and on the
requested backend, asserts the two produce identical results, prints the
paper-style table and writes a machine-readable ``BENCH_smoke_<family>.json``
(same row shape as ``benchmarks/results``) so successive CI runs can track
the perf trajectory.

The ``index`` family is the indexed-vs-unindexed gate of the resident
:class:`repro.graph.index.FragmentIndex`: it measures repeated matching
traffic over one resident graph with the index off and on (the
``index_speedup`` rows), and runs the same EIP configuration across the
sequential/threads/processes backends in both modes, requiring one identical
result fingerprint everywhere.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.harness import (
    run_dmine_backends,
    run_eip_backends,
    run_eip_index_comparison,
    run_matching_index_comparison,
)
from repro.bench.reporting import format_rows, rows_as_json, wall_speedups
from repro.bench.workloads import eip_workload, mining_workload
from repro.parallel.executor import BACKENDS

FAMILIES = ("dmine", "match", "index")

# Tiny-but-nontrivial smoke scales: seconds per family, not minutes.
SMOKE_SCALE = 400
SMOKE_SIGMA = 2
SMOKE_RULES = 6

# The index comparison runs on the largest synthetic workload of the smoke
# tier: big enough that matching (not partitioning) dominates, so the
# measured index speedup reflects the hot path.
INDEX_SCALE = 4000
INDEX_RULES = 16
INDEX_REPS = 3


def run_smoke(
    family: str,
    backend: str | None,
    workers: int,
    pool_size: int | None = None,
    scale: int | None = None,
) -> list:
    """Run the family's smoke workload on sequential + *backend*; return rows.

    *backend* ``None`` picks the family default: ``processes`` for the
    dmine/match families, *all* backends for the index family's
    cross-backend equivalence gate.  An explicit backend restricts the index
    family to sequential + that backend.
    """
    if scale is None:
        scale = INDEX_SCALE if family == "index" else SMOKE_SCALE
    if family != "index" and backend is None:
        backend = "processes"
    if family == "dmine":
        graph, predicate = mining_workload("synthetic", scale)
        return run_dmine_backends(
            "synthetic",
            graph,
            predicate,
            num_workers=workers,
            sigma=SMOKE_SIGMA,
            backends=[backend],
            executor_workers=pool_size,
        )
    if family == "match":
        graph, rules = eip_workload("synthetic", num_rules=SMOKE_RULES, scale=scale)
        return run_eip_backends(
            "synthetic",
            graph,
            rules,
            num_workers=workers,
            algorithm="match",
            eta=0.5,
            backends=[backend],
            executor_workers=pool_size,
        )
    if family == "index":
        backends = (
            BACKENDS
            if backend is None
            else tuple(dict.fromkeys(("sequential", backend)))
        )
        graph, rules = eip_workload("synthetic", num_rules=INDEX_RULES, scale=scale)
        # Part 1: matching traffic, index off vs on (the measured speedup).
        rows: list = list(
            run_matching_index_comparison("synthetic", graph, rules, reps=INDEX_REPS)
        )
        # Part 2: the same EIP configuration across the selected backends in
        # both modes — 2 × |backends| runs, one fingerprint allowed.
        rows.extend(
            run_eip_index_comparison(
                "synthetic",
                graph,
                rules,
                num_workers=workers,
                algorithm="match",
                eta=0.5,
                backends=backends,
                executor_workers=pool_size,
            )
        )
        return rows
    raise ValueError(f"unknown family {family!r}; expected one of {FAMILIES}")


def _check_equivalence(rows) -> None:
    """The smoke's correctness gate: every backend must match sequential.

    Compares the rows' content *fingerprints* (hash of the full rule set /
    identified-entity set), so a backend returning different-but-same-sized
    results fails loudly.
    """
    fingerprints = {row.backend: row.fingerprint for row in rows}
    reference = fingerprints.get("sequential")
    for backend, fingerprint in fingerprints.items():
        if fingerprint != reference:
            raise SystemExit(
                f"backend {backend!r} diverged from sequential: "
                f"result fingerprint {fingerprint} != {reference}"
            )


def _index_speedups(rows) -> dict[str, float]:
    """``{algorithm@backend: index_speedup}`` of the indexed rows."""
    return {
        f"{row.algorithm}@{row.backend}": row.index_speedup
        for row in rows
        if getattr(row, "index_speedup", None) is not None
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-smoke",
        description="Tiny per-family benchmark smoke run for CI.",
    )
    parser.add_argument("--family", choices=list(FAMILIES), required=True)
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="backend to compare against sequential (default: processes; "
        "the index family runs all backends unless one is given)",
    )
    parser.add_argument("--workers", type=int, default=2, help="fragments / BSP workers")
    parser.add_argument("--pool-size", type=int, default=None, dest="pool_size")
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help=f"workload node count (default {SMOKE_SCALE}, index family {INDEX_SCALE})",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default BENCH_smoke_<family>.json in cwd)",
    )
    args = parser.parse_args(argv)

    backend = args.backend
    if backend is None and args.family != "index":
        backend = "processes"
    rows = run_smoke(args.family, backend, args.workers, args.pool_size, args.scale)
    if args.family == "index":
        # The cross-backend × cross-mode fingerprint gates already ran inside
        # the comparison runners; here we only report the measurements.
        shown = "/".join(BACKENDS) if backend is None else f"sequential/{backend}"
        title = f"smoke index (n={args.workers}, backends={shown})"
        print(f"== {title} ==")
        matching_rows = [row for row in rows if hasattr(row, "patterns_matched")]
        eip_rows = [row for row in rows if not hasattr(row, "patterns_matched")]
        print("-- matching traffic (fresh matcher per batch) --")
        print(format_rows(matching_rows))
        print("-- EIP match, every backend x index mode (one fingerprint) --")
        print(format_rows(eip_rows))
        for name, speedup in sorted(_index_speedups(rows).items()):
            print(f"index speedup ({name}): {speedup:.2f}x")
    else:
        _check_equivalence(rows)
        title = f"smoke {args.family} (n={args.workers}, backend={backend})"
        print(f"== {title} ==")
        print(format_rows(rows))
        speedups = wall_speedups(rows)
        if backend in speedups:
            print(f"wall speedup ({backend} vs sequential): {speedups[backend]:.2f}x")

    out = args.out if args.out is not None else Path(f"BENCH_smoke_{args.family}.json")
    out.write_text(rows_as_json(f"smoke_{args.family}", title, rows) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
