"""Benchmark smoke runner: one tiny fig5 workload per algorithm family.

Used by the CI benchmark-smoke job to catch pickling and hang regressions in
the execution backends without paying for a full fig5 sweep::

    python -m repro.bench.smoke --family dmine --backend processes --workers 2
    python -m repro.bench.smoke --family match --backend processes --workers 2
    python -m repro.bench.smoke --family index --workers 2
    python -m repro.bench.smoke --family columnar --workers 2
    python -m repro.bench.smoke --family incremental --workers 2
    python -m repro.bench.smoke --family stream --workers 2
    python -m repro.bench.smoke --family stream --deletion-bias 0.7 --workers 2
    python -m repro.bench.smoke --family lifecycle --workers 2
    python -m repro.bench.smoke --family obs --workers 2

Each run executes the configuration on the sequential baseline and on the
requested backend, asserts the two produce identical results, prints the
paper-style table and always writes a machine-readable ``BENCH_<family>.json``
to the working directory — the repo root in CI — (same row shape as
``benchmarks/results``) so successive CI runs can track the perf
trajectory; CI uploads them as workflow artifacts.

The ``index`` family is the indexed-vs-unindexed gate of the resident
:class:`repro.graph.index.FragmentIndex`: it measures repeated matching
traffic over one resident graph with the index off and on (the
``index_speedup`` rows), and runs the same EIP configuration across the
sequential/threads/processes backends in both modes, requiring one identical
result fingerprint everywhere.

The ``columnar`` family is the same gate for the columnar kernel
(:mod:`repro.graph.columnar`, docs/columnar.md): matching traffic on the
dense 4000-node workload with the kernel off and on (``columnar_speedup``
rows, gated ≥2× sequentially when numpy serves the compiled arrays), one
EIP and one DMine configuration across every backend in both modes — one
result fingerprint allowed — and a first 100k-node scenario (25× the dense
scale) that must simply complete under the smoke timeout.

The ``incremental`` family is the incremental-vs-from-scratch gate of
:mod:`repro.matching.incremental`: one DMine and one EIP configuration on a
dense synthetic workload, across all backends with incremental matching off
and on — one result fingerprint everywhere, and a regression gate that fails
the run if the sequential DMine ``incremental_speedup`` drops below 1.0.

The ``stream`` family is the repair-vs-recompute gate of :mod:`repro.stream`:
one sampled update sequence on the dense workload replayed in *repair* mode
(a maintained :class:`~repro.stream.StreamingIdentifier` /
:class:`~repro.stream.MaintainedMatchView`) and in *recompute* mode (a full
run after every batch), per backend.  Every batch's maintained result is
checked byte-identical to a from-scratch recompute, and the run fails if the
sequential ``repair_speedup`` drops below 1.0.  With ``--deletion-bias`` the
family switches to the deletion-heavy churn variant: one long shrinking
maintenance run recording resident fragment size per batch
(``BENCH_stream_churn.json``), gated on bounded residency (shedding and
log compaction must keep pace — see ``docs/lifecycle.md``).

The ``lifecycle`` family is the checkpoint→restart gate: per backend, a
maintained run is ``save_state``d, ``restore``d and required byte-identical
before and after, including one further batch against a fresh recompute.

The ``serve`` family is the serving-contract gate of :mod:`repro.serve`:
a loopback HTTP server hosts one session on the dense workload while 8
reader threads paginate ``GET /answer`` and a writer POSTs update batches.
The run fails if any pagination pass mixes graph versions (a torn read) or
if any served delta — per-tick response and subscription replay alike —
is not byte-identical to the set-difference of fresh recomputes; the
trajectory rows report p50/p99 read latency and ticks/sec
(``BENCH_serve.json``).

The ``obs`` family is the cost-of-observability gate of :mod:`repro.obs`
(docs/observability.md): the dense streaming workload maintained with
instrumentation fully off (the module-level no-op span path) and fully on
(installed tracer + ``REPRO_OBS`` statistics collection), interleaved
best-of-reps.  The run fails if the instrumented wall regresses more than
5% over the uninstrumented one, if a live ``GET /metrics`` scrape does not
parse under the strict Prometheus parser with the stream/http families
present, or if the trace does not survive its JSON-lines round-trip
(``BENCH_obs.json``).

``--profile`` wraps the whole family in :mod:`cProfile` and prints the top
25 functions by cumulative time — the first stop when a trajectory row
regresses.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

from repro.bench.harness import (
    run_dmine_backends,
    run_dmine_columnar_comparison,
    run_dmine_incremental_comparison,
    run_eip_backends,
    run_eip_columnar_comparison,
    run_eip_incremental_comparison,
    run_eip_index_comparison,
    run_eip_stream_comparison,
    run_lifecycle_roundtrip,
    run_matching_columnar_comparison,
    run_matching_index_comparison,
    run_matching_traffic,
    run_matchview_stream_comparison,
    run_obs_overhead,
    run_serve_load,
    run_storm_suite,
    run_stream_churn,
    run_tenant_scaling,
)
from repro.bench.reporting import format_rows, rows_as_json, wall_speedups
from repro.bench.workloads import (
    dense_eip_workload,
    dense_mining_workload,
    eip_workload,
    mining_workload,
    storm_workload,
    stream_workload,
)
from repro.parallel.executor import BACKENDS

FAMILIES = (
    "dmine",
    "match",
    "index",
    "columnar",
    "incremental",
    "stream",
    "lifecycle",
    "serve",
    "tenant",
    "storm",
    "obs",
)

# Tiny-but-nontrivial smoke scales: seconds per family, not minutes.
SMOKE_SCALE = 400
SMOKE_SIGMA = 2
SMOKE_RULES = 6

# The index and incremental comparisons run on the largest synthetic
# workloads of the smoke tier: big enough that matching (not partitioning)
# dominates, so the measured speedups reflect the hot path.
INDEX_SCALE = 4000
INDEX_RULES = 16
INDEX_REPS = 3

# The columnar comparison runs matching traffic, EIP and DMine on the dense
# workload with the kernel off and on, then a first large-regime scenario:
# columnar-on matching traffic on a graph COLUMNAR_LARGE_FACTOR × the dense
# scale (100k nodes at the default), sharing the dense label universe so
# the same Σ applies.  Completing under the smoke timeout is that row's
# whole gate.
COLUMNAR_SCALE = 4000
COLUMNAR_RULES = 12
# Enough per-fragment traffic that the one-time compile amortizes the way it
# does in production (a resident fragment serves many rounds, not three).
COLUMNAR_REPS = 8
COLUMNAR_LARGE_FACTOR = 25
COLUMNAR_LARGE_RULES = 4

INCREMENTAL_SCALE = 4000
INCREMENTAL_RULES = 16
# Deeper levelwise search than MINING_DEFAULTS: the incremental matcher's
# gains compound with every level that can delta-extend its parent.
INCREMENTAL_MINING = dict(
    max_edges=3, max_extensions_per_rule=8, max_rules_per_round=30
)

# The streaming family replays one sampled update sequence in repair and
# recompute mode on the dense 4000-node workload; a few medium batches keep
# the smoke honest (every batch is gate-checked against a full recompute)
# without the recompute half dominating the CI budget.
STREAM_SCALE = 4000
STREAM_RULES = 12
STREAM_BATCHES = 3
STREAM_BATCH_SIZE = 8

# The deletion-heavy churn variant (`--family stream --deletion-bias 0.7`)
# replays enough shrinking batches that unbounded resident growth would be
# visible, and gates on the resident-size trajectory instead of speedups.
CHURN_BATCHES = 50
CHURN_BATCH_SIZE = 16

# The lifecycle family checkpoints a maintained run, restarts it on every
# backend, and gates on byte-identical answers before and after.
LIFECYCLE_BATCHES = 3
LIFECYCLE_BATCH_SIZE = 8

# The serve family runs N concurrent HTTP readers against a hosted session
# on the dense workload while updates tick, gating on the serving contract
# (no torn reads, deltas byte-identical to fresh recomputes) and reporting
# the read-latency distribution and tick throughput.
SERVE_CLIENTS = 8
SERVE_BATCHES = 3
SERVE_BATCH_SIZE = 8

# The tenant family admits TENANT_COUNT stride-1 overlapping rule sets
# (each sharing all but one rule with its neighbour, cut from one mined
# pool) into a shared MultiTenantIdentifier on the dense workload, then
# replays update batches against the shared core and a single-tenant
# baseline.  Every projection is gated byte-identical to an independent
# run inside the runner; the gate here watches the scaling trajectory —
# marginal admission and steady-state cost both at most
# TENANT_MARGINAL_LIMIT x the baseline, a genuinely deduplicated union,
# and non-zero shared-prefix hits.
TENANT_COUNT = 8
TENANT_RULES = 6
TENANT_POOL_RULES = 16
TENANT_BATCHES = 2
TENANT_BATCH_SIZE = 8
TENANT_MARGINAL_LIMIT = 0.5
TENANT_UNION_LIMIT = 0.6

# The obs family maintains the dense streaming workload with observability
# fully off and fully on (installed tracer + REPRO_OBS collection),
# interleaved best-of-reps, and gates the instrumentation overhead at 5%
# alongside the /metrics scrape and trace JSON-lines round-trips.
# Batches are deliberately large: the per-tick instrumentation cost is
# fixed, so deep ticks keep the measured ratio about the instrumentation
# rather than about timer noise on a near-empty wall.
OBS_BATCHES = 6
OBS_BATCH_SIZE = 24
OBS_REPS = 5
OBS_OVERHEAD_LIMIT_PCT = 5.0

# The storm family replays every adversarial churn generator (correlated
# deletions, label flips, hub churn, ball bursts, plus uniform random)
# through the differential oracle on every backend: maintained streaming
# state vs a fresh recompute after every batch, divergences distilled to
# minimal regression cases.  Scale is SMOKE-tier — the oracle's fresh
# recompute per (batch, backend) dominates, not the maintenance itself.
STORM_SCALE = 400
STORM_RULES = 3
STORM_BATCHES = 3
STORM_BATCH_SIZE = 6


def run_smoke(
    family: str,
    backend: str | None,
    workers: int,
    pool_size: int | None = None,
    scale: int | None = None,
    deletion_bias: float | None = None,
) -> list:
    """Run the family's smoke workload on sequential + *backend*; return rows.

    *backend* ``None`` picks the family default: ``processes`` for the
    dmine/match families, *all* backends for the index and incremental
    families' cross-backend equivalence gates.  An explicit backend
    restricts the comparison families to sequential + that backend.
    ``deletion_bias`` switches the ``stream`` family into its
    deletion-heavy churn variant (resident-size trajectory instead of the
    repair-speedup comparison).
    """
    if scale is None:
        if family == "index":
            scale = INDEX_SCALE
        elif family == "columnar":
            scale = COLUMNAR_SCALE
        elif family == "incremental":
            scale = INCREMENTAL_SCALE
        elif family in ("stream", "lifecycle", "serve", "tenant", "obs"):
            scale = STREAM_SCALE
        elif family == "storm":
            scale = STORM_SCALE
        else:
            scale = SMOKE_SCALE
    if (
        family
        not in (
            "index",
            "columnar",
            "incremental",
            "stream",
            "lifecycle",
            "serve",
            "tenant",
            "storm",
            "obs",
        )
        and backend is None
    ):
        backend = "processes"
    if family == "dmine":
        graph, predicate = mining_workload("synthetic", scale)
        return run_dmine_backends(
            "synthetic",
            graph,
            predicate,
            num_workers=workers,
            sigma=SMOKE_SIGMA,
            backends=[backend],
            executor_workers=pool_size,
        )
    if family == "match":
        graph, rules = eip_workload("synthetic", num_rules=SMOKE_RULES, scale=scale)
        return run_eip_backends(
            "synthetic",
            graph,
            rules,
            num_workers=workers,
            algorithm="match",
            eta=0.5,
            backends=[backend],
            executor_workers=pool_size,
        )
    if family == "index":
        backends = (
            BACKENDS
            if backend is None
            else tuple(dict.fromkeys(("sequential", backend)))
        )
        graph, rules = eip_workload("synthetic", num_rules=INDEX_RULES, scale=scale)
        # Part 1: matching traffic, index off vs on (the measured speedup).
        rows: list = list(
            run_matching_index_comparison("synthetic", graph, rules, reps=INDEX_REPS)
        )
        # Part 2: the same EIP configuration across the selected backends in
        # both modes — 2 × |backends| runs, one fingerprint allowed.
        rows.extend(
            run_eip_index_comparison(
                "synthetic",
                graph,
                rules,
                num_workers=workers,
                algorithm="match",
                eta=0.5,
                backends=backends,
                executor_workers=pool_size,
            )
        )
        return rows
    if family == "columnar":
        backends = (
            BACKENDS
            if backend is None
            else tuple(dict.fromkeys(("sequential", backend)))
        )
        graph, rules = stream_workload(scale, COLUMNAR_RULES)
        # Part 1: matching traffic on the dense workload, columnar off vs on
        # (both halves keep the resident index, so the speedup isolates the
        # CSR/profile-matrix kernel).
        rows: list = list(
            run_matching_columnar_comparison(
                "synthetic-dense", graph, rules, reps=COLUMNAR_REPS
            )
        )
        # Part 2: the same EIP configuration across the selected backends in
        # both modes — 2 × |backends| runs, one fingerprint allowed.
        rows.extend(
            run_eip_columnar_comparison(
                "synthetic-dense",
                graph,
                rules,
                num_workers=workers,
                algorithm="match",
                eta=0.5,
                backends=backends,
                executor_workers=pool_size,
            )
        )
        # Part 3: one DMine configuration under the same gate.
        _, predicate = dense_mining_workload(scale)
        rows.extend(
            run_dmine_columnar_comparison(
                "synthetic-dense",
                graph,
                predicate,
                num_workers=workers,
                sigma=SMOKE_SIGMA,
                backends=backends,
                executor_workers=pool_size,
            )
        )
        # Part 4: the first large-regime scenario — columnar-on matching
        # traffic at 25 × the dense scale (100k nodes by default); the dense
        # generator's label universe is scale-independent, so the same Σ
        # applies.  Its gate is simply finishing under the smoke timeout.
        large_scale = scale * COLUMNAR_LARGE_FACTOR
        large_graph, _ = dense_mining_workload(large_scale)
        rows.append(
            run_matching_traffic(
                "synthetic-large",
                large_graph,
                rules[:COLUMNAR_LARGE_RULES],
                "guided",
                use_index=True,
                use_columnar=True,
                reps=1,
                parameter="scale",
                value=large_scale,
            )
        )
        return rows
    if family == "incremental":
        backends = (
            BACKENDS
            if backend is None
            else tuple(dict.fromkeys(("sequential", backend)))
        )
        graph, predicate = dense_mining_workload(scale)
        # Part 1: DMine with incremental matching off vs on, per backend —
        # 2 × |backends| runs, one rule fingerprint allowed.
        rows = list(
            run_dmine_incremental_comparison(
                "synthetic-dense",
                graph,
                predicate,
                num_workers=workers,
                sigma=SMOKE_SIGMA,
                backends=backends,
                executor_workers=pool_size,
                **INCREMENTAL_MINING,
            )
        )
        # Part 2: EIP (prefix-trie sharing) off vs on on the same graph.
        _, rules = dense_eip_workload(scale, INCREMENTAL_RULES)
        rows.extend(
            run_eip_incremental_comparison(
                "synthetic-dense",
                graph,
                rules,
                num_workers=workers,
                algorithm="match",
                eta=0.5,
                backends=backends,
                executor_workers=pool_size,
            )
        )
        return rows
    if family == "lifecycle":
        backends = (
            BACKENDS
            if backend is None
            else tuple(dict.fromkeys(("sequential", backend)))
        )
        graph, rules = stream_workload(scale, STREAM_RULES)
        return run_lifecycle_roundtrip(
            "synthetic-dense",
            graph,
            rules,
            num_workers=workers,
            backends=backends,
            executor_workers=pool_size,
            num_batches=LIFECYCLE_BATCHES,
            batch_size=LIFECYCLE_BATCH_SIZE,
            eta=0.5,
        )
    if family == "stream":
        backends = (
            BACKENDS
            if backend is None
            else tuple(dict.fromkeys(("sequential", backend)))
        )
        graph, rules = stream_workload(scale, STREAM_RULES)
        if deletion_bias is not None:
            # Churn variant: one long deletion-biased maintenance run with
            # the resident-size trajectory as the measurement.
            return run_stream_churn(
                "synthetic-dense",
                graph,
                rules,
                num_workers=workers,
                num_batches=CHURN_BATCHES,
                batch_size=CHURN_BATCH_SIZE,
                deletion_bias=deletion_bias,
                eta=0.5,
            )
        # Part 1: maintained match sets (MatchStore.repair) vs re-matching.
        rows = list(
            run_matchview_stream_comparison(
                "synthetic-dense",
                graph,
                rules,
                num_batches=STREAM_BATCHES,
                batch_size=STREAM_BATCH_SIZE,
            )
        )
        # Part 2: the StreamingIdentifier vs a full recompute per batch, on
        # every selected backend; each batch is gate-checked for identical
        # results inside the runner.
        rows.extend(
            run_eip_stream_comparison(
                "synthetic-dense",
                graph,
                rules,
                num_workers=workers,
                algorithm="match",
                eta=0.5,
                backends=backends,
                executor_workers=pool_size,
                num_batches=STREAM_BATCHES,
                batch_size=STREAM_BATCH_SIZE,
            )
        )
        return rows
    if family == "storm":
        backends = (
            BACKENDS
            if backend is None
            else tuple(dict.fromkeys(("sequential", backend)))
        )
        graph, rules = storm_workload(scale, STORM_RULES)
        return run_storm_suite(
            "synthetic",
            graph,
            rules,
            num_workers=workers,
            backends=backends,
            num_batches=STORM_BATCHES,
            batch_size=STORM_BATCH_SIZE,
            eta=0.5,
            algorithm="match",
        )
    if family == "obs":
        # Sequential-only by design: the overhead gate compares the no-op
        # instrumentation path against the traced one on a pool-free run,
        # so scheduler variance cannot masquerade as tracer cost.
        graph, rules = stream_workload(scale, STREAM_RULES)
        return run_obs_overhead(
            "synthetic-dense",
            graph,
            rules,
            num_workers=workers,
            num_batches=OBS_BATCHES,
            batch_size=OBS_BATCH_SIZE,
            eta=0.5,
            reps=OBS_REPS,
        )
    if family == "tenant":
        backends = (
            BACKENDS
            if backend is None
            else tuple(dict.fromkeys(("sequential", backend)))
        )
        # The mined pool shares antecedent prefixes by construction, so the
        # stride-1 tenant slices overlap exactly the way real co-hosted rule
        # sets do (shared canonical keys + shared prefixes).
        graph, pool = dense_eip_workload(scale, TENANT_POOL_RULES)
        return run_tenant_scaling(
            "synthetic-dense",
            graph,
            pool,
            num_tenants=TENANT_COUNT,
            rules_per_tenant=TENANT_RULES,
            num_workers=workers,
            algorithm="match",
            eta=0.5,
            backends=backends,
            executor_workers=pool_size,
            num_batches=TENANT_BATCHES,
            batch_size=TENANT_BATCH_SIZE,
        )
    if family == "serve":
        # Σ is regenerated server-side from the same (predicate, params) the
        # stream_workload uses, so the bench's mirror rules match the hosted
        # session's rules exactly (run_serve_load checks this by name).
        graph, rules = stream_workload(scale, STREAM_RULES)
        _, predicate = dense_mining_workload(scale)
        edge = predicate.edges()[0]
        session_request = {
            "predicate": (
                f"{predicate.label(predicate.x)}:{edge.label}:{predicate.label(predicate.y)}"
            ),
            "rules": STREAM_RULES,
            "max_edges": 3,
            "d": 2,
            "seed": 11,
            "eta": 0.5,
            "workers": workers,
            "algorithm": "match",
        }
        return run_serve_load(
            "synthetic-dense",
            graph,
            rules,
            session_request,
            clients=SERVE_CLIENTS,
            num_batches=SERVE_BATCHES,
            batch_size=SERVE_BATCH_SIZE,
        )
    raise ValueError(f"unknown family {family!r}; expected one of {FAMILIES}")


def _check_equivalence(rows) -> None:
    """The smoke's correctness gate: every backend must match sequential.

    Compares the rows' content *fingerprints* (hash of the full rule set /
    identified-entity set), so a backend returning different-but-same-sized
    results fails loudly.
    """
    fingerprints = {row.backend: row.fingerprint for row in rows}
    reference = fingerprints.get("sequential")
    for backend, fingerprint in fingerprints.items():
        if fingerprint != reference:
            raise SystemExit(
                f"backend {backend!r} diverged from sequential: "
                f"result fingerprint {fingerprint} != {reference}"
            )


def _index_speedups(rows) -> dict[str, float]:
    """``{algorithm@backend: index_speedup}`` of the indexed rows."""
    return {
        f"{row.algorithm}@{row.backend}": row.index_speedup
        for row in rows
        if getattr(row, "index_speedup", None) is not None
    }


def _columnar_speedups(rows) -> dict[str, float]:
    """``{algorithm@backend: columnar_speedup}`` of the columnar rows."""
    return {
        f"{row.algorithm}@{row.backend}": row.columnar_speedup
        for row in rows
        if getattr(row, "columnar_speedup", None) is not None
    }


def _check_columnar_gate(rows) -> None:
    """Regression gate: the columnar kernel must beat the dict path.

    The cross-backend × cross-mode *result* fingerprints already failed
    inside the comparison runners if anything diverged; this gate watches
    the perf trajectory of the matching-traffic rows (the kernel's hot
    path, measured pool-free).  The required aggregate speedup is ≥2× when
    numpy serves the compiled arrays and ≥1× on the pure-``array`` fallback
    (still forbidden to regress, but the interpreted loops cannot promise
    the vectorized margin).
    """
    from repro.graph.columnar import numpy_active

    threshold = 2.0 if numpy_active() else 1.0
    traffic = [row for row in rows if getattr(row, "parameter", None) == "columnar"]
    dict_wall = sum(row.wall_time for row in traffic if not row.use_columnar)
    columnar_wall = sum(row.wall_time for row in traffic if row.use_columnar)
    if not traffic or not columnar_wall:
        raise SystemExit("columnar run produced no matching-traffic rows")
    aggregate = dict_wall / columnar_wall
    print(
        f"columnar matching-traffic aggregate speedup: {aggregate:.2f}x "
        f"(gate >= {threshold:.1f}x, numpy {'on' if numpy_active() else 'off'})"
    )
    if aggregate < threshold:
        raise SystemExit(
            f"columnar regression: matching-traffic aggregate speedup "
            f"{aggregate:.2f}x < {threshold:.1f}x"
        )


def _incremental_speedups(rows) -> dict[str, float]:
    """``{algorithm@backend: incremental_speedup}`` of the incremental rows."""
    return {
        f"{row.algorithm}@{row.backend}": row.incremental_speedup
        for row in rows
        if getattr(row, "incremental_speedup", None) is not None
    }


def _stream_speedups(rows) -> dict[str, float]:
    """``{algorithm@backend: repair_speedup}`` of the repair rows."""
    return {
        f"{row.algorithm}@{row.backend}": row.repair_speedup
        for row in rows
        if getattr(row, "repair_speedup", None) is not None
    }


def _check_stream_gate(rows) -> None:
    """Regression gate: single-threaded streaming repair must beat recompute.

    Per-batch result equivalence already failed inside the comparison
    runners if repair diverged anywhere; this gate watches the perf
    trajectory.  It covers the sequential EIP rows *and* the pool-free
    ``in-process`` maintained-match-set rows, and deliberately skips the
    thread/process rows, whose pool- and routing-dependent costs
    legitimately vary run to run.
    """
    for row in rows:
        speedup = getattr(row, "repair_speedup", None)
        if speedup is None or row.backend not in ("sequential", "in-process"):
            continue
        if speedup < 1.0:
            raise SystemExit(
                f"streaming regression: {row.backend} {row.algorithm} "
                f"repair_speedup {speedup:.2f} < 1.0"
            )


def _check_churn_gate(rows, workers: int) -> None:
    """Regression gate: deletion-heavy churn must keep resident state bounded.

    Two invariants: (a) the resident node count of the run's last quarter
    never exceeds the first quarter's peak (no monotone growth — shedding
    and checkpointing keep pace with the churn), and (b) every batch leaves
    each retained log under the compaction threshold, so total retained log
    operations stay below ``fraction × resident`` plus a per-fragment
    rounding slack.
    """
    from repro.stream import StreamConfig

    if not rows:
        raise SystemExit("churn run produced no rows")
    fraction = StreamConfig().checkpoint_log_fraction
    quarter = max(1, len(rows) // 4)
    early_peak = max(row.resident_nodes for row in rows[:quarter])
    late_peak = max(row.resident_nodes for row in rows[-quarter:])
    if late_peak > early_peak:
        raise SystemExit(
            f"churn regression: resident fragment nodes grew under a "
            f"deletion-heavy workload (early peak {early_peak}, late peak "
            f"{late_peak})"
        )
    slack = fraction * max(1, workers) + 1
    for row in rows:
        bound = fraction * row.resident_nodes + slack
        if row.log_ops > bound:
            raise SystemExit(
                f"churn regression: batch {row.batch} retains {row.log_ops} "
                f"log ops, above the compaction bound {bound:.0f}"
            )


def _check_incremental_gate(rows) -> None:
    """Regression gate: sequential DMine must not lose from incremental on.

    The cross-backend/cross-mode *result* equivalence already failed inside
    the comparison runners if anything diverged; this gate watches the perf
    trajectory itself.  It pins the sequential backend because pool routing
    on the process backend legitimately varies store hit rates run to run.
    """
    for row in rows:
        speedup = getattr(row, "incremental_speedup", None)
        if speedup is None or row.backend != "sequential":
            continue
        if row.algorithm.startswith("DMine") and speedup < 1.0:
            raise SystemExit(
                f"incremental regression: sequential {row.algorithm} "
                f"incremental_speedup {speedup:.2f} < 1.0"
            )
    # The EIP half of the family must actually take the prefix-trie path —
    # including for the census-split rule in Σ (an isolated free node whose
    # x-part is matched through CensusMatcher substitution).  Zero pool
    # applications on an incremental-on row means trie sharing silently
    # died (e.g. a pattern rewrite broke chain prefixes).
    for row in rows:
        if not hasattr(row, "prefix_pool_hits") or not row.use_incremental:
            continue
        if row.incremental_speedup is None:
            continue  # the "off" twin of a comparison pair
        if row.prefix_pool_hits == 0:
            raise SystemExit(
                f"incremental regression: EIP row ({row.backend}) ran with "
                "use_incremental=True but recorded zero prefix-trie pool hits"
            )


def _check_obs_gate(rows) -> None:
    """Regression gate: observability must stay cheap and round-trip cleanly.

    The runner already failed if instrumentation changed the maintained
    answer; this gate holds the acceptance criteria of the obs layer —
    instrumented-vs-uninstrumented overhead within
    ``OBS_OVERHEAD_LIMIT_PCT``, the live ``GET /metrics`` scrape parsed by
    the strict Prometheus parser with the expected families present, and
    the trace surviving its JSON-lines round-trip.
    """
    instrumented = [row for row in rows if row.mode == "instrumented"]
    if not instrumented:
        raise SystemExit("obs run produced no instrumented row")
    for row in instrumented:
        if not row.scrape_ok:
            raise SystemExit(
                "obs regression: GET /metrics scrape missing the expected "
                "stream/http families (see scrape_ok in BENCH_obs.json)"
            )
        if not row.trace_ok:
            raise SystemExit(
                "obs regression: trace JSON-lines round-trip lost or "
                "mutated spans (see trace_ok in BENCH_obs.json)"
            )
        if row.spans == 0:
            raise SystemExit(
                "obs regression: instrumented run recorded zero spans"
            )
        if row.overhead_pct is not None and row.overhead_pct > OBS_OVERHEAD_LIMIT_PCT:
            raise SystemExit(
                f"obs regression: instrumentation overhead "
                f"{row.overhead_pct:.2f}% > {OBS_OVERHEAD_LIMIT_PCT:.0f}%"
            )


def _check_tenant_gate(rows) -> None:
    """Regression gate: the k-th tenant must ride the shared substrate.

    Cross-Σ result equivalence already failed inside the runner if any
    tenant projection diverged from its independent run; this gate watches
    the scaling trajectory — marginal admission (wall clock *and* backfilled
    centres) at most ``TENANT_MARGINAL_LIMIT ×`` the cold first admission,
    steady-state shared maintenance at most ``TENANT_MARGINAL_LIMIT × k ×``
    the single-tenant baseline (wall clock and per-tick verify count), a
    resident union at most ``TENANT_UNION_LIMIT ×`` the summed tenant Σ
    sizes, and non-zero shared-prefix hits (silent canonicalization death).
    """
    admits = [row for row in rows if row.mode == "admit"]
    single = next((row for row in rows if row.mode == "single"), None)
    steady = next((row for row in rows if row.mode == "steady"), None)
    if len(admits) < 2 or single is None or steady is None:
        raise SystemExit("tenant run produced no admit/single/steady rows")
    cold, last = admits[0], admits[-1]
    if last.wall_time > TENANT_MARGINAL_LIMIT * cold.wall_time:
        raise SystemExit(
            f"tenant regression: admitting tenant {last.tenants} cost "
            f"{last.wall_time:.3f}s, above {TENANT_MARGINAL_LIMIT:.1f} x the "
            f"cold admission ({cold.wall_time:.3f}s)"
        )
    # A warm admission still walks every resident centre, but verifies only
    # the novel suffix against each — so the work unit is centre x rule
    # verifications, not centres.
    cold_work = cold.backfill_centers * max(1, cold.novel_rules)
    last_work = last.backfill_centers * last.novel_rules
    if last_work > TENANT_MARGINAL_LIMIT * cold_work:
        raise SystemExit(
            f"tenant regression: admitting tenant {last.tenants} cost "
            f"{last_work} centre-rule verifications, above "
            f"{TENANT_MARGINAL_LIMIT:.1f} x the cold admission ({cold_work})"
        )
    k = steady.tenants
    if steady.wall_time > TENANT_MARGINAL_LIMIT * k * single.wall_time:
        raise SystemExit(
            f"tenant regression: shared steady state cost {steady.wall_time:.3f}s "
            f"for {k} tenants, above {TENANT_MARGINAL_LIMIT:.1f} x {k} x the "
            f"single-tenant baseline ({single.wall_time:.3f}s)"
        )
    if steady.verified_centers > TENANT_MARGINAL_LIMIT * k * single.verified_centers:
        raise SystemExit(
            f"tenant regression: shared core verified {steady.verified_centers} "
            f"centres for {k} tenants, above {TENANT_MARGINAL_LIMIT:.1f} x {k} x "
            f"the single-tenant baseline ({single.verified_centers})"
        )
    if steady.union_rules > TENANT_UNION_LIMIT * steady.rules:
        raise SystemExit(
            f"tenant regression: resident union of {steady.union_rules} rules "
            f"over {steady.rules} admitted — canonical dedup is not biting "
            f"(gate <= {TENANT_UNION_LIMIT:.1f} x)"
        )
    if sum(row.shared_prefix_hits for row in admits) == 0:
        raise SystemExit(
            "tenant regression: admissions recorded zero shared-prefix hits "
            "on overlapping rule sets — prefix sharing silently died"
        )


def _check_storm_gate(rows) -> None:
    """Regression gate: no storm may leave a surviving divergence.

    Every divergence has already been distilled and (if novel) written to
    ``tests/regressions/`` by the suite runner — the artifact JSON records
    how many; this gate turns any non-zero count into a failed run so CI
    both fails loudly *and* leaves the shrunk counterexample behind.
    """
    if not rows:
        raise SystemExit("storm run produced no rows")
    for row in rows:
        if row.divergences:
            raise SystemExit(
                f"storm regression: {row.storm} storm on backend "
                f"{row.backend} diverged {row.divergences} time(s) "
                f"(distilled to {row.shrunk_ops} ops, {row.deduped} known "
                "duplicates) — see tests/regressions/"
            )


def _report_family(family: str, backend: str | None, workers: int, rows) -> None:
    """Print the family's tables, speedups and gates; exits on a gate failure."""
    if family == "index":
        # The cross-backend × cross-mode fingerprint gates already ran inside
        # the comparison runners; here we only report the measurements.
        shown = "/".join(BACKENDS) if backend is None else f"sequential/{backend}"
        title = f"smoke index (n={workers}, backends={shown})"
        print(f"== {title} ==")
        matching_rows = [row for row in rows if hasattr(row, "patterns_matched")]
        eip_rows = [row for row in rows if not hasattr(row, "patterns_matched")]
        print("-- matching traffic (fresh matcher per batch) --")
        print(format_rows(matching_rows))
        print("-- EIP match, every backend x index mode (one fingerprint) --")
        print(format_rows(eip_rows))
        for name, speedup in sorted(_index_speedups(rows).items()):
            print(f"index speedup ({name}): {speedup:.2f}x")
    elif family == "columnar":
        shown = "/".join(BACKENDS) if backend is None else f"sequential/{backend}"
        title = f"smoke columnar (n={workers}, backends={shown})"
        print(f"== {title} ==")
        traffic_rows = [
            row
            for row in rows
            if hasattr(row, "patterns_matched") and row.parameter == "columnar"
        ]
        large_rows = [
            row
            for row in rows
            if hasattr(row, "patterns_matched") and row.parameter == "scale"
        ]
        eip_rows = [row for row in rows if hasattr(row, "prefix_pool_hits")]
        dmine_rows = [row for row in rows if hasattr(row, "rules_discovered")]
        print("-- matching traffic, columnar off vs on (index resident in both) --")
        print(format_rows(traffic_rows))
        print("-- EIP match, every backend x columnar mode (one fingerprint) --")
        print(format_rows(eip_rows))
        print("-- DMine, every backend x columnar mode (one fingerprint) --")
        print(format_rows(dmine_rows))
        print("-- large-regime scenario (gate: completes under the smoke timeout) --")
        print(format_rows(large_rows))
        for name, speedup in sorted(_columnar_speedups(rows).items()):
            print(f"columnar speedup ({name}): {speedup:.2f}x")
        _check_columnar_gate(rows)
    elif family == "incremental":
        shown = "/".join(BACKENDS) if backend is None else f"sequential/{backend}"
        title = f"smoke incremental (n={workers}, backends={shown})"
        print(f"== {title} ==")
        dmine_rows = [row for row in rows if hasattr(row, "rules_discovered")]
        eip_rows = [row for row in rows if not hasattr(row, "rules_discovered")]
        print("-- DMine, every backend x incremental mode (one fingerprint) --")
        print(format_rows(dmine_rows))
        print("-- EIP match, every backend x incremental mode (one fingerprint) --")
        print(format_rows(eip_rows))
        for name, speedup in sorted(_incremental_speedups(rows).items()):
            print(f"incremental speedup ({name}): {speedup:.2f}x")
        _check_incremental_gate(rows)
    elif family == "lifecycle":
        shown = "/".join(BACKENDS) if backend is None else f"sequential/{backend}"
        title = f"smoke lifecycle (n={workers}, backends={shown})"
        print(f"== {title} ==")
        print("-- checkpoint -> restart -> byte-identical answers (gated in-run) --")
        print(format_rows(rows))
    elif family == "stream" and rows and hasattr(rows[0], "resident_nodes"):
        title = f"smoke stream churn (n={workers}, deletion-biased)"
        print(f"== {title} ==")
        print("-- resident fragment size under deletion churn (gated bounded) --")
        shown_rows = rows if len(rows) <= 12 else rows[:3] + rows[-9:]
        print(format_rows(shown_rows))
        first, last = rows[0], rows[-1]
        print(
            f"resident nodes {first.resident_nodes} -> {last.resident_nodes}, "
            f"graph nodes {first.graph_nodes} -> {last.graph_nodes}, "
            f"shed total {sum(row.shed for row in rows)}, "
            f"compactions {sum(row.compacted for row in rows)}"
        )
        _check_churn_gate(rows, workers)
    elif family == "stream":
        shown = "/".join(BACKENDS) if backend is None else f"sequential/{backend}"
        title = f"smoke stream (n={workers}, backends={shown})"
        print(f"== {title} ==")
        view_rows = [row for row in rows if row.backend == "in-process"]
        eip_rows = [row for row in rows if row.backend != "in-process"]
        print("-- maintained match sets: MatchStore.repair vs re-matching --")
        print(format_rows(view_rows))
        print("-- streaming EIP: repair vs full recompute per batch (gated) --")
        print(format_rows(eip_rows))
        for name, speedup in sorted(_stream_speedups(rows).items()):
            print(f"repair speedup ({name}): {speedup:.2f}x")
        _check_stream_gate(rows)
    elif family == "storm":
        shown = "/".join(BACKENDS) if backend is None else f"sequential/{backend}"
        title = f"smoke storm (n={workers}, backends={shown})"
        print(f"== {title} ==")
        print("-- adversarial churn x differential oracle (gated on zero divergences) --")
        print(format_rows(rows))
        checks = sum(row.checks for row in rows)
        wall = sum(row.wall_time for row in rows)
        rate = f"{checks / wall:.1f}/s" if wall else "n/a"
        print(
            f"storms {len({row.storm for row in rows})}, combos {len(rows)}, "
            f"oracle checks {checks} ({rate})"
        )
        _check_storm_gate(rows)
    elif family == "obs":
        title = f"smoke obs (n={workers}, sequential, best of {OBS_REPS})"
        print(f"== {title} ==")
        print("-- streaming maintenance, observability off vs on (gated <=5%) --")
        print(format_rows(rows))
        on = next(row for row in rows if row.mode == "instrumented")
        overhead = on.overhead_pct if on.overhead_pct is not None else 0.0
        print(
            f"instrumentation overhead {overhead:.2f}% "
            f"(gate <= {OBS_OVERHEAD_LIMIT_PCT:.0f}%); {on.spans} spans, "
            f"{on.counter_series} counter series; scrape_ok={on.scrape_ok} "
            f"trace_ok={on.trace_ok}"
        )
        _check_obs_gate(rows)
    elif family == "tenant":
        shown = "/".join(BACKENDS) if backend is None else f"sequential/{backend}"
        title = f"smoke tenant (n={workers}, backends={shown})"
        print(f"== {title} ==")
        print("-- shared-core multi-tenant scaling (projections gated in-run) --")
        print(format_rows(rows))
        admits = [row for row in rows if row.mode == "admit"]
        single = next(row for row in rows if row.mode == "single")
        steady = next(row for row in rows if row.mode == "steady")
        cold, last = admits[0], admits[-1]
        marginal = last.wall_time / cold.wall_time if cold.wall_time else 0.0
        shared_cost = (
            steady.wall_time / (steady.tenants * single.wall_time)
            if single.wall_time
            else 0.0
        )
        print(
            f"marginal admission (tenant {last.tenants} vs cold): {marginal:.2f}x; "
            f"steady shared cost vs k x single: {shared_cost:.2f}x; "
            f"union {steady.union_rules} rules over {steady.rules} admitted; "
            f"prefix hits {sum(row.shared_prefix_hits for row in admits)}"
        )
        _check_tenant_gate(rows)
    elif family == "serve":
        row = rows[0]
        title = f"smoke serve (clients={row.clients}, batches={row.batches})"
        print(f"== {title} ==")
        print("-- HTTP serving under update pressure (contract gated in-run) --")
        print(format_rows(rows))
        print(
            f"read latency p50 {row.read_p50_ms:.1f}ms / p99 {row.read_p99_ms:.1f}ms "
            f"over {row.reads} reads x {row.clients} clients; "
            f"{row.ticks_per_sec:.2f} ticks/s; torn reads: {row.torn_reads}"
        )
    else:
        _check_equivalence(rows)
        title = f"smoke {family} (n={workers}, backend={backend})"
        print(f"== {title} ==")
        print(format_rows(rows))
        speedups = wall_speedups(rows)
        if backend in speedups:
            print(f"wall speedup ({backend} vs sequential): {speedups[backend]:.2f}x")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-smoke",
        description="Tiny per-family benchmark smoke run for CI.",
    )
    parser.add_argument("--family", choices=list(FAMILIES), required=True)
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="backend to compare against sequential (default: processes; "
        "the index and incremental families run all backends unless one is "
        "given)",
    )
    parser.add_argument("--workers", type=int, default=2, help="fragments / BSP workers")
    parser.add_argument("--pool-size", type=int, default=None, dest="pool_size")
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help=f"workload node count (default {SMOKE_SCALE}, index/incremental "
        f"families {INDEX_SCALE})",
    )
    parser.add_argument(
        "--deletion-bias",
        type=float,
        default=None,
        dest="deletion_bias",
        help="switch the stream family to its deletion-heavy churn variant "
        "(e.g. 0.7): one long maintenance run gated on bounded resident "
        "fragment size, persisted as BENCH_stream_churn.json",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the family under cProfile and print the top 25 functions "
        "by cumulative time",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default BENCH_<family>.json in the working "
        "directory — the repo root in CI)",
    )
    args = parser.parse_args(argv)

    backend = args.backend
    if backend is None and args.family not in (
        "index",
        "columnar",
        "incremental",
        "stream",
        "lifecycle",
        "serve",
        "tenant",
        "storm",
        "obs",
    ):
        backend = "processes"
    if args.deletion_bias is not None and args.family != "stream":
        raise SystemExit("--deletion-bias only applies to the stream family")
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
        rows = run_smoke(
            args.family, backend, args.workers, args.pool_size, args.scale, args.deletion_bias
        )
        profiler.disable()
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(25)
        print(f"== cProfile top 25 (family={args.family}) ==")
        print(buffer.getvalue())
    else:
        rows = run_smoke(
            args.family, backend, args.workers, args.pool_size, args.scale, args.deletion_bias
        )

    # Persist the trajectory rows *before* the gates run: a failing gate
    # must still leave the JSON of the run that regressed for diagnosis.
    family_tag = (
        "stream_churn"
        if args.family == "stream" and args.deletion_bias is not None
        else args.family
    )
    title = f"smoke {family_tag} (n={args.workers})"
    out = args.out if args.out is not None else Path(f"BENCH_{family_tag}.json")
    out.write_text(rows_as_json(f"smoke_{family_tag}", title, rows) + "\n")

    _report_family(args.family, backend, args.workers, rows)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
