"""Topological support (paper Section 3).

The support of a pattern in a single graph is the number of *distinct*
matches of the designated node x — ``supp(Q, G) = |Q(x, G)|`` — which, unlike
match counting, is anti-monotonic under pattern extension.  The support of a
GPAR is the support of its rule pattern PR.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graph.graph import Graph
from repro.matching.base import Matcher
from repro.matching.vf2 import VF2Matcher
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern

NodeId = Hashable


def support(
    pattern: Pattern,
    graph: Graph,
    matcher: Matcher | None = None,
    candidates: Iterable[NodeId] | None = None,
) -> tuple[int, set[NodeId]]:
    """``supp(Q, G)`` and the witnessing match set ``Q(x, G)``.

    Parameters
    ----------
    pattern:
        The pattern Q (its designated x is the counted node).
    graph:
        The data graph.
    matcher:
        Anchored matcher to use; defaults to a fresh :class:`VF2Matcher`.
    candidates:
        Optional restriction of the data nodes probed for x.
    """
    engine = matcher if matcher is not None else VF2Matcher()
    matches = engine.match_set(graph, pattern, candidates=candidates)
    return len(matches), matches


def antecedent_support(
    rule: GPAR,
    graph: Graph,
    matcher: Matcher | None = None,
    candidates: Iterable[NodeId] | None = None,
) -> tuple[int, set[NodeId]]:
    """``supp(Q, G)`` for the antecedent of *rule*."""
    return support(rule.antecedent, graph, matcher=matcher, candidates=candidates)


def rule_support(
    rule: GPAR,
    graph: Graph,
    matcher: Matcher | None = None,
    candidates: Iterable[NodeId] | None = None,
) -> tuple[int, set[NodeId]]:
    """``supp(R, G) = |PR(x, G)|`` for a GPAR."""
    return support(rule.pr_pattern(), graph, matcher=matcher, candidates=candidates)


def minimum_image_support(
    pattern: Pattern,
    graph: Graph,
    matcher: Matcher | None = None,
    max_matches: int = 10_000,
) -> int:
    """Minimum-image-based support of Bringmann & Nijssen [7].

    The minimum over pattern nodes of the number of distinct data nodes that
    node is mapped to across all matches.  Requires enumerating matches, so a
    *max_matches* cap bounds the work; it is only used by the alternative
    image-based confidence metric evaluated in Exp-2.
    """
    engine = matcher if matcher is not None else VF2Matcher()
    expanded = pattern.expanded()
    images: dict = {node: set() for node in expanded.nodes()}
    found = 0
    for candidate in graph.nodes_with_label(expanded.label(expanded.x)):
        for mapping in engine.iter_matches_at(graph, expanded, candidate):
            for pattern_node, data_node in mapping.items():
                images[pattern_node].add(data_node)
            found += 1
            if found >= max_matches:
                break
        if found >= max_matches:
            break
    if not found:
        return 0
    return min(len(image) for image in images.values())
