"""Support, confidence and diversification metrics for GPARs (Section 3)."""

from repro.metrics.support import (
    antecedent_support,
    minimum_image_support,
    rule_support,
    support,
)
from repro.metrics.lcwa import PredicateStats, predicate_stats
from repro.metrics.confidence import (
    RuleEvaluation,
    bayes_factor_confidence,
    evaluate_rule,
    image_based_confidence,
    pca_confidence,
)
from repro.metrics.diversification import (
    DiversificationObjective,
    jaccard_distance,
    rule_difference,
)

__all__ = [
    "support",
    "antecedent_support",
    "rule_support",
    "minimum_image_support",
    "PredicateStats",
    "predicate_stats",
    "RuleEvaluation",
    "evaluate_rule",
    "bayes_factor_confidence",
    "pca_confidence",
    "image_based_confidence",
    "jaccard_distance",
    "rule_difference",
    "DiversificationObjective",
]
