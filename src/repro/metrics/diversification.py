"""Diversification objective for top-k GPAR sets (paper Section 4.1).

Rules are compared by the Jaccard distance of their match sets (the social
groups they identify); a top-k set is scored by max-sum diversification

    F(Lk) = (1-λ) Σ conf(Ri)/N  +  2λ/(k-1) Σ_{i<j} diff(Ri, Rj)

with the confidence sum normalised by ``N = supp(q, G) * supp(q̄, G)``.  The
incremental miner works with the pairwise score

    F'(R, R') = (1-λ)/(N(k-1)) (conf(R)+conf(R')) + 2λ/(k-1) diff(R, R').
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable, Mapping, Sequence

NodeId = Hashable


def jaccard_distance(first: Iterable[NodeId], second: Iterable[NodeId]) -> float:
    """``1 - |A ∩ B| / |A ∪ B|``; two empty sets have distance 0."""
    set_a = set(first)
    set_b = set(second)
    union = set_a | set_b
    if not union:
        return 0.0
    return 1.0 - len(set_a & set_b) / len(union)


def rule_difference(matches_a: Iterable[NodeId], matches_b: Iterable[NodeId]) -> float:
    """``diff(R1, R2)``: Jaccard distance of the rules' match sets."""
    return jaccard_distance(matches_a, matches_b)


@dataclass(frozen=True)
class DiversificationObjective:
    """The bi-criteria objective of DMP, parameterised by λ, k and N.

    Parameters
    ----------
    lam:
        The user-controlled balance λ ∈ [0, 1]; 0 = pure confidence,
        1 = pure diversity.
    k:
        Size of the sought top-k set.
    normalizer:
        ``N = supp(q, G) * supp(q̄, G)`` (a constant for a fixed predicate).
        When 0 (degenerate predicate) the confidence term is dropped.
    """

    lam: float
    k: int
    normalizer: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {self.lam}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    # -- helpers -----------------------------------------------------------
    def _confidence_weight(self) -> float:
        if self.normalizer <= 0:
            return 0.0
        return (1.0 - self.lam) / self.normalizer

    def _pair_confidence_weight(self) -> float:
        if self.normalizer <= 0 or self.k <= 1:
            return 0.0
        return (1.0 - self.lam) / (self.normalizer * (self.k - 1))

    def _diversity_weight(self) -> float:
        if self.k <= 1:
            return 0.0
        return 2.0 * self.lam / (self.k - 1)

    # -- scores ------------------------------------------------------------
    def total(
        self,
        confidences: Sequence[float],
        pairwise_diffs: Mapping[tuple[int, int], float],
    ) -> float:
        """``F(Lk)`` for rules given by index.

        *confidences* holds conf(Ri); *pairwise_diffs* maps index pairs
        ``(i, j)`` with ``i < j`` to diff(Ri, Rj).  Infinite confidences
        (trivial rules) are not expected here — the miner filters them first —
        but are clamped to 0 to keep the objective finite if they appear.
        """
        confidence_sum = sum(0.0 if math.isinf(c) else c for c in confidences)
        diversity_sum = 0.0
        for i, j in combinations(range(len(confidences)), 2):
            key = (i, j) if (i, j) in pairwise_diffs else (j, i)
            diversity_sum += pairwise_diffs.get(key, 0.0)
        return (
            self._confidence_weight() * confidence_sum
            + self._diversity_weight() * diversity_sum
        )

    def total_from_matches(
        self,
        confidences: Sequence[float],
        match_sets: Sequence[Iterable[NodeId]],
    ) -> float:
        """``F(Lk)`` computed directly from match sets."""
        if len(confidences) != len(match_sets):
            raise ValueError("confidences and match_sets must align")
        materialized = [set(matches) for matches in match_sets]
        diffs = {
            (i, j): jaccard_distance(materialized[i], materialized[j])
            for i, j in combinations(range(len(materialized)), 2)
        }
        return self.total(confidences, diffs)

    def pair_score(self, conf_a: float, conf_b: float, diff: float) -> float:
        """``F'(R, R')`` — the incremental pair score used by incDiv."""
        conf_a = 0.0 if math.isinf(conf_a) else conf_a
        conf_b = 0.0 if math.isinf(conf_b) else conf_b
        return self._pair_confidence_weight() * (conf_a + conf_b) + self._diversity_weight() * diff

    def upper_bound_contribution(self, conf_a: float, conf_b: float) -> float:
        """Upper bound of a pair's F' assuming maximal diversity (diff = 1).

        This is the quantity the message-reduction rules (Lemma 3) compare
        against the current minimum pair score of Lk.
        """
        return self.pair_score(conf_a, conf_b, 1.0)
