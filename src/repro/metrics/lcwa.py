"""Local closed world assumption statistics (paper Section 3).

For a predicate ``q(x, y)`` (x-label, edge label q, y-label/value binding)
the LCWA classifies candidate nodes ``u`` carrying the x-label into

* **positive** — ``u ∈ Pq(x, G)``: u has a q-edge to a node satisfying the
  search condition on y;
* **negative** — u has at least one edge labelled q but none of them reaches
  a node satisfying y's condition (the graph is locally complete about q at
  u, and q(u, ·) does not hold for the target item);
* **unknown** — u has no edge labelled q at all; the graph knows nothing
  about q at u, so u is *not* counted as a counter-example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.graph.graph import Graph
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern

NodeId = Hashable


@dataclass(frozen=True)
class PredicateStats:
    """Per-(graph, predicate) LCWA statistics, computed once and reused.

    Attributes
    ----------
    positives:
        ``Pq(x, G)`` — nodes with a q-edge to a node satisfying y.
    negatives:
        Nodes counted by ``supp(q̄, G)``: right label, some q-edge, but not
        in *positives*.
    unknown:
        Nodes with the right label and no q-edge at all.
    """

    x_label: str
    q_label: str
    y_label: str
    positives: frozenset
    negatives: frozenset
    unknown: frozenset

    @property
    def supp_q(self) -> int:
        """``supp(q, G) = |Pq(x, G)|``."""
        return len(self.positives)

    @property
    def supp_q_bar(self) -> int:
        """``supp(q̄, G)``: number of LCWA-negative nodes."""
        return len(self.negatives)

    @property
    def num_candidates(self) -> int:
        """Total number of nodes carrying the x-label."""
        return len(self.positives) + len(self.negatives) + len(self.unknown)

    def classify(self, node: NodeId) -> str:
        """Return ``"positive"``, ``"negative"`` or ``"unknown"`` for *node*.

        Raises :class:`KeyError` for nodes that do not carry the x-label.
        """
        if node in self.positives:
            return "positive"
        if node in self.negatives:
            return "negative"
        if node in self.unknown:
            return "unknown"
        raise KeyError(f"{node!r} does not satisfy the search condition on x")

    @property
    def normalizer(self) -> int:
        """``N = supp(q, G) * supp(q̄, G)``, the confidence normaliser of DMP."""
        return self.supp_q * self.supp_q_bar


def predicate_stats(graph: Graph, q_pattern: Pattern) -> PredicateStats:
    """Compute LCWA statistics for the single-edge predicate pattern ``Pq``.

    *q_pattern* must be a single-edge pattern ``x --q--> y`` (as produced by
    :meth:`repro.pattern.GPAR.q_pattern`); the labels of x and y are the
    search conditions, so value bindings on y are honoured.
    """
    edges = q_pattern.edges()
    if len(edges) != 1:
        raise ValueError(
            f"predicate pattern must have exactly one edge, got {len(edges)}"
        )
    edge = edges[0]
    x_label = q_pattern.label(q_pattern.x)
    y_label = q_pattern.label(q_pattern.y) if q_pattern.y is not None else q_pattern.label(edge.target)
    q_label = edge.label

    positives: set[NodeId] = set()
    negatives: set[NodeId] = set()
    unknown: set[NodeId] = set()
    for node in graph.nodes_with_label(x_label):
        targets = graph.out_neighbors(node, q_label)
        if not targets:
            unknown.add(node)
            continue
        if any(graph.node_label(target) == y_label for target in targets):
            positives.add(node)
        else:
            negatives.add(node)
    return PredicateStats(
        x_label=x_label,
        q_label=q_label,
        y_label=y_label,
        positives=frozenset(positives),
        negatives=frozenset(negatives),
        unknown=frozenset(unknown),
    )


def predicate_stats_over(
    graph: Graph,
    q_pattern: Pattern,
    candidates,
) -> PredicateStats:
    """LCWA statistics restricted to a given candidate set.

    Workers call this with their *owned* centre nodes so the per-fragment
    cost is proportional to the owned work, not to the fragment size (border
    nodes are replicated across fragments and must not be re-classified by
    every worker).
    """
    edges = q_pattern.edges()
    if len(edges) != 1:
        raise ValueError(
            f"predicate pattern must have exactly one edge, got {len(edges)}"
        )
    edge = edges[0]
    x_label = q_pattern.label(q_pattern.x)
    y_label = q_pattern.label(q_pattern.y) if q_pattern.y is not None else q_pattern.label(edge.target)
    q_label = edge.label

    positives: set[NodeId] = set()
    negatives: set[NodeId] = set()
    unknown: set[NodeId] = set()
    for node in candidates:
        if not graph.has_node(node) or graph.node_label(node) != x_label:
            continue
        targets = graph.out_neighbors(node, q_label)
        if not targets:
            unknown.add(node)
        elif any(graph.node_label(target) == y_label for target in targets):
            positives.add(node)
        else:
            negatives.add(node)
    return PredicateStats(
        x_label=x_label,
        q_label=q_label,
        y_label=y_label,
        positives=frozenset(positives),
        negatives=frozenset(negatives),
        unknown=frozenset(unknown),
    )


def predicate_stats_for_rule(graph: Graph, rule: GPAR) -> PredicateStats:
    """Convenience wrapper: LCWA statistics for a rule's consequent predicate."""
    return predicate_stats(graph, rule.q_pattern())


def q_bar_intersection(q_bar_nodes: frozenset, antecedent_matches: set) -> set:
    """``Qq̄(x, G)``: antecedent matches that are LCWA-negative for q.

    ``supp(Qq̄, G)`` is the size of this set — the denominator term that makes
    the Bayes-factor confidence discriminant.
    """
    return set(q_bar_nodes) & set(antecedent_matches)
