"""Confidence measures for GPARs (paper Section 3 and Exp-2).

The paper's primary metric revises the Bayes Factor of association rules
under the LCWA:

    conf(R, G) = supp(R, G) * supp(q̄, G) / (supp(Qq̄, G) * supp(q, G))

Two alternatives are also implemented because Exp-2 compares against them:
the PCA confidence of AMIE (``supp(R)/supp(Qq̄)``) and an image-based variant
that replaces the topological support with minimum-image support.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from repro.graph.graph import Graph
from repro.matching.base import Matcher
from repro.matching.vf2 import VF2Matcher
from repro.metrics.lcwa import PredicateStats, predicate_stats, q_bar_intersection
from repro.metrics.support import minimum_image_support
from repro.pattern.gpar import GPAR

NodeId = Hashable


def bayes_factor_confidence(
    supp_r: int,
    supp_q_bar: int,
    supp_q_qbar: int,
    supp_q: int,
) -> float:
    """The LCWA Bayes-factor confidence.

    The two "trivial" cases of Section 3 are mapped to ``math.inf``:
    ``supp(Qq̄, G) = 0`` (the rule holds as a logic rule on all of G) and
    ``supp(q, G) = 0`` (the predicate identifies no user at all).  Callers —
    the miner and the identifier — detect and discard/flag these cases.
    """
    if supp_r < 0 or supp_q_bar < 0 or supp_q_qbar < 0 or supp_q < 0:
        raise ValueError("support counts must be non-negative")
    denominator = supp_q_qbar * supp_q
    if denominator == 0:
        return math.inf
    return (supp_r * supp_q_bar) / denominator


def pca_confidence(supp_r: int, supp_q_qbar: int) -> float:
    """PCA confidence [Galárraga et al. 2013]: ``supp(R) / supp(Qq̄)``.

    Only measures "coverage" of the rule among LCWA-negative antecedent
    matches; returns ``math.inf`` when there are none.
    """
    if supp_q_qbar == 0:
        return math.inf
    return supp_r / supp_q_qbar


def image_based_confidence(
    image_supp_r: int,
    supp_q_bar: int,
    supp_q_qbar: int,
    supp_q: int,
) -> float:
    """Bayes-factor formula with image-based rule support substituted in."""
    denominator = supp_q_qbar * supp_q
    if denominator == 0:
        return math.inf
    return (image_supp_r * supp_q_bar) / denominator


def conventional_confidence(supp_r: int, supp_q_antecedent: int) -> float:
    """The classical ``supp(R)/supp(Q)`` confidence (for comparison only)."""
    if supp_q_antecedent == 0:
        return 0.0
    return supp_r / supp_q_antecedent


@dataclass(frozen=True)
class RuleEvaluation:
    """All supports and confidences of one GPAR on one graph."""

    rule: GPAR
    supp_r: int
    supp_antecedent: int
    supp_q: int
    supp_q_bar: int
    supp_q_qbar: int
    confidence: float
    pca: float
    conventional: float
    rule_matches: frozenset
    antecedent_matches: frozenset

    @property
    def is_trivial(self) -> bool:
        """Trivial per Section 3: infinite confidence or an empty predicate."""
        return math.isinf(self.confidence) or self.supp_q == 0

    def as_row(self) -> str:
        """One-line report used by examples and the case-study bench."""
        conf = "inf" if math.isinf(self.confidence) else f"{self.confidence:.3f}"
        return (
            f"{self.rule.name}: supp={self.supp_r} conf={conf} "
            f"pca={'inf' if math.isinf(self.pca) else f'{self.pca:.3f}'} "
            f"supp(q)={self.supp_q} supp(q̄)={self.supp_q_bar} supp(Qq̄)={self.supp_q_qbar}"
        )


def evaluate_rule(
    graph: Graph,
    rule: GPAR,
    matcher: Matcher | None = None,
    stats: PredicateStats | None = None,
    candidates=None,
) -> RuleEvaluation:
    """Compute every support/confidence quantity for *rule* on *graph*.

    Parameters
    ----------
    matcher:
        Anchored matcher (defaults to :class:`VF2Matcher`).
    stats:
        Pre-computed LCWA statistics for the rule's predicate; pass them when
        evaluating many rules over the same predicate to avoid recomputation.
    candidates:
        Optional restriction of the probed x-candidates (fragment-local
        evaluation in the parallel algorithms).
    """
    engine = matcher if matcher is not None else VF2Matcher()
    predicate = stats if stats is not None else predicate_stats(graph, rule.q_pattern())

    antecedent_matches = engine.match_set(graph, rule.antecedent, candidates=candidates)
    # PR(x, G) ⊆ Q(x, G) ∩ Pq(x, G): only antecedent matches that are LCWA
    # positives can possibly match the full rule pattern, so probe just those.
    rule_candidate_pool = antecedent_matches & set(predicate.positives)
    rule_matches = engine.match_set(graph, rule.pr_pattern(), candidates=rule_candidate_pool)

    supp_q_qbar = len(q_bar_intersection(predicate.negatives, antecedent_matches))
    confidence = bayes_factor_confidence(
        len(rule_matches), predicate.supp_q_bar, supp_q_qbar, predicate.supp_q
    )
    return RuleEvaluation(
        rule=rule,
        supp_r=len(rule_matches),
        supp_antecedent=len(antecedent_matches),
        supp_q=predicate.supp_q,
        supp_q_bar=predicate.supp_q_bar,
        supp_q_qbar=supp_q_qbar,
        confidence=confidence,
        pca=pca_confidence(len(rule_matches), supp_q_qbar),
        conventional=conventional_confidence(len(rule_matches), len(antecedent_matches)),
        rule_matches=frozenset(rule_matches),
        antecedent_matches=frozenset(antecedent_matches),
    )


def evaluate_rule_image_based(
    graph: Graph,
    rule: GPAR,
    matcher: Matcher | None = None,
    stats: PredicateStats | None = None,
    max_matches: int = 10_000,
) -> float:
    """Image-based confidence ``Iconf`` of Exp-2 (expensive; small graphs only)."""
    engine = matcher if matcher is not None else VF2Matcher()
    predicate = stats if stats is not None else predicate_stats(graph, rule.q_pattern())
    antecedent_matches = engine.match_set(graph, rule.antecedent)
    supp_q_qbar = len(q_bar_intersection(predicate.negatives, antecedent_matches))
    image_supp = minimum_image_support(
        rule.pr_pattern(), graph, matcher=engine, max_matches=max_matches
    )
    return image_based_confidence(
        image_supp, predicate.supp_q_bar, supp_q_qbar, predicate.supp_q
    )
