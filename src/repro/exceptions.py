"""Exception hierarchy for the GPAR reproduction library.

Every error raised deliberately by :mod:`repro` derives from
:class:`ReproError`, so downstream code can catch library errors without
swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for invalid operations on a :class:`repro.graph.Graph`."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node id is not present in a graph."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.node_id = node_id

    def __str__(self) -> str:  # KeyError would quote the repr otherwise
        return f"node {self.node_id!r} is not in the graph"


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an edge (source, target, label) is not present."""

    def __init__(self, source, target, label=None):
        super().__init__((source, target, label))
        self.source = source
        self.target = target
        self.label = label

    def __str__(self) -> str:
        return (
            f"edge {self.source!r} -> {self.target!r}"
            f" (label={self.label!r}) is not in the graph"
        )


class StaleIndexError(GraphError):
    """Raised when a :class:`repro.graph.index.FragmentIndex` in ``"raise"``
    invalidation mode is probed after its graph was mutated.

    Carries the version the index was built at and the graph's current
    version so the caller can tell how far the index has drifted.
    """

    def __init__(self, graph_name: str, built_version: int, current_version: int):
        super().__init__(graph_name, built_version, current_version)
        self.graph_name = graph_name
        self.built_version = built_version
        self.current_version = current_version

    def __str__(self) -> str:
        return (
            f"index over graph {self.graph_name!r} is stale: built at version "
            f"{self.built_version}, graph is now at version {self.current_version}"
        )


class PatternError(ReproError):
    """Raised for malformed patterns or GPARs."""


class InvalidGPARError(PatternError):
    """Raised when a GPAR violates the well-formedness rules of Section 2.2.

    A practical, nontrivial GPAR must (1) be connected as a pattern,
    (2) have a non-empty antecedent, and (3) not repeat the consequent edge
    inside the antecedent.
    """


class MatchingError(ReproError):
    """Raised for invalid matching requests (e.g. unknown designated node)."""


class PartitionError(ReproError):
    """Raised when a graph cannot be fragmented as requested."""


class MiningError(ReproError):
    """Raised for invalid mining configurations (e.g. k < 1, d < 1)."""


class ExecutorError(ReproError):
    """Raised for invalid execution-backend requests (e.g. unknown backend)."""


class WorkerError(ReproError):
    """Raised when a worker task fails on any execution backend.

    Carries the fragment id of the failing worker so coordinator-side code
    (and CI logs) can attribute the failure; the original exception is
    attached as ``__cause__`` when it was raised in the same process, or
    summarised in *detail* when it crossed a process boundary.
    """

    def __init__(self, fragment_id, detail: str = ""):
        super().__init__(fragment_id, detail)
        self.fragment_id = fragment_id
        self.detail = detail

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"worker for fragment {self.fragment_id} failed{suffix}"


class IdentificationError(ReproError):
    """Raised for invalid entity-identification requests."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset cannot be generated as requested."""


class StreamError(ReproError):
    """Raised for invalid streaming-update requests (:mod:`repro.stream`).

    Covers malformed :class:`~repro.stream.UpdateBatch` operations and
    rule sets a :class:`~repro.stream.StreamingIdentifier` cannot maintain
    incrementally (e.g. a disconnected antecedent, whose matches are not a
    function of any bounded ball around the centre)."""
