"""Fragment data structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.graph.graph import Graph

NodeId = Hashable


@dataclass
class Fragment:
    """One worker's share of the data graph.

    Attributes
    ----------
    index:
        Fragment number (0-based).
    graph:
        The fragment's local graph: the union of the d-neighbourhoods of the
        centre nodes assigned to this fragment (border nodes may therefore be
        replicated across fragments).
    owned_centers:
        The candidate centre nodes *owned* by this fragment.  Ownership is
        disjoint across fragments, so counting owned centres never double
        counts a node in global support sums.
    sequence:
        The update-slice sequence number this resident copy reflects
        (see :mod:`repro.partition.lifecycle`); 0 for a fresh partition.
        A worker's applied-sequence counter initialises from it, so
        fragments re-materialised from a lifecycle checkpoint never replay
        slices they already contain.
    """

    index: int
    graph: Graph
    owned_centers: set = field(default_factory=set)
    sequence: int = 0

    @property
    def size(self) -> int:
        """``|F_i| = |V_i| + |E_i|`` of the local graph."""
        return self.graph.size

    def __repr__(self) -> str:
        return (
            f"Fragment(index={self.index}, |V|={self.graph.num_nodes}, "
            f"|E|={self.graph.num_edges}, owned={len(self.owned_centers)})"
        )


@dataclass(frozen=True)
class FragmentationReport:
    """Summary of a fragmentation, used by the skew benchmark."""

    num_fragments: int
    sizes: tuple[int, ...]
    owned_counts: tuple[int, ...]
    replicated_nodes: int

    @property
    def max_size(self) -> int:
        """Largest fragment size."""
        return max(self.sizes) if self.sizes else 0

    @property
    def min_size(self) -> int:
        """Smallest fragment size."""
        return min(self.sizes) if self.sizes else 0

    @property
    def skew(self) -> float:
        """``(max - min) / max`` fragment-size skew, 0 for perfectly even."""
        if not self.sizes or self.max_size == 0:
            return 0.0
        return (self.max_size - self.min_size) / self.max_size

    def as_row(self) -> str:
        """One-line human-readable summary."""
        return (
            f"fragments={self.num_fragments} sizes=[{self.min_size}..{self.max_size}] "
            f"skew={self.skew:.3f} replicated_nodes={self.replicated_nodes}"
        )
