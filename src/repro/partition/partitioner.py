"""Balanced, neighbourhood-preserving graph fragmentation.

The partitioner assigns each candidate centre node to exactly one fragment
(greedy balancing on estimated fragment size, in the spirit of the balanced
partitioning of [Rahimian et al. 2013] used by the paper) and then builds the
fragment graph as the subgraph induced by the union of the owned centres'
d-neighbourhoods.  Border nodes are replicated, centre ownership is not.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.exceptions import PartitionError
from repro.graph.graph import Graph
from repro.graph.neighborhood import ball
from repro.partition.fragment import Fragment, FragmentationReport
from repro.utils.rng import ensure_rng

NodeId = Hashable


def partition_graph(
    graph: Graph,
    num_fragments: int,
    centers: Iterable[NodeId],
    d: int,
    seed: int | None = 0,
) -> list[Fragment]:
    """Fragment *graph* into *num_fragments* pieces that preserve d-balls.

    Parameters
    ----------
    graph:
        The data graph G.
    num_fragments:
        Number of fragments (one per worker).
    centers:
        Candidate centre nodes (nodes satisfying the search condition of x in
        the predicate q(x, y)); every centre's ``Gd`` ends up in its owning
        fragment.
    d:
        Neighbourhood radius to preserve.
    seed:
        Shuffling seed for tie-breaking; ``None`` disables shuffling.

    Returns
    -------
    list[Fragment]
        Exactly *num_fragments* fragments (some may own no centre when there
        are fewer centres than fragments).
    """
    if num_fragments < 1:
        raise PartitionError(f"num_fragments must be >= 1, got {num_fragments}")
    if d < 0:
        raise PartitionError(f"d must be >= 0, got {d}")
    center_list = [node for node in centers]
    for node in center_list:
        if not graph.has_node(node):
            raise PartitionError(f"center {node!r} is not a node of the graph")

    rng = ensure_rng(seed) if seed is not None else None
    # Deterministic base order, optionally shuffled for balance robustness.
    center_list.sort(key=str)
    if rng is not None:
        rng.shuffle(center_list)

    # Greedy balancing.  Worker time is dominated by per-centre verification
    # work (proportional to the centre's d-ball), so centres are assigned to
    # the fragment with the smallest accumulated *work load* (sum of owned
    # ball sizes); the resulting fragment node-set size breaks ties so that
    # storage stays even too.
    fragment_nodes: list[set[NodeId]] = [set() for _ in range(num_fragments)]
    fragment_centers: list[set[NodeId]] = [set() for _ in range(num_fragments)]
    fragment_load: list[int] = [0] * num_fragments
    for center in center_list:
        center_ball = ball(graph, center, d)
        best_index = 0
        best_cost: tuple[int, int] | None = None
        for index in range(num_fragments):
            new_nodes = len(center_ball - fragment_nodes[index])
            cost = (fragment_load[index] + len(center_ball), len(fragment_nodes[index]) + new_nodes)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
        fragment_nodes[best_index].update(center_ball)
        fragment_centers[best_index].add(center)
        fragment_load[best_index] += len(center_ball)

    fragments: list[Fragment] = []
    for index in range(num_fragments):
        nodes = fragment_nodes[index]
        local = graph.induced_subgraph(nodes, name=f"{graph.name}|F{index}") if nodes else Graph(
            name=f"{graph.name}|F{index}"
        )
        fragments.append(
            Fragment(index=index, graph=local, owned_centers=set(fragment_centers[index]))
        )
    return fragments


def fragmentation_report(graph: Graph, fragments: Sequence[Fragment]) -> FragmentationReport:
    """Compute size/ownership/replication statistics for a fragmentation."""
    sizes = tuple(fragment.size for fragment in fragments)
    owned = tuple(len(fragment.owned_centers) for fragment in fragments)
    total_local_nodes = sum(fragment.graph.num_nodes for fragment in fragments)
    distinct_nodes = len({node for fragment in fragments for node in fragment.graph.nodes()})
    return FragmentationReport(
        num_fragments=len(fragments),
        sizes=sizes,
        owned_counts=owned,
        replicated_nodes=total_local_nodes - distinct_nodes,
    )
